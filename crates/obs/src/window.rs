//! Sliding-window latency quantiles: a ring of fixed-bucket histogram
//! frames rotated on a time base, merged over the last
//! [`MERGE_WINDOWS`] windows to answer "p50/p95/p99 over the last
//! minute" — per statement kind (plain select / conf-bearing / DML).
//!
//! Each [`WindowedHistogram`] keeps [`FRAME_COUNT`] frames; an
//! observation lands in the frame addressed by `epoch % FRAME_COUNT`
//! where `epoch = now / window_width`. The first observer of a new
//! epoch CASes the frame's epoch forward and zeroes its buckets, so
//! rotation is lock-free and costs nothing when no time boundary was
//! crossed. (Observations racing a rotation can smear a count into the
//! wrong window — these are statistics, not ledgers.) Quantiles use
//! Prometheus-style linear interpolation within the winning bucket.
//!
//! All clock reads go through explicit `*_at(now_nanos)` entry points
//! so rotation and expiry are unit-testable with a synthetic clock;
//! the process-facing [`record_statement`] / [`latency_report`] wrap
//! them with [`monotonic_nanos`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::{monotonic_nanos, MAX_BUCKETS, STATEMENT_BOUNDS};

/// Frames kept per windowed histogram (must exceed [`MERGE_WINDOWS`]
/// so an in-rotation frame never aliases one still being merged).
pub const FRAME_COUNT: usize = 8;

/// Windows merged into a snapshot (the "last N windows" of the report).
pub const MERGE_WINDOWS: u64 = 6;

/// Width of one window: 10 s, so reports cover the last minute.
pub const WINDOW_NANOS: u64 = 10_000_000_000;

/// One rotating histogram frame.
#[derive(Debug)]
struct Frame {
    /// Which epoch this frame currently accumulates (0 = never used).
    epoch: AtomicU64,
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_FRAME: Frame = Frame {
    epoch: AtomicU64::new(0),
    buckets: {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        [Z; MAX_BUCKETS]
    },
    count: AtomicU64::new(0),
    sum_nanos: AtomicU64::new(0),
};

/// A sliding-window histogram: fixed nanosecond bucket bounds, frames
/// rotated on [`WINDOW_NANOS`] boundaries, mergeable into a
/// [`WindowSnapshot`] covering the last [`MERGE_WINDOWS`] windows.
#[derive(Debug)]
pub struct WindowedHistogram {
    bounds: &'static [u64],
    window_nanos: u64,
    frames: [Frame; FRAME_COUNT],
}

impl WindowedHistogram {
    /// A zeroed windowed histogram over ascending nanosecond `bounds`.
    pub const fn new(bounds: &'static [u64], window_nanos: u64) -> WindowedHistogram {
        assert!(bounds.len() < MAX_BUCKETS);
        assert!(window_nanos > 0);
        WindowedHistogram { bounds, window_nanos, frames: [ZERO_FRAME; FRAME_COUNT] }
    }

    /// Epoch numbering starts at 1 so 0 can mean "frame never used".
    fn epoch_of(&self, now_nanos: u64) -> u64 {
        now_nanos / self.window_nanos + 1
    }

    /// Record an observation of `value_nanos` at clock reading
    /// `now_nanos`.
    pub fn observe_at(&self, value_nanos: u64, now_nanos: u64) {
        let epoch = self.epoch_of(now_nanos);
        let frame = &self.frames[(epoch % FRAME_COUNT as u64) as usize];
        let cur = frame.epoch.load(Ordering::Acquire);
        if cur != epoch {
            // First observer of this window in this frame: claim it and
            // zero the stale contents. Losers proceed directly — the
            // winner's zeroing races their adds by at most a few counts.
            if frame
                .epoch
                .compare_exchange(cur, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for b in &frame.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                frame.count.store(0, Ordering::Relaxed);
                frame.sum_nanos.store(0, Ordering::Relaxed);
            }
        }
        let i = self.bounds.partition_point(|&b| b < value_nanos);
        frame.buckets[i].fetch_add(1, Ordering::Relaxed);
        frame.count.fetch_add(1, Ordering::Relaxed);
        frame.sum_nanos.fetch_add(value_nanos, Ordering::Relaxed);
    }

    /// Record a duration observed "now".
    pub fn observe(&self, d: Duration) {
        self.observe_at(d.as_nanos().min(u64::MAX as u128) as u64, monotonic_nanos());
    }

    /// Merge the frames covering the last [`MERGE_WINDOWS`] windows as
    /// of clock reading `now_nanos`.
    pub fn snapshot_at(&self, now_nanos: u64) -> WindowSnapshot {
        let now_epoch = self.epoch_of(now_nanos);
        let min_epoch = now_epoch.saturating_sub(MERGE_WINDOWS - 1);
        let mut snap = WindowSnapshot {
            bounds: self.bounds,
            buckets: [0; MAX_BUCKETS],
            count: 0,
            sum_nanos: 0,
        };
        for frame in &self.frames {
            let epoch = frame.epoch.load(Ordering::Acquire);
            if epoch < min_epoch || epoch > now_epoch {
                continue;
            }
            for (i, b) in frame.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += frame.count.load(Ordering::Relaxed);
            snap.sum_nanos += frame.sum_nanos.load(Ordering::Relaxed);
        }
        snap
    }

    /// [`snapshot_at`](WindowedHistogram::snapshot_at) "now".
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(monotonic_nanos())
    }
}

/// A point-in-time merge of a [`WindowedHistogram`]'s live frames.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    bounds: &'static [u64],
    buckets: [u64; MAX_BUCKETS],
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observed values inside the window, in nanoseconds.
    pub sum_nanos: u64,
}

impl WindowSnapshot {
    /// Quantile `q` (0 < q ≤ 1) in seconds, linearly interpolated
    /// within the winning bucket (the last finite bound caps the +Inf
    /// bucket, as with Prometheus `histogram_quantile`). `None` when
    /// the window holds no observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            cumulative += in_bucket;
            if cumulative >= rank {
                let last = *self.bounds.last().unwrap_or(&0) as f64;
                if i >= self.bounds.len() {
                    return Some(last / 1e9); // +Inf bucket: cap
                }
                let upper = self.bounds[i] as f64;
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] as f64 };
                let into = (rank - (cumulative - in_bucket)) as f64;
                return Some((lower + (upper - lower) * into / in_bucket as f64) / 1e9);
            }
        }
        None // unreachable: cumulative == count >= rank by the end
    }

    /// Mean observed value in seconds (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_nanos as f64 / self.count as f64 / 1e9)
        }
    }
}

// ---------------------------------------------------------------------
// Per-statement-kind tracking
// ---------------------------------------------------------------------

/// What kind of statement a latency observation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// Query without confidence computation.
    Select,
    /// Query that ran at least one conf()/aconf()/tconf computation.
    Conf,
    /// Data/definition mutation (INSERT/UPDATE/DELETE/CREATE/…).
    Dml,
    /// Statement aborted by the governor (cancel/deadline/memory) — kept
    /// out of the per-kind feeds so an abort storm cannot skew the
    /// select/conf/dml p50/p99.
    Aborted,
}

impl StatementKind {
    /// Label used in Prometheus series and reports.
    pub fn label(self) -> &'static str {
        match self {
            StatementKind::Select => "select",
            StatementKind::Conf => "conf",
            StatementKind::Dml => "dml",
            StatementKind::Aborted => "aborted",
        }
    }

    /// All kinds, in rendering order.
    pub const ALL: [StatementKind; 4] =
        [StatementKind::Select, StatementKind::Conf, StatementKind::Dml, StatementKind::Aborted];
}

static SELECT_WINDOW: WindowedHistogram =
    WindowedHistogram::new(STATEMENT_BOUNDS, WINDOW_NANOS);
static CONF_WINDOW: WindowedHistogram =
    WindowedHistogram::new(STATEMENT_BOUNDS, WINDOW_NANOS);
static DML_WINDOW: WindowedHistogram =
    WindowedHistogram::new(STATEMENT_BOUNDS, WINDOW_NANOS);
static ABORTED_WINDOW: WindowedHistogram =
    WindowedHistogram::new(STATEMENT_BOUNDS, WINDOW_NANOS);

/// The process-wide windowed histogram for `kind`.
pub fn window_for(kind: StatementKind) -> &'static WindowedHistogram {
    match kind {
        StatementKind::Select => &SELECT_WINDOW,
        StatementKind::Conf => &CONF_WINDOW,
        StatementKind::Dml => &DML_WINDOW,
        StatementKind::Aborted => &ABORTED_WINDOW,
    }
}

/// Record one statement's latency into its kind's sliding window.
pub fn record_statement(kind: StatementKind, d: Duration) {
    window_for(kind).observe(d);
}

/// The quantiles every surface reports.
pub const REPORT_QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// Append the `maybms_latency_window_*` families to a Prometheus
/// exposition (NaN quantiles for kinds with an empty window, like
/// Prometheus summaries).
pub fn render_prometheus_into(out: &mut String) {
    out.push_str(
        "# HELP maybms_latency_window_seconds Per-kind statement latency quantiles over the sliding window\n# TYPE maybms_latency_window_seconds gauge\n",
    );
    let snaps: Vec<(StatementKind, WindowSnapshot)> =
        StatementKind::ALL.iter().map(|&k| (k, window_for(k).snapshot())).collect();
    for (kind, snap) in &snaps {
        for q in REPORT_QUANTILES {
            let v = snap.quantile(q).map_or("NaN".to_string(), |s| s.to_string());
            out.push_str(&format!(
                "maybms_latency_window_seconds{{kind=\"{}\",quantile=\"{q}\"}} {v}\n",
                kind.label()
            ));
        }
    }
    out.push_str(
        "# HELP maybms_latency_window_count Statements observed in the sliding window\n# TYPE maybms_latency_window_count gauge\n",
    );
    for (kind, snap) in &snaps {
        out.push_str(&format!(
            "maybms_latency_window_count{{kind=\"{}\"}} {}\n",
            kind.label(),
            snap.count
        ));
    }
}

/// Human-readable latency table — the `\latency` shell command.
pub fn latency_report() -> String {
    let mut out = format!(
        "statement latency over the last {} windows of {} s:\n{:<8} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
        MERGE_WINDOWS,
        WINDOW_NANOS / 1_000_000_000,
        "kind",
        "count",
        "mean",
        "p50",
        "p95",
        "p99",
    );
    let fmt = |v: Option<f64>| match v {
        Some(s) => crate::trace::fmt_nanos((s * 1e9) as u64),
        None => "-".to_string(),
    };
    for kind in StatementKind::ALL {
        let snap = window_for(kind).snapshot();
        out.push_str(&format!(
            "{:<8} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            kind.label(),
            snap.count,
            fmt(snap.mean()),
            fmt(snap.quantile(0.50)),
            fmt(snap.quantile(0.95)),
            fmt(snap.quantile(0.99)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static BOUNDS: &[u64] = &[1_000, 10_000, 100_000];
    const W: u64 = 1_000_000_000; // 1 s windows for the tests

    #[test]
    fn observations_rotate_out_of_the_window() {
        let h = WindowedHistogram::new(BOUNDS, W);
        h.observe_at(500, 0);
        h.observe_at(5_000, 100);
        assert_eq!(h.snapshot_at(100).count, 2);
        // Still visible MERGE_WINDOWS−1 windows later…
        let edge = (MERGE_WINDOWS - 1) * W;
        assert_eq!(h.snapshot_at(edge).count, 2);
        // …gone one window after that.
        assert_eq!(h.snapshot_at(edge + W).count, 0);
    }

    #[test]
    fn frames_are_reused_after_wraparound() {
        let h = WindowedHistogram::new(BOUNDS, W);
        h.observe_at(500, 0);
        // Same frame index FRAME_COUNT windows later: the old epoch's
        // count must not leak into the new window.
        let later = FRAME_COUNT as u64 * W;
        h.observe_at(700, later);
        let snap = h.snapshot_at(later);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_nanos, 700);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = WindowedHistogram::new(BOUNDS, W);
        for _ in 0..10 {
            h.observe_at(500, 0); // bucket 0: (0, 1µs]
        }
        let snap = h.snapshot_at(0);
        // p50 = rank 5 of 10, all in bucket 0 → 0 + 1000·(5/10).
        assert_eq!(snap.quantile(0.5), Some(0.0000005));
        assert_eq!(snap.quantile(1.0), Some(0.000001));
        // Overflow observations cap at the last finite bound.
        h.observe_at(10_000_000, 0);
        let snap = h.snapshot_at(0);
        assert_eq!(snap.quantile(1.0), Some(0.0001));
        assert_eq!(snap.count, 11);
    }

    #[test]
    fn empty_window_has_no_quantiles() {
        let h = WindowedHistogram::new(BOUNDS, W);
        assert_eq!(h.snapshot_at(0).quantile(0.5), None);
        assert_eq!(h.snapshot_at(0).mean(), None);
    }

    #[test]
    fn multiple_windows_merge() {
        let h = WindowedHistogram::new(BOUNDS, W);
        h.observe_at(500, 0);
        h.observe_at(5_000, W); // next window
        h.observe_at(50_000, 2 * W); // next again
        let snap = h.snapshot_at(2 * W);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_nanos, 55_500);
        assert_eq!(snap.quantile(1.0), Some(0.0001));
    }

    #[test]
    fn kind_windows_render() {
        record_statement(StatementKind::Select, Duration::from_micros(80));
        let mut out = String::new();
        render_prometheus_into(&mut out);
        assert!(out.contains("# TYPE maybms_latency_window_seconds gauge"), "{out}");
        assert!(
            out.contains("maybms_latency_window_seconds{kind=\"select\",quantile=\"0.5\"}"),
            "{out}"
        );
        assert!(out.contains("maybms_latency_window_count{kind=\"dml\"} 0"), "{out}");
        let report = latency_report();
        assert!(report.contains("select"), "{report}");
        assert!(report.contains("p99"), "{report}");
    }
}
