//! Structured tracing: RAII span guards, parent links, a bounded ring
//! sink, indented tree dumps, and Chrome `trace_event` JSONL export.
//!
//! ## Span model
//!
//! A [`Span`] is an RAII guard created by [`span`] (or [`span_with`]):
//! it allocates a process-unique u64 id, links to the span currently
//! active on this thread (the *parent*), remembers the statement-level
//! *root* it belongs to, and on drop writes one [`SpanRecord`] — label,
//! id, parent, root, start, duration, typed attributes — into the ring
//! sink. Spans nest lexically: while a guard is alive it is the current
//! parent for spans created on the same thread.
//!
//! Work fanned out to pool workers keeps its parentage through
//! [`current_context`] / [`enter_context`]: `maybms-par` captures the
//! spawning thread's context at `spawn` and installs it around the task
//! body, so a conf() span computed on worker 3 still parents to the
//! pipeline span that spawned it. Span *shape* (labels and parent
//! paths) is therefore deterministic at any thread count; only
//! durations and completion order vary.
//!
//! ## The ring sink
//!
//! Finished records land in a bounded ring (capacity
//! [`RING_CAPACITY`]), oldest evicted first. The crate forbids unsafe
//! code, so the ring is a `Mutex<VecDeque>` rather than a true
//! lock-free MPSC ring: spans are created tens-per-statement (never
//! per row or per morsel), so one short uncontended lock per finished
//! span is far inside the ≤5% instrumentation budget the CI overhead
//! gate enforces. The *disabled* fast path — the only path production
//! code sees by default — is a single relaxed atomic load.
//!
//! ## Export
//!
//! When `MAYBMS_TRACE_FILE` names a path, every finished span is also
//! appended there as one Chrome `trace_event` "complete" (`ph:"X"`)
//! JSON object per line. Wrap the lines in `[...]` (or load as-is in
//! Perfetto, which accepts newline-delimited events) to open the file
//! in `chrome://tracing`. Each statement root becomes its own `tid`
//! track.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::monotonic_nanos;

/// Maximum finished-span records retained by the ring sink.
pub const RING_CAPACITY: usize = 16_384;

/// A typed span attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Signed integer attribute.
    Int(i64),
    /// Unsigned integer attribute (counts, sizes).
    Uint(u64),
    /// Floating-point attribute (errors, probabilities).
    Float(f64),
    /// Static string attribute (kinds, method names).
    Str(&'static str),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::Uint(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One finished span, as stored in the ring sink.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique span id (ids start at 1; 0 is "no span").
    pub id: u64,
    /// Parent span id, or 0 for a statement-level root.
    pub parent: u64,
    /// Root span id of the tree this span belongs to (== `id` for
    /// roots).
    pub root: u64,
    /// Static label (`"statement"`, `"pipeline"`, `"conf"`, …).
    pub label: &'static str,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
    /// Typed attributes attached while the span was live.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// End of the span, in nanoseconds since the process trace epoch.
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.dur_nanos)
    }
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static RING: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());

thread_local! {
    /// (root, parent) of the span currently active on this thread.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Is tracing on? One relaxed load — the entire cost of every
/// instrumentation point while tracing is off.
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn the span subsystem on or off (`\trace on|off`).
pub fn set_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Initialise tracing from the environment: `MAYBMS_TRACE=1|on|true`
/// enables the ring sink; setting `MAYBMS_TRACE_FILE` (a JSONL export
/// path) implies it. Embedders (the shell, benchmarks) call this once
/// at startup; the library itself never reads the environment on the
/// hot path.
pub fn init_from_env() {
    let truthy = |v: String| {
        let v = v.trim().to_ascii_lowercase();
        v == "1" || v == "on" || v == "true" || v == "yes"
    };
    if std::env::var("MAYBMS_TRACE").map(truthy).unwrap_or(false)
        || std::env::var("MAYBMS_TRACE_FILE").is_ok_and(|v| !v.trim().is_empty())
    {
        set_enabled(true);
    }
}

/// The (root, parent) pair a span created right now would link to.
/// Capture this on the spawning thread and [`enter_context`] it on the
/// worker so fanned-out work keeps its parentage.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceContext {
    root: u64,
    parent: u64,
}

/// Capture this thread's current trace context.
#[inline]
pub fn current_context() -> TraceContext {
    let (root, parent) = CURRENT.with(|c| c.get());
    TraceContext { root, parent }
}

/// Install `ctx` as this thread's trace context until the returned
/// guard drops (which restores whatever was active before).
pub fn enter_context(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace((ctx.root, ctx.parent)));
    ContextGuard { prev }
}

/// Restores the pre-[`enter_context`] trace context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An RAII span guard. While alive it is the current parent for spans
/// created on the same thread; on drop it writes its [`SpanRecord`] to
/// the ring sink (and the JSONL export file, when configured). Created
/// disabled (id 0, no effect) when tracing is off. Must be dropped on
/// the thread that created it.
#[derive(Debug)]
pub struct Span {
    id: u64,
    root: u64,
    parent: u64,
    prev: (u64, u64),
    label: &'static str,
    start_nanos: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Open a span labelled `label` under the current thread context.
pub fn span(label: &'static str) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            root: 0,
            parent: 0,
            prev: (0, 0),
            label,
            start_nanos: 0,
            attrs: Vec::new(),
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.get());
    let (cur_root, cur_parent) = prev;
    let root = if cur_root == 0 { id } else { cur_root };
    CURRENT.with(|c| c.set((root, id)));
    Span { id, root, parent: cur_parent, prev, label, start_nanos: monotonic_nanos(), attrs: Vec::new() }
}

/// [`span`] with initial attributes.
pub fn span_with(
    label: &'static str,
    attrs: &[(&'static str, AttrValue)],
) -> Span {
    let mut s = span(label);
    if s.is_active() {
        s.attrs.extend_from_slice(attrs);
    }
    s
}

impl Span {
    /// Whether this guard is live (tracing was on at creation).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.id != 0
    }

    /// This span's id (0 when tracing was off at creation).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a typed attribute (no-op on an inactive span).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.is_active() {
            self.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.is_active() {
            return;
        }
        CURRENT.with(|c| c.set(self.prev));
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            root: self.root,
            label: self.label,
            start_nanos: self.start_nanos,
            dur_nanos: monotonic_nanos().saturating_sub(self.start_nanos),
            attrs: std::mem::take(&mut self.attrs),
        };
        export_jsonl(&rec);
        let mut ring = RING.lock().expect("trace ring poisoned");
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(rec);
    }
}

/// Drop every record from the ring sink (tests, `\trace` re-arms).
pub fn clear() {
    RING.lock().expect("trace ring poisoned").clear();
}

/// All retained records belonging to the span tree rooted at `root`,
/// in completion order.
pub fn spans_for_root(root: u64) -> Vec<SpanRecord> {
    RING.lock()
        .expect("trace ring poisoned")
        .iter()
        .filter(|r| r.root == root)
        .cloned()
        .collect()
}

/// Root ids of the last `n` completed span trees, oldest first.
pub fn recent_roots(n: usize) -> Vec<u64> {
    let ring = RING.lock().expect("trace ring poisoned");
    let roots: Vec<u64> =
        ring.iter().filter(|r| r.parent == 0).map(|r| r.id).collect();
    let skip = roots.len().saturating_sub(n);
    roots[skip..].to_vec()
}

/// Render the last `n` completed span trees as indented text — the
/// `\trace dump [N]` shell command.
pub fn render_recent(n: usize) -> String {
    let mut out = String::new();
    for root in recent_roots(n) {
        let spans = spans_for_root(root);
        render_tree(&mut out, &spans, root);
    }
    if out.is_empty() {
        out.push_str("no completed span trees in the ring (is tracing on?)\n");
    }
    out
}

fn render_tree(out: &mut String, spans: &[SpanRecord], root: u64) {
    let Some(root_rec) = spans.iter().find(|r| r.id == root) else {
        return;
    };
    // Children grouped by parent, ordered by start time (id breaks
    // ties deterministically).
    let mut children: Vec<&SpanRecord> =
        spans.iter().filter(|r| r.id != root).collect();
    children.sort_by_key(|r| (r.start_nanos, r.id));
    render_span(out, root_rec, &children, 0);
    // Spans whose parent was evicted from the ring: list flat so
    // nothing silently disappears.
    let present: std::collections::HashSet<u64> =
        spans.iter().map(|r| r.id).collect();
    for r in &children {
        if r.parent != 0 && !present.contains(&r.parent) {
            out.push_str("  (detached) ");
            push_span_line(out, r);
        }
    }
}

fn render_span(
    out: &mut String,
    rec: &SpanRecord,
    all: &[&SpanRecord],
    depth: usize,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    push_span_line(out, rec);
    for child in all.iter().filter(|r| r.parent == rec.id) {
        render_span(out, child, all, depth + 1);
    }
}

fn push_span_line(out: &mut String, rec: &SpanRecord) {
    out.push_str(rec.label);
    out.push_str(&format!(" ({})", fmt_nanos(rec.dur_nanos)));
    if !rec.attrs.is_empty() {
        out.push_str(" {");
        for (i, (k, v)) in rec.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{k}={v}"));
        }
        out.push('}');
    }
    if rec.parent == 0 {
        out.push_str(&format!(" [root {}]", rec.id));
    }
    out.push('\n');
}

/// Human duration: `873 ns`, `12.3 µs`, `4.56 ms`, `1.23 s`.
pub fn fmt_nanos(nanos: u64) -> String {
    match nanos {
        0..=999 => format!("{nanos} ns"),
        1_000..=999_999 => format!("{:.1} µs", nanos as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", nanos as f64 / 1e6),
        _ => format!("{:.2} s", nanos as f64 / 1e9),
    }
}

// ---------------------------------------------------------------------
// Chrome trace_event JSONL export
// ---------------------------------------------------------------------

static TRACE_FILE: OnceLock<Option<Mutex<File>>> = OnceLock::new();

fn trace_file() -> Option<&'static Mutex<File>> {
    TRACE_FILE
        .get_or_init(|| {
            let path = std::env::var("MAYBMS_TRACE_FILE").ok()?;
            let path = path.trim();
            if path.is_empty() {
                return None;
            }
            match File::options().create(true).append(true).open(path) {
                Ok(f) => Some(Mutex::new(f)),
                Err(e) => {
                    eprintln!("maybms: cannot open MAYBMS_TRACE_FILE {path:?}: {e}");
                    None
                }
            }
        })
        .as_ref()
}

/// `s` with JSON string-content escaping applied (no surrounding
/// quotes) — shared by the trace exporter and the slow-query log.
pub fn json_escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_json_escaped(&mut out, s);
    out
}

fn push_json_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_json_attr(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Int(v) => out.push_str(&v.to_string()),
        AttrValue::Uint(v) => out.push_str(&v.to_string()),
        AttrValue::Float(v) if v.is_finite() => out.push_str(&v.to_string()),
        AttrValue::Float(_) => out.push_str("null"),
        AttrValue::Str(v) => {
            out.push('"');
            push_json_escaped(out, v);
            out.push('"');
        }
    }
}

/// One `trace_event` "complete" object for `rec` (no trailing newline).
/// `ts`/`dur` are microseconds; the root id doubles as the `tid` so
/// each statement renders as its own track.
pub fn trace_event_json(rec: &SpanRecord) -> String {
    let mut o = String::with_capacity(160);
    o.push_str("{\"name\":\"");
    push_json_escaped(&mut o, rec.label);
    o.push_str("\",\"cat\":\"maybms\",\"ph\":\"X\"");
    o.push_str(&format!(
        ",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
        rec.start_nanos as f64 / 1e3,
        rec.dur_nanos as f64 / 1e3,
        rec.root
    ));
    o.push_str(&format!(",\"args\":{{\"id\":{},\"parent\":{}", rec.id, rec.parent));
    for (k, v) in &rec.attrs {
        o.push_str(",\"");
        push_json_escaped(&mut o, k);
        o.push_str("\":");
        push_json_attr(&mut o, v);
    }
    o.push_str("}}");
    o
}

fn export_jsonl(rec: &SpanRecord) {
    let Some(file) = trace_file() else { return };
    let mut line = trace_event_json(rec);
    line.push('\n');
    let mut f = file.lock().expect("trace export file poisoned");
    let _ = f.write_all(line.as_bytes());
    if rec.parent == 0 {
        let _ = f.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; serialise the tests that toggle it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        clear();
        let before = NEXT_ID.load(Ordering::Relaxed);
        {
            let mut s = span("statement");
            s.attr("k", 1u64);
            assert!(!s.is_active());
            assert_eq!(s.id(), 0);
        }
        assert_eq!(NEXT_ID.load(Ordering::Relaxed), before);
        assert!(recent_roots(10).is_empty());
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        let root_id;
        {
            let root = span("statement");
            root_id = root.id();
            {
                let parse = span("parse");
                assert_eq!(parse.id(), root_id + 1);
            }
            {
                let mut exec = span("execute");
                exec.attr("rows", 3u64);
                let _pipe = span("pipeline");
            }
        }
        set_enabled(false);
        let spans = spans_for_root(root_id);
        assert_eq!(spans.len(), 4);
        let by_label = |l: &str| spans.iter().find(|r| r.label == l).unwrap();
        let root = by_label("statement");
        assert_eq!(root.parent, 0);
        assert_eq!(root.root, root_id);
        assert_eq!(by_label("parse").parent, root_id);
        let exec = by_label("execute");
        assert_eq!(exec.parent, root_id);
        assert_eq!(exec.attrs, vec![("rows", AttrValue::Uint(3))]);
        assert_eq!(by_label("pipeline").parent, exec.id);
        // Children nest within the parent's duration.
        for r in &spans {
            if r.id != root_id {
                assert!(r.start_nanos >= root.start_nanos);
                assert!(r.end_nanos() <= root.end_nanos());
            }
        }
        let dump = render_recent(1);
        assert!(dump.contains("statement"), "{dump}");
        assert!(dump.contains("  parse"), "{dump}");
        assert!(dump.contains("    pipeline"), "{dump}");
        assert!(dump.contains("rows=3"), "{dump}");
    }

    #[test]
    fn context_propagates_to_other_threads() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        let root_id;
        {
            let root = span("statement");
            root_id = root.id();
            let ctx = current_context();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = enter_context(ctx);
                    let _child = span("conf");
                });
            });
        }
        set_enabled(false);
        let spans = spans_for_root(root_id);
        assert_eq!(spans.len(), 2);
        let conf = spans.iter().find(|r| r.label == "conf").unwrap();
        assert_eq!(conf.parent, root_id);
        assert_eq!(conf.root, root_id);
    }

    #[test]
    fn trace_event_json_is_wellformed() {
        let rec = SpanRecord {
            id: 7,
            parent: 3,
            root: 3,
            label: "pipeline",
            start_nanos: 1_500,
            dur_nanos: 2_000,
            attrs: vec![("morsels", AttrValue::Uint(4)), ("kind", AttrValue::Str("select"))],
        };
        let j = trace_event_json(&rec);
        assert_eq!(
            j,
            "{\"name\":\"pipeline\",\"cat\":\"maybms\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.000,\"pid\":1,\"tid\":3,\"args\":{\"id\":7,\"parent\":3,\"morsels\":4,\"kind\":\"select\"}}"
        );
    }

    #[test]
    fn ring_is_bounded() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        for _ in 0..(RING_CAPACITY + 10) {
            let _s = span("statement");
        }
        set_enabled(false);
        assert_eq!(RING.lock().unwrap().len(), RING_CAPACITY);
        clear();
    }
}
