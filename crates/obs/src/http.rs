//! A std-only Prometheus scrape endpoint: one background thread, a
//! blocking [`TcpListener`], serial request handling. A scrape target
//! needs nothing more — requests are tiny, responses are one render of
//! the registry — and keeping it `std`-only honours the offline-build
//! constraint (no hyper/tokio). This is deliberately the first network
//! listener in the codebase: the TCP front end on the ROADMAP can grow
//! from the same shape.
//!
//! Endpoints:
//! * `GET /metrics` — [`crate::render_prometheus`] output (registry +
//!   latency-window families), `text/plain; version=0.0.4`.
//! * `GET /healthz` — `ok`.
//!
//! Opt in from the shell with `--metrics-addr HOST:PORT` or
//! `MAYBMS_METRICS_ADDR`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Bind `addr` (e.g. `127.0.0.1:9187`; port 0 picks a free port) and
/// serve metrics from a background thread for the life of the process.
/// Returns the bound address.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("maybms-metrics".into())
        .spawn(move || {
            for mut stream in listener.incoming().flatten() {
                let _ = handle(&mut stream);
            }
        })?;
    Ok(local)
}

/// Read one request head (cap 8 KiB), answer it, close. Errors only
/// ever drop the connection — a malformed scrape must never take the
/// database down.
fn handle(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 {
            return respond(stream, 431, "request head too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // peer went away
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = head
        .split(|&b| b == b'\r')
        .next()
        .map(String::from_utf8_lossy)
        .unwrap_or_default()
        .into_owned();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(stream, 405, "only GET is supported\n");
    }
    // Scrape paths carry no query strings we care about.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => respond_with(
            stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &crate::render_prometheus(),
        ),
        "/healthz" => respond(stream, 200, "ok\n"),
        _ => respond(stream, 404, "not found (try /metrics or /healthz)\n"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    respond_with(stream, status, "text/plain; charset=utf-8", body)
}

fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to exporter");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .lines()
            .next()
            .and_then(|l| l.split_ascii_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let addr = serve("127.0.0.1:0").expect("bind exporter");
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE maybms_query_total counter"), "{body}");
        assert!(body.contains("maybms_latency_window_seconds"), "{body}");
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
    }

    #[test]
    fn rejects_non_get() {
        let addr = serve("127.0.0.1:0").expect("bind exporter");
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut line = String::new();
        std::io::BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(line.contains("405"), "{line}");
    }
}
