//! # maybms-obs — observability for the MayBMS reproduction
//!
//! A std-only metrics layer (the build environment is offline, so no
//! prometheus/metrics crates): lock-free atomic [`Counter`]s, [`Gauge`]s
//! and fixed-bucket latency [`Histogram`]s in a process-wide registry
//! ([`metrics`]), plus a per-query [`QueryStats`] collector the executor
//! threads through pipelines, confidence computation and the shell.
//!
//! Two invariants the rest of the stack relies on:
//!
//! * **Near-zero cost.** Registry updates are relaxed atomic adds issued
//!   at most once per morsel / batch / fsync, never per row; per-query
//!   collection only happens when a [`QueryStats`] is attached, and the
//!   per-row tallies it consumes are plain stack integers flushed once
//!   per morsel.
//! * **Determinism.** Everything a [`QueryStats`] accumulates is an
//!   order-independent sum (or max) of per-morsel / per-call
//!   contributions, so the collected numbers — like the query results
//!   themselves — are bit-identical at any thread count and morsel size.
//!
//! Surfaces: `EXPLAIN ANALYZE` (core renders [`QueryStats`]), the shell's
//! `\metrics` command ([`render_prometheus`]), and the opt-in slow-query
//! log ([`slow_log_threshold_ms`], `MAYBMS_SLOW_MS` / `\slowlog N`).
//!
//! Phase 2 adds three consumers on top of the registry: structured
//! tracing spans with a ring sink and Chrome `trace_event` export
//! ([`trace`]), sliding-window p50/p95/p99 latency tracking per
//! statement kind ([`window`]), and a std-only Prometheus HTTP scrape
//! endpoint ([`http`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod trace;
pub mod window;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Nanoseconds since the process trace epoch (first call wins). One
/// monotonic clock shared by span timestamps and window rotation, so
/// traces and latency windows line up.
pub fn monotonic_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos().min(u64::MAX as u128) as u64
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// A monotonically increasing event count. All operations are relaxed:
/// counters are statistics, never synchronisation.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const, so counters can live in statics).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (queue depth, recovery record count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maximum bucket count of a [`Histogram`] (bounds + the +Inf bucket).
pub const MAX_BUCKETS: usize = 16;

/// A fixed-bucket latency histogram: cumulative-style observation counts
/// per upper bound (nanoseconds) plus a `+Inf` overflow bucket, a total
/// count and a nanosecond sum — exactly the data a Prometheus histogram
/// exposes. Buckets are plain relaxed atomics; observing is one binary
/// chore of comparisons and two adds.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds, in nanoseconds (≤ [`MAX_BUCKETS`] − 1).
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram over `bounds` (ascending nanosecond bounds).
    pub const fn new(bounds: &'static [u64]) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        assert!(bounds.len() < MAX_BUCKETS);
        Histogram { bounds, buckets: [ZERO; MAX_BUCKETS], count: AtomicU64::new(0), sum_nanos: AtomicU64::new(0) }
    }

    /// Record one duration.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one observation of `nanos` nanoseconds.
    pub fn observe_nanos(&self, nanos: u64) {
        let i = self.bounds.partition_point(|&b| b < nanos);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Render this histogram in Prometheus text exposition format
    /// (cumulative `_bucket{le=…}` lines, `_sum`, `_count`).
    fn render(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let le = bound as f64 / 1e9;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        cumulative += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum {}\n", self.sum_seconds()));
        out.push_str(&format!("{name}_count {}\n", self.count()));
    }
}

/// Fsync / checkpoint latency bounds: 50µs … 100ms.
pub const IO_BOUNDS: &[u64] = &[
    50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
    25_000_000, 50_000_000, 100_000_000,
];

/// Pipeline / query wall-time bounds: 100µs … 5s.
pub const TIME_BOUNDS: &[u64] = &[
    100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000,
    50_000_000, 100_000_000, 500_000_000, 1_000_000_000, 5_000_000_000,
];

/// Statement-latency bounds: 50µs … 5s. Finer sub-millisecond buckets
/// than [`TIME_BOUNDS`] so p50 of this box's sub-ms queries does not
/// pin to the lowest bucket.
pub const STATEMENT_BOUNDS: &[u64] = &[
    50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
    25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000, 1_000_000_000,
    5_000_000_000,
];

// ---------------------------------------------------------------------
// The process-wide registry
// ---------------------------------------------------------------------

/// Every engine-wide metric, one static instance ([`metrics`]).
#[derive(Debug)]
#[allow(missing_docs)] // field names + render help strings are the docs
pub struct Metrics {
    // maybms-pipe: the morsel-driven executor.
    pub pipelines: Counter,
    pub morsels: Counter,
    pub rows_in: Counter,
    pub rows_out: Counter,
    pub vector_batches: Counter,
    pub scalar_fallbacks: Counter,
    pub join_build_rows: Counter,
    pub groups: Counter,
    pub pivots: Counter,
    pub pivot_rows: Counter,
    pub pipeline_seconds: Histogram,
    // maybms-conf: confidence computation.
    pub dtree_nodes: Counter,
    pub dnf_clauses: Counter,
    pub mc_samples: Counter,
    pub mc_batches: Counter,
    // maybms-store: durability.
    pub wal_appends: Counter,
    pub wal_fsync_seconds: Histogram,
    pub checkpoints: Counter,
    pub checkpoint_seconds: Histogram,
    pub recovery_replayed: Gauge,
    pub recovery_truncated_tail: Gauge,
    // maybms-par: the execution pool.
    pub par_tasks: Counter,
    pub par_queue_depth_hwm: Gauge,
    // maybms-core: statements.
    pub queries: Counter,
    pub slow_queries: Counter,
    pub query_seconds: Histogram,
    // maybms-gov: the query governor.
    pub gov_cancelled: Counter,
    pub gov_deadline: Counter,
    pub gov_mem_rejected: Counter,
    pub gov_degraded_conf: Counter,
    pub gov_panics: Counter,
    pub store_retries: Counter,
}

static METRICS: Metrics = Metrics {
    pipelines: Counter::new(),
    morsels: Counter::new(),
    rows_in: Counter::new(),
    rows_out: Counter::new(),
    vector_batches: Counter::new(),
    scalar_fallbacks: Counter::new(),
    join_build_rows: Counter::new(),
    groups: Counter::new(),
    pivots: Counter::new(),
    pivot_rows: Counter::new(),
    pipeline_seconds: Histogram::new(TIME_BOUNDS),
    dtree_nodes: Counter::new(),
    dnf_clauses: Counter::new(),
    mc_samples: Counter::new(),
    mc_batches: Counter::new(),
    wal_appends: Counter::new(),
    wal_fsync_seconds: Histogram::new(IO_BOUNDS),
    checkpoints: Counter::new(),
    checkpoint_seconds: Histogram::new(IO_BOUNDS),
    recovery_replayed: Gauge::new(),
    recovery_truncated_tail: Gauge::new(),
    par_tasks: Counter::new(),
    par_queue_depth_hwm: Gauge::new(),
    queries: Counter::new(),
    slow_queries: Counter::new(),
    query_seconds: Histogram::new(STATEMENT_BOUNDS),
    gov_cancelled: Counter::new(),
    gov_deadline: Counter::new(),
    gov_mem_rejected: Counter::new(),
    gov_degraded_conf: Counter::new(),
    gov_panics: Counter::new(),
    store_retries: Counter::new(),
};

/// The process-wide metrics registry.
pub fn metrics() -> &'static Metrics {
    &METRICS
}

/// Render the whole registry in Prometheus text exposition format
/// (`# HELP` / `# TYPE` / sample lines) — the `\metrics` shell command.
pub fn render_prometheus() -> String {
    let m = metrics();
    let mut out = String::with_capacity(4096);
    let mut counter = |name: &str, help: &str, c: &Counter| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
            c.get()
        ));
    };
    counter("maybms_pipe_pipelines_total", "Pipelines executed by the morsel-driven executor", &m.pipelines);
    counter("maybms_pipe_morsels_total", "Morsels pushed through fused stage chains", &m.morsels);
    counter("maybms_pipe_rows_in_total", "Rows entering fused stage chains", &m.rows_in);
    counter("maybms_pipe_rows_out_total", "Rows surviving fused stage chains", &m.rows_out);
    counter("maybms_pipe_vector_batches_total", "Columnar batches evaluated by vector kernels", &m.vector_batches);
    counter("maybms_pipe_scalar_fallbacks_total", "Vector-kernel batches redone row-by-row (scalar fallback)", &m.scalar_fallbacks);
    counter("maybms_pipe_join_build_rows_total", "Rows inserted into hash-join build tables", &m.join_build_rows);
    counter("maybms_pipe_groups_total", "Groups created by streaming grouped aggregation", &m.groups);
    counter("maybms_pipe_pivots_total", "Row-major to column-major pivots performed (ColumnBatch::pivot calls)", &m.pivots);
    counter("maybms_pipe_pivot_rows_total", "Rows pivoted from row-major to column-major", &m.pivot_rows);
    counter("maybms_conf_dtree_nodes_total", "Decomposition-tree nodes expanded by exact confidence computation", &m.dtree_nodes);
    counter("maybms_conf_dnf_clauses_total", "DNF clauses submitted to confidence computation", &m.dnf_clauses);
    counter("maybms_conf_mc_samples_total", "Monte Carlo samples drawn (fixed-count Karp-Luby draws plus DKLR consumed samples)", &m.mc_samples);
    counter("maybms_conf_mc_batches_total", "Seeded sample batches computed (including speculation)", &m.mc_batches);
    counter("maybms_store_wal_appends_total", "WAL records appended", &m.wal_appends);
    counter("maybms_store_checkpoints_total", "Atomic snapshot checkpoints written", &m.checkpoints);
    counter("maybms_par_tasks_total", "Tasks executed by the execution pool", &m.par_tasks);
    counter("maybms_query_total", "SQL statements executed", &m.queries);
    counter("maybms_query_slow_total", "Statements at or above the slow-query threshold", &m.slow_queries);
    counter("maybms_gov_cancelled_total", "Statements aborted by cancellation", &m.gov_cancelled);
    counter("maybms_gov_deadline_total", "Statements aborted by their deadline", &m.gov_deadline);
    counter("maybms_gov_mem_rejected_total", "Statements aborted by the memory budget", &m.gov_mem_rejected);
    counter("maybms_gov_degraded_conf_total", "aconf() estimates cut early by a deadline (degraded, not aborted)", &m.gov_degraded_conf);
    counter("maybms_gov_panics_total", "Statement panics caught and reported as internal errors", &m.gov_panics);
    counter("maybms_store_retries_total", "Transient store I/O failures retried", &m.store_retries);
    let mut gauge = |name: &str, help: &str, g: &Gauge| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
            g.get()
        ));
    };
    gauge("maybms_store_recovery_replayed_records", "WAL records replayed at the last open", &m.recovery_replayed);
    gauge("maybms_store_recovery_truncated_tail", "1 if the last open truncated a torn WAL tail", &m.recovery_truncated_tail);
    gauge("maybms_par_queue_depth_hwm", "Execution-pool queue depth high-water mark", &m.par_queue_depth_hwm);
    let mut histogram = |name: &str, help: &str, h: &Histogram| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        h.render(&mut out, name);
    };
    histogram("maybms_pipe_pipeline_seconds", "Per-pipeline wall time", &m.pipeline_seconds);
    histogram("maybms_store_wal_fsync_seconds", "WAL append+fsync latency", &m.wal_fsync_seconds);
    histogram("maybms_store_checkpoint_seconds", "Checkpoint duration", &m.checkpoint_seconds);
    histogram("maybms_query_seconds", "Per-statement wall time", &m.query_seconds);
    window::render_prometheus_into(&mut out);
    out
}

// ---------------------------------------------------------------------
// Per-query collection
// ---------------------------------------------------------------------

/// Per-stage collection slot of a [`PipelineStats`]: how many rows
/// entered and survived one fused stage, plus (for probes) the build
/// size. Totals are order-independent sums of per-morsel tallies, so
/// they are bit-identical at any thread count.
#[derive(Debug)]
pub struct StageStats {
    /// The stage's display label (from the pipeline description).
    pub label: String,
    /// Rows entering the stage.
    pub rows_in: Counter,
    /// Rows the stage passed downstream.
    pub rows_out: Counter,
    /// Hash-join build rows (probe stages only; 0 otherwise).
    pub build_rows: Counter,
}

impl StageStats {
    /// A zeroed slot labelled `label`.
    pub fn new(label: impl Into<String>) -> StageStats {
        StageStats {
            label: label.into(),
            rows_in: Counter::new(),
            rows_out: Counter::new(),
            build_rows: Counter::new(),
        }
    }
}

/// Collected execution statistics of one pipeline: its breaker label,
/// source description, per-stage row counts, morsel count, group count
/// (grouped-aggregation breakers) and wall time.
#[derive(Debug)]
pub struct PipelineStats {
    /// Why this pipeline broke (the breaker reason shown by EXPLAIN).
    pub label: String,
    /// Source description (`"games (2 stored rows)"`).
    pub source: String,
    /// One slot per fused stage, in stage order.
    pub stages: Vec<StageStats>,
    /// Morsels executed.
    pub morsels: Counter,
    /// Groups created (streaming grouped-aggregation breakers; else 0).
    pub groups: Counter,
    /// Wall time of the collect, in nanoseconds (set once at finish).
    pub wall_nanos: Counter,
}

impl PipelineStats {
    /// A zeroed pipeline collector.
    pub fn new(
        label: impl Into<String>,
        source: impl Into<String>,
        stage_labels: Vec<String>,
    ) -> PipelineStats {
        PipelineStats {
            label: label.into(),
            source: source.into(),
            stages: stage_labels.into_iter().map(StageStats::new).collect(),
            morsels: Counter::new(),
            groups: Counter::new(),
            wall_nanos: Counter::new(),
        }
    }

    /// Flush one morsel's per-stage `(rows_in, rows_out)` tally. Called
    /// once per morsel; the per-row counting happened in plain integers
    /// on the worker's stack.
    pub fn flush_morsel(&self, tally: &[(u64, u64)]) {
        self.morsels.inc();
        for (slot, &(rin, rout)) in self.stages.iter().zip(tally) {
            slot.rows_in.add(rin);
            slot.rows_out.add(rout);
        }
    }

    /// Record the pipeline's wall time.
    pub fn record_wall(&self, d: Duration) {
        self.wall_nanos.add(d.as_nanos().min(u64::MAX as u128) as u64);
        metrics().pipeline_seconds.observe(d);
    }
}

/// Per-query statistics collector, threaded through the execution stack
/// when attached (`EXPLAIN ANALYZE`, the shell, the slow-query log).
/// Everything here is an order-independent sum or max, preserving the
/// determinism contract.
#[derive(Debug, Default)]
pub struct QueryStats {
    pipelines: Mutex<Vec<std::sync::Arc<PipelineStats>>>,
    /// conf()/aconf()/tconf confidence computations performed.
    pub conf_calls: Counter,
    /// Decomposition-tree nodes expanded by exact computations.
    pub dtree_nodes: Counter,
    /// DNF clauses submitted (lineage size).
    pub dnf_clauses: Counter,
    /// Monte Carlo samples drawn by approximate computations.
    pub samples_drawn: Counter,
    /// Seeded sample batches those samples came from (deterministic:
    /// derived from sample counts, not from speculative execution).
    pub sample_batches: Counter,
    /// Vector-kernel batches that fell back to the scalar redo.
    pub scalar_fallbacks: Counter,
    /// `aconf()` estimates in this statement that a governor deadline
    /// cut early (degraded: partial seeded mean, achieved stderr).
    pub degraded_conf: Counter,
    /// Rows in the statement's result.
    pub rows_returned: Counter,
    /// Worst observed relative standard error at estimator stop, as f64
    /// bits (positive floats order like their bit patterns, so
    /// `fetch_max` on bits is max on values).
    max_rel_stderr_bits: AtomicU64,
    /// Root span id of the statement's trace tree (0 when tracing was
    /// off) — links the slow-query log and tests to [`trace`] records.
    root_span: AtomicU64,
}

impl QueryStats {
    /// A fresh, empty collector.
    pub fn new() -> QueryStats {
        QueryStats::default()
    }

    /// Register a pipeline collector (in execution order).
    pub fn register_pipeline(&self, p: std::sync::Arc<PipelineStats>) {
        self.pipelines.lock().expect("pipeline registry poisoned").push(p);
    }

    /// The registered pipelines, in execution order.
    pub fn pipelines(&self) -> Vec<std::sync::Arc<PipelineStats>> {
        self.pipelines.lock().expect("pipeline registry poisoned").clone()
    }

    /// Number of pipelines executed.
    pub fn pipeline_count(&self) -> usize {
        self.pipelines.lock().expect("pipeline registry poisoned").len()
    }

    /// Record one estimator run's relative standard error at stop.
    pub fn record_rel_stderr(&self, rse: f64) {
        if rse.is_finite() && rse > 0.0 {
            self.max_rel_stderr_bits.fetch_max(rse.to_bits(), Ordering::Relaxed);
        }
    }

    /// Worst relative standard error across estimator runs (0.0 if no
    /// approximate computation ran).
    pub fn max_rel_stderr(&self) -> f64 {
        f64::from_bits(self.max_rel_stderr_bits.load(Ordering::Relaxed))
    }

    /// Link this query to its statement-root trace span.
    pub fn set_root_span(&self, id: u64) {
        self.root_span.store(id, Ordering::Relaxed);
    }

    /// The statement-root trace span id, or `None` if tracing was off.
    pub fn root_span(&self) -> Option<u64> {
        match self.root_span.load(Ordering::Relaxed) {
            0 => None,
            id => Some(id),
        }
    }

    /// One-line summary for the slow-query log and the shell timing line.
    pub fn summary(&self) -> String {
        let mut s = format!("{} pipeline(s)", self.pipeline_count());
        let (morsels, rows_out) = self.pipelines().iter().fold((0, 0), |(m, r), p| {
            (m + p.morsels.get(), r + p.stages.last().map_or(0, |s| s.rows_out.get()))
        });
        s.push_str(&format!(", {morsels} morsel(s), {rows_out} stage-output row(s)"));
        if self.conf_calls.get() > 0 {
            s.push_str(&format!(
                ", {} conf call(s): {} d-tree node(s), {} sample(s)",
                self.conf_calls.get(),
                self.dtree_nodes.get(),
                self.samples_drawn.get()
            ));
        }
        if self.scalar_fallbacks.get() > 0 {
            s.push_str(&format!(", {} scalar fallback(s)", self.scalar_fallbacks.get()));
        }
        s
    }
}

// ---------------------------------------------------------------------
// Slow-query log threshold
// ---------------------------------------------------------------------

/// Sentinel for "slow-query log disabled".
const SLOW_OFF: u64 = u64::MAX;

static SLOW_MS: AtomicU64 = AtomicU64::new(SLOW_OFF);
static SLOW_INIT: std::sync::Once = std::sync::Once::new();

/// The slow-query threshold in milliseconds, if logging is enabled.
/// Initialised once from `MAYBMS_SLOW_MS` (0 logs every statement);
/// overridable at runtime with [`set_slow_log_threshold`] (`\slowlog`).
pub fn slow_log_threshold_ms() -> Option<u64> {
    SLOW_INIT.call_once(|| {
        if let Ok(v) = std::env::var("MAYBMS_SLOW_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                SLOW_MS.store(ms.min(SLOW_OFF - 1), Ordering::Relaxed);
            }
        }
    });
    match SLOW_MS.load(Ordering::Relaxed) {
        SLOW_OFF => None,
        ms => Some(ms),
    }
}

/// Set (or, with `None`, disable) the slow-query threshold.
pub fn set_slow_log_threshold(ms: Option<u64>) {
    // Make sure the env read cannot overwrite an explicit setting later.
    SLOW_INIT.call_once(|| {});
    SLOW_MS.store(ms.map_or(SLOW_OFF, |m| m.min(SLOW_OFF - 1)), Ordering::Relaxed);
}

static SLOW_LOG_FILE: OnceLock<Option<Mutex<std::fs::File>>> = OnceLock::new();

/// Append one structured record (a complete JSON line, no trailing
/// newline) to the `MAYBMS_SLOW_LOG_FILE` JSONL log. No-op unless the
/// environment variable names a writable path (checked once).
pub fn slow_log_write(line: &str) {
    let file = SLOW_LOG_FILE.get_or_init(|| {
        let path = std::env::var("MAYBMS_SLOW_LOG_FILE").ok()?;
        let path = path.trim();
        if path.is_empty() {
            return None;
        }
        match std::fs::File::options().create(true).append(true).open(path) {
            Ok(f) => Some(Mutex::new(f)),
            Err(e) => {
                eprintln!("maybms: cannot open MAYBMS_SLOW_LOG_FILE {path:?}: {e}");
                None
            }
        }
    });
    if let Some(f) = file.as_ref() {
        use std::io::Write as _;
        let mut f = f.lock().expect("slow log file poisoned");
        let _ = f.write_all(line.as_bytes());
        let _ = f.write_all(b"\n");
        let _ = f.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        static BOUNDS: &[u64] = &[1_000, 10_000, 100_000];
        let h = Histogram::new(BOUNDS);
        h.observe_nanos(500); // bucket 0
        h.observe_nanos(1_000); // le bound is inclusive -> bucket 0
        h.observe_nanos(5_000); // bucket 1
        h.observe_nanos(1_000_000); // +Inf
        assert_eq!(h.count(), 4);
        let mut out = String::new();
        h.render(&mut out, "t");
        assert!(out.contains("t_bucket{le=\"0.000001\"} 2"), "{out}");
        assert!(out.contains("t_bucket{le=\"0.00001\"} 3"), "{out}");
        assert!(out.contains("t_bucket{le=\"0.0001\"} 3"), "{out}");
        assert!(out.contains("t_bucket{le=\"+Inf\"} 4"), "{out}");
        assert!(out.contains("t_count 4"), "{out}");
    }

    #[test]
    fn registry_renders_prometheus_text() {
        metrics().wal_appends.inc();
        metrics().wal_fsync_seconds.observe(Duration::from_micros(120));
        let text = render_prometheus();
        assert!(text.contains("# TYPE maybms_store_wal_appends_total counter"), "{text}");
        assert!(text.contains("# TYPE maybms_store_wal_fsync_seconds histogram"), "{text}");
        assert!(text.contains("maybms_store_wal_fsync_seconds_bucket{le=\"+Inf\"}"), "{text}");
        assert!(text.contains("maybms_pipe_morsels_total"), "{text}");
    }

    #[test]
    fn query_stats_accumulate_and_summarise() {
        let qs = QueryStats::new();
        let p = std::sync::Arc::new(PipelineStats::new(
            "output",
            "t (3 stored rows)",
            vec!["filter x > 1".into(), "project [x]".into()],
        ));
        qs.register_pipeline(p.clone());
        p.flush_morsel(&[(3, 2), (2, 2)]);
        p.flush_morsel(&[(1, 1), (1, 1)]);
        assert_eq!(p.morsels.get(), 2);
        assert_eq!(p.stages[0].rows_in.get(), 4);
        assert_eq!(p.stages[0].rows_out.get(), 3);
        assert_eq!(p.stages[1].rows_out.get(), 3);
        assert_eq!(qs.pipeline_count(), 1);
        qs.record_rel_stderr(0.02);
        qs.record_rel_stderr(0.01);
        assert_eq!(qs.max_rel_stderr(), 0.02);
        let s = qs.summary();
        assert!(s.contains("1 pipeline(s)"), "{s}");
        assert!(s.contains("2 morsel(s)"), "{s}");
    }

    #[test]
    fn slow_log_threshold_settable() {
        set_slow_log_threshold(Some(12));
        assert_eq!(slow_log_threshold_ms(), Some(12));
        set_slow_log_threshold(None);
        assert_eq!(slow_log_threshold_ms(), None);
    }
}
