//! Property tests: the exact d-tree algorithm against the enumeration
//! oracle on random DNFs, in every heuristic configuration; Karp–Luby
//! statistical sanity; SPROUT against exact on random hierarchical
//! instances.

use std::collections::HashMap;

use maybms_conf::exact::{self, ExactOptions, VarChoice};
use maybms_conf::sprout::{self, Cq, SproutDb, Subgoal, Term};
use maybms_conf::{naive, Dnf};
use maybms_engine::{rel, DataType, Expr, Value};
use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
use maybms_urel::{Assignment, Var, WorldTable, Wsd};
use proptest::prelude::*;

/// A random world table (n variables with domains 2–3) plus a random DNF
/// over it.
fn arb_dnf() -> impl Strategy<Value = (WorldTable, Dnf)> {
    let var_specs = prop::collection::vec(2usize..4, 1..7);
    (var_specs, prop::collection::vec(prop::collection::vec((0usize..7, 0u16..3), 1..4), 0..7))
        .prop_map(|(domains, raw_clauses)| {
            let mut wt = WorldTable::new();
            let vars: Vec<Var> = domains
                .iter()
                .map(|&d| {
                    let p = 1.0 / d as f64;
                    let mut dist = vec![p; d];
                    // Make it non-uniform but valid.
                    dist[0] = 1.0 - p * (d - 1) as f64;
                    wt.new_var(&dist).unwrap()
                })
                .collect();
            let mut clauses = Vec::new();
            for raw in raw_clauses {
                let assignments: Vec<Assignment> = raw
                    .into_iter()
                    .map(|(vi, alt)| {
                        let v = vars[vi % vars.len()];
                        let dom = wt.domain_size(v).unwrap() as u16;
                        Assignment::new(v, alt % dom)
                    })
                    .collect();
                if let Some(w) = Wsd::from_assignments(assignments) {
                    clauses.push(w);
                }
            }
            (wt, Dnf::new(clauses))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Exact == naive for every options combination.
    #[test]
    fn exact_equals_naive((wt, dnf) in arb_dnf()) {
        let oracle = naive::probability(&dnf, &wt, 1 << 20).unwrap();
        for var_choice in [VarChoice::MaxOccurrence, VarChoice::MinDomain, VarChoice::First] {
            for decompose in [true, false] {
                for simplify in [true, false] {
                    for memoize in [true, false] {
                        let opts = ExactOptions { var_choice, decompose, simplify, memoize };
                        let (p, _) = exact::probability_with(&dnf, &wt, &opts).unwrap();
                        prop_assert!(
                            (p - oracle).abs() < 1e-9,
                            "opts {:?}: exact {} oracle {}", opts, p, oracle
                        );
                    }
                }
            }
        }
    }

    /// Probabilities are always within [0, 1].
    #[test]
    fn exact_in_unit_interval((wt, dnf) in arb_dnf()) {
        let p = exact::probability(&dnf, &wt).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "p = {}", p);
    }

    /// Simplification preserves probability.
    #[test]
    fn simplify_preserves_probability((wt, dnf) in arb_dnf()) {
        let a = naive::probability(&dnf, &wt, 1 << 20).unwrap();
        let b = naive::probability(&dnf.simplify(), &wt, 1 << 20).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Monotonicity: adding a clause never lowers the probability.
    #[test]
    fn adding_clause_is_monotone((wt, dnf) in arb_dnf()) {
        if dnf.is_empty() { return Ok(()); }
        let mut clauses = dnf.clauses().to_vec();
        let dropped = clauses.pop().unwrap();
        let smaller = Dnf::new(clauses);
        let p_small = exact::probability(&smaller, &wt).unwrap();
        let p_full = exact::probability(&dnf, &wt).unwrap();
        prop_assert!(p_full >= p_small - 1e-12, "dropped {:?}", dropped);
    }
}

// Random hierarchical 2-chain instances: q(a?) :- R(a,b), S(b,c).
// SPROUT eager == lazy == exact-on-lineage.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sprout_agrees_with_exact(
        r_rows in prop::collection::vec((0i64..3, 0i64..4, 1u32..10), 1..8),
        s_rows in prop::collection::vec((0i64..4, 0i64..3, 1u32..10), 1..8),
        boolean in any::<bool>(),
    ) {
        let mut wt = WorldTable::new();
        let mk = |wt: &mut WorldTable, rows: &[(i64, i64, u32)]| {
            let r = rel(
                &[("x", DataType::Int), ("y", DataType::Int), ("p", DataType::Float)],
                rows.iter()
                    .map(|&(x, y, p)| {
                        vec![Value::Int(x), Value::Int(y), Value::Float(f64::from(p) / 10.0)]
                    })
                    .collect(),
            );
            pick_tuples(&r, &PickTuplesOptions { probability: Some(Expr::col("p")) }, wt)
                .unwrap()
        };
        let mut tables = HashMap::new();
        tables.insert("R".to_string(), mk(&mut wt, &r_rows));
        tables.insert("S".to_string(), mk(&mut wt, &s_rows));
        let head = if boolean { vec![] } else { vec!["a".to_string()] };
        let q = Cq {
            head: head.clone(),
            subgoals: vec![
                Subgoal {
                    table: "R".into(),
                    terms: vec![
                        Term::Var("a".into()),
                        Term::Var("b".into()),
                        Term::Var("pr".into()),
                    ],
                },
                Subgoal {
                    table: "S".into(),
                    terms: vec![
                        Term::Var("b".into()),
                        Term::Var("c".into()),
                        Term::Var("ps".into()),
                    ],
                },
            ],
        };
        let plan = sprout::safe_plan(&q).expect("hierarchical");
        let sdb = SproutDb { tables: &tables, wt: &wt };
        let mut eager = sprout::eval_eager(&sdb, &plan).unwrap();
        let mut lazy = sprout::eval_lazy(&sdb, &plan).unwrap();
        eager.sort_by(|a, b| a.0.cmp(&b.0));
        lazy.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(eager.len(), lazy.len());
        let lineages = sprout::lineage_dnf(&sdb, &plan, &head).unwrap();
        // Every row with nonzero probability appears with the exact value.
        for ((row_e, pe), (row_l, pl)) in eager.iter().zip(&lazy) {
            prop_assert_eq!(row_e, row_l);
            prop_assert!((pe - pl).abs() < 1e-9, "eager {} lazy {}", pe, pl);
            let truth = exact::probability(&lineages[row_e], &wt).unwrap();
            prop_assert!((pe - truth).abs() < 1e-9, "sprout {} exact {}", pe, truth);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Chain rule: P(A ∧ B) = P(A | B) · P(B) whenever P(B) > 0, with the
    /// conjunction built by the conditioning module.
    #[test]
    fn conditioning_chain_rule((wt, a) in arb_dnf(), clause_pick in any::<prop::sample::Index>()) {
        use maybms_conf::condition;
        // Derive B from A's vocabulary so the events are dependent: B is a
        // single random clause of A (or skip when A is empty).
        if a.is_empty() { return Ok(()); }
        let b = Dnf::new(vec![a.clauses()[clause_pick.index(a.len())].clone()]);
        let p_b = exact::probability(&b, &wt).unwrap();
        if p_b <= 0.0 { return Ok(()); }
        let p_and = exact::probability(&condition::and(&a, &b), &wt).unwrap();
        let p_given = condition::conditional_probability(
            &a, &b, &wt, maybms_conf::ConfMethod::Exact,
        ).unwrap();
        prop_assert!((p_given * p_b - p_and).abs() < 1e-9,
            "P(A|B)={} P(B)={} P(A∧B)={}", p_given, p_b, p_and);
        // B ⊆ A here (B is one of A's clauses), so P(A | B) must be 1.
        prop_assert!((p_given - 1.0).abs() < 1e-9);
    }

    /// Conjunction semantics: and(A, B) is satisfied exactly by the worlds
    /// satisfying both.
    #[test]
    fn dnf_and_semantics((wt, a) in arb_dnf(), (wt2, b_raw) in arb_dnf()) {
        use maybms_conf::condition;
        // Rebuild B over wt's variables (truncate ids into range).
        let _ = wt2;
        let nvars = wt.num_vars() as u32;
        if nvars == 0 { return Ok(()); }
        let clauses: Vec<_> = b_raw
            .clauses()
            .iter()
            .filter_map(|c| {
                maybms_urel::Wsd::from_assignments(
                    c.assignments()
                        .iter()
                        .map(|asg| {
                            let v = Var(asg.var.0 % nvars);
                            let dom = wt.domain_size(v).unwrap() as u16;
                            Assignment::new(v, asg.alt % dom)
                        })
                        .collect(),
                )
            })
            .collect();
        let b = Dnf::new(clauses);
        let both = condition::and(&a, &b);
        // Enumerate the worlds of wt and compare satisfaction.
        for (world, _p) in wt.enumerate_worlds(1 << 16).unwrap() {
            let expect = a.satisfied_by(&world) && b.satisfied_by(&world);
            prop_assert_eq!(both.satisfied_by(&world), expect, "world {:?}", world);
        }
    }
}

/// Statistical check of the DKLR (ε, δ) guarantee on a fixed DNF family —
/// not a proptest (needs many Monte Carlo runs per instance).
#[test]
fn dklr_guarantee_statistical() {
    use maybms_conf::dklr::{approximate, DklrOptions};
    use maybms_conf::karp_luby::KarpLuby;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut wt = WorldTable::new();
    let mut clauses = Vec::new();
    for i in 0..8 {
        let x = wt.new_var(&[0.6, 0.4]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        clauses.push(
            Wsd::from_assignments(vec![
                Assignment::new(x, 1),
                Assignment::new(y, (i % 2) as u16),
            ])
            .unwrap(),
        );
    }
    let dnf = Dnf::new(clauses);
    let truth = exact::probability(&dnf, &wt).unwrap();
    let kl = KarpLuby::new(&dnf, &wt).unwrap();
    let opts = DklrOptions::new(0.15, 0.1);
    let mut rng = StdRng::seed_from_u64(2024);
    let runs = 40;
    let mut failures = 0;
    for _ in 0..runs {
        let a = approximate(&kl, &wt, &opts, &mut rng).unwrap();
        if ((a.estimate - truth) / truth).abs() > opts.epsilon {
            failures += 1;
        }
    }
    // δ = 0.1 → expect ≤ ~4 failures in 40; allow slack to avoid flakiness.
    assert!(failures <= 8, "(ε,δ) guarantee violated: {failures}/{runs} failures");
}
