//! SPROUT: scalable confidence computation for *tractable* queries on
//! tuple-independent probabilistic databases "by reduction of confidence
//! computation to a sequence of SQL-like aggregations" (§2.3, following
//! Olteanu–Huang–Koch, ICDE 2009).
//!
//! * [`Cq`] describes a conjunctive query without self-joins over
//!   tuple-independent U-relations.
//! * [`is_hierarchical`] implements the tractability test: for any two
//!   existential query variables, the sets of subgoals using them must be
//!   nested or disjoint.
//! * [`safe_plan`] compiles a hierarchical query into a [`SproutPlan`]
//!   whose operators are ordinary relational work plus probability
//!   bookkeeping: **independent join** (`p = p_l · p_r`) and
//!   **independent project** (`p = 1 − Π(1 − pᵢ)`).
//! * [`eval_eager`] interleaves that probability aggregation with the
//!   relational operators (the classic safe-plan execution).
//! * [`eval_lazy`] runs the relational part first, materialising full
//!   lineage, and then computes all confidences in a single
//!   structure-directed pass over the grouped lineage — SPROUT's lazy
//!   plans (one scan over lexicographically sorted one-occurrence-form
//!   lineage; we group hash-wise, which is the same aggregation shape).
//!
//! Both evaluators return identical probabilities; they differ in where
//! the aggregation work happens, which is exactly what experiment E4
//! measures.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use maybms_engine::Value;
use maybms_urel::{Result, URelation, UrelError, WorldTable};

use crate::dnf::Dnf;

// ---------------------------------------------------------------------------
// Query description
// ---------------------------------------------------------------------------

/// A term in a subgoal: a named query variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Query variable (shared names join).
    Var(String),
    /// Constant (selection).
    Const(Value),
}

/// One subgoal `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgoal {
    /// Relation name (must be tuple-independent; no self-joins).
    pub table: String,
    /// Terms, one per column of the relation.
    pub terms: Vec<Term>,
}

impl Subgoal {
    /// Distinct variable names, in first-occurrence order.
    pub fn var_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

/// A conjunctive query `q(head) :- sg₁, …, sgₙ` without self-joins.
#[derive(Debug, Clone, PartialEq)]
pub struct Cq {
    /// Head (grouping/output) variables.
    pub head: Vec<String>,
    /// Subgoals.
    pub subgoals: Vec<Subgoal>,
}

impl Cq {
    /// All variable names, in first-occurrence order.
    pub fn all_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        for sg in &self.subgoals {
            for v in sg.var_names() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Existential (non-head) variables.
    pub fn existential_vars(&self) -> Vec<String> {
        self.all_vars().into_iter().filter(|v| !self.head.contains(v)).collect()
    }

    /// True when no relation name repeats (SPROUT's tractable class here
    /// excludes self-joins).
    pub fn has_no_self_joins(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.subgoals.iter().all(|sg| seen.insert(sg.table.clone()))
    }
}

/// The hierarchy test: for every pair of existential variables `x`, `y`,
/// `sg(x)` and `sg(y)` must be nested or disjoint (`sg(v)` = indices of
/// subgoals mentioning `v`). Hierarchical queries without self-joins are
/// exactly the tractable conjunctive queries on tuple-independent
/// databases.
pub fn is_hierarchical(cq: &Cq) -> bool {
    let ex = cq.existential_vars();
    let sg_of = |v: &String| -> BTreeSet<usize> {
        cq.subgoals
            .iter()
            .enumerate()
            .filter(|(_, sg)| sg.var_names().contains(v))
            .map(|(i, _)| i)
            .collect()
    };
    for (i, x) in ex.iter().enumerate() {
        let sx = sg_of(x);
        for y in ex.iter().skip(i + 1) {
            let sy = sg_of(y);
            let nested = sx.is_subset(&sy) || sy.is_subset(&sx);
            let disjoint = sx.is_disjoint(&sy);
            if !nested && !disjoint {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Safe plans
// ---------------------------------------------------------------------------

/// A SPROUT plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum SproutPlan {
    /// Scan one subgoal (constants become selections, repeated variables
    /// become intra-tuple equality). `leaf` indexes the subgoal in the
    /// originating query, identifying its lineage column.
    Scan {
        /// Leaf id (position of the subgoal in the query).
        leaf: usize,
        /// The subgoal.
        subgoal: Subgoal,
    },
    /// Natural join of two independent subplans (disjoint tables);
    /// `p = p_l · p_r` per joined row.
    IndepJoin {
        /// Left input.
        left: Box<SproutPlan>,
        /// Right input.
        right: Box<SproutPlan>,
    },
    /// Project onto `onto`, eliminating variables whose distinct values
    /// have pairwise-independent lineage; `p = 1 − Π(1 − pᵢ)`.
    IndepProject {
        /// Input plan.
        input: Box<SproutPlan>,
        /// Output columns (variable names).
        onto: Vec<String>,
    },
}

impl SproutPlan {
    /// The output columns (variable names) of this node.
    pub fn columns(&self) -> Vec<String> {
        match self {
            SproutPlan::Scan { subgoal, .. } => subgoal.var_names(),
            SproutPlan::IndepJoin { left, right } => {
                let mut cols = left.columns();
                for c in right.columns() {
                    if !cols.contains(&c) {
                        cols.push(c);
                    }
                }
                cols
            }
            SproutPlan::IndepProject { onto, .. } => onto.clone(),
        }
    }

    /// Collect the leaf ids appearing below this node.
    pub fn leaves(&self, out: &mut Vec<usize>) {
        match self {
            SproutPlan::Scan { leaf, .. } => out.push(*leaf),
            SproutPlan::IndepJoin { left, right } => {
                left.leaves(out);
                right.leaves(out);
            }
            SproutPlan::IndepProject { input, .. } => input.leaves(out),
        }
    }
}

/// Compile a hierarchical query (no self-joins) into a safe plan.
/// Returns `None` when the query is not hierarchical or repeats a table —
/// callers then fall back to the general exact/approximate algorithms.
pub fn safe_plan(cq: &Cq) -> Option<SproutPlan> {
    if !cq.has_no_self_joins() || !is_hierarchical(cq) {
        return None;
    }
    let indices: Vec<usize> = (0..cq.subgoals.len()).collect();
    let head: BTreeSet<String> = cq.head.iter().cloned().collect();
    let plan = build(cq, &indices, &head)?;
    // Final projection fixes the output column order to the head.
    Some(SproutPlan::IndepProject { input: Box::new(plan), onto: cq.head.clone() })
}

fn build(cq: &Cq, subgoals: &[usize], head: &BTreeSet<String>) -> Option<SproutPlan> {
    debug_assert!(!subgoals.is_empty());
    if subgoals.len() == 1 {
        let i = subgoals[0];
        let scan = SproutPlan::Scan { leaf: i, subgoal: cq.subgoals[i].clone() };
        let keep: Vec<String> = scan
            .columns()
            .into_iter()
            .filter(|c| head.contains(c))
            .collect();
        if keep.len() == scan.columns().len() {
            return Some(scan);
        }
        // Independent project: tuples of one TI table are independent.
        return Some(SproutPlan::IndepProject { input: Box::new(scan), onto: keep });
    }
    // Connected components through shared *existential* variables.
    let comps = connected_components(cq, subgoals, head);
    if comps.len() > 1 {
        let mut plans = comps.iter().map(|c| build(cq, c, head));
        let first = plans.next()??;
        let mut acc = first;
        for p in plans {
            acc = SproutPlan::IndepJoin { left: Box::new(acc), right: Box::new(p?) };
        }
        return Some(acc);
    }
    // One component: find a root existential variable present in every
    // subgoal; lift it into the head and project it away on the way out.
    let root = cq
        .all_vars()
        .into_iter()
        .filter(|v| !head.contains(v))
        .find(|v| {
            subgoals
                .iter()
                .all(|&i| cq.subgoals[i].var_names().contains(v))
        })?;
    let mut inner_head = head.clone();
    inner_head.insert(root);
    let inner = build(cq, subgoals, &inner_head)?;
    let onto: Vec<String> =
        inner.columns().into_iter().filter(|c| head.contains(c)).collect();
    Some(SproutPlan::IndepProject { input: Box::new(inner), onto })
}

/// Partition `subgoals` into components connected by shared existential
/// variables.
fn connected_components(
    cq: &Cq,
    subgoals: &[usize],
    head: &BTreeSet<String>,
) -> Vec<Vec<usize>> {
    let n = subgoals.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = i;
        while parent[c] != r {
            let nx = parent[c];
            parent[c] = r;
            c = nx;
        }
        r
    }
    let mut owner: HashMap<String, usize> = HashMap::new();
    for (pos, &i) in subgoals.iter().enumerate() {
        for v in cq.subgoals[i].var_names() {
            if head.contains(&v) {
                continue;
            }
            match owner.get(&v) {
                Some(&q) => {
                    let (a, b) = (find(&mut parent, pos), find(&mut parent, q));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(v, pos);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (pos, &i) in subgoals.iter().enumerate() {
        groups.entry(find(&mut parent, pos)).or_default().push(i);
    }
    groups.into_values().collect()
}

// ---------------------------------------------------------------------------
// Tuple independence
// ---------------------------------------------------------------------------

/// Check that `u` is tuple-independent: every WSD has at most one
/// assignment, over a *Boolean-style* variable not shared with any other
/// tuple (within this relation).
pub fn is_tuple_independent(u: &URelation) -> bool {
    let mut seen = BTreeSet::new();
    u.tuples().iter().all(|t| {
        t.wsd.len() <= 1
            && t.wsd.vars().all(|v| seen.insert(v))
    })
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// A row of output values keyed for grouping.
pub type Row = Vec<Value>;

/// Result rows: distinct head-value rows with their confidence.
pub type ConfRows = Vec<(Row, f64)>;

/// The database a plan runs over.
#[derive(Debug)]
pub struct SproutDb<'a> {
    /// Tuple-independent input relations by name.
    pub tables: &'a HashMap<String, URelation>,
    /// The shared world table.
    pub wt: &'a WorldTable,
}

impl SproutDb<'_> {
    fn table(&self, name: &str) -> Result<&URelation> {
        self.tables.get(name).ok_or_else(|| {
            UrelError::Engine(maybms_engine::EngineError::TableNotFound {
                name: name.to_string(),
            })
        })
    }
}

/// Scan a subgoal: returns `(row over var columns, tuple index, prob)` for
/// every matching tuple.
fn scan_rows(
    db: &SproutDb<'_>,
    subgoal: &Subgoal,
) -> Result<Vec<(Row, usize, f64)>> {
    let rel = db.table(&subgoal.table)?;
    if rel.schema().len() != subgoal.terms.len() {
        return Err(UrelError::Engine(maybms_engine::EngineError::SchemaMismatch {
            message: format!(
                "subgoal over {} has {} terms but the relation has {} columns",
                subgoal.table,
                subgoal.terms.len(),
                rel.schema().len()
            ),
        }));
    }
    let var_names = subgoal.var_names();
    let mut out = Vec::new();
    'tuples: for (ti, t) in rel.tuples().iter().enumerate() {
        // Constants and repeated-variable equality.
        let mut binding: HashMap<&str, &Value> = HashMap::new();
        for (term, v) in subgoal.terms.iter().zip(t.data.values()) {
            match term {
                Term::Const(c) => {
                    if c != v {
                        continue 'tuples;
                    }
                }
                Term::Var(name) => match binding.get(name.as_str()) {
                    Some(&prev) if prev != v => continue 'tuples,
                    _ => {
                        binding.insert(name, v);
                    }
                },
            }
        }
        let row: Row =
            var_names.iter().map(|n| (*binding[n.as_str()]).clone()).collect();
        out.push((row, ti, t.wsd.prob(db.wt)?));
    }
    Ok(out)
}

/// Eager (classic safe-plan) evaluation: each operator outputs *distinct*
/// rows with their probability, aggregating as it goes.
pub fn eval_eager(db: &SproutDb<'_>, plan: &SproutPlan) -> Result<ConfRows> {
    match plan {
        SproutPlan::Scan { subgoal, .. } => {
            // Combine duplicate value-rows (distinct independent tuples).
            let mut map: BTreeMap<Row, f64> = BTreeMap::new();
            for (row, _ti, p) in scan_rows(db, subgoal)? {
                let none = map.entry(row).or_insert(1.0);
                *none *= 1.0 - p;
            }
            Ok(map.into_iter().map(|(r, none)| (r, 1.0 - none)).collect())
        }
        SproutPlan::IndepJoin { left, right } => {
            let lcols = left.columns();
            let rcols = right.columns();
            let shared: Vec<String> =
                rcols.iter().filter(|c| lcols.contains(c)).cloned().collect();
            let l_key: Vec<usize> = shared
                .iter()
                .map(|c| lcols.iter().position(|x| x == c).expect("shared col"))
                .collect();
            let r_key: Vec<usize> = shared
                .iter()
                .map(|c| rcols.iter().position(|x| x == c).expect("shared col"))
                .collect();
            let r_extra: Vec<usize> = (0..rcols.len())
                .filter(|i| !shared.contains(&rcols[*i]))
                .collect();
            let lrows = eval_eager(db, left)?;
            let rrows = eval_eager(db, right)?;
            let mut table: HashMap<Row, Vec<&(Row, f64)>> = HashMap::new();
            for lr in &lrows {
                let key: Row = l_key.iter().map(|&i| lr.0[i].clone()).collect();
                table.entry(key).or_default().push(lr);
            }
            let mut out = Vec::new();
            for (rrow, rp) in &rrows {
                let key: Row = r_key.iter().map(|&i| rrow[i].clone()).collect();
                if let Some(ls) = table.get(&key) {
                    for (lrow, lp) in ls {
                        let mut row = lrow.clone();
                        row.extend(r_extra.iter().map(|&i| rrow[i].clone()));
                        out.push((row, lp * rp));
                    }
                }
            }
            Ok(out)
        }
        SproutPlan::IndepProject { input, onto } => {
            let in_cols = input.columns();
            let keep: Vec<usize> = onto
                .iter()
                .map(|c| in_cols.iter().position(|x| x == c).expect("onto ⊆ input"))
                .collect();
            let rows = eval_eager(db, input)?;
            let mut map: BTreeMap<Row, f64> = BTreeMap::new();
            for (row, p) in rows {
                let out_row: Row = keep.iter().map(|&i| row[i].clone()).collect();
                let none = map.entry(out_row).or_insert(1.0);
                *none *= 1.0 - p;
            }
            Ok(map.into_iter().map(|(r, none)| (r, 1.0 - none)).collect())
        }
    }
}

/// One fully-materialised lineage row of the lazy evaluation: the values of
/// *all* plan variables plus, per leaf, the contributing tuple id and its
/// probability.
#[derive(Debug, Clone)]
struct LineageRow {
    vals: Row,
    /// `(leaf id → (tuple idx, prob))`, sorted by leaf id.
    leaves: Vec<(usize, (usize, f64))>,
}

/// Lazy evaluation: materialise the relational join with full lineage
/// first, then compute every confidence in one structure-directed
/// aggregation pass.
pub fn eval_lazy(db: &SproutDb<'_>, plan: &SproutPlan) -> Result<ConfRows> {
    let (cols, rows) = materialise(db, plan)?;
    let map = lazy_conf(plan, &cols, &rows);
    Ok(map.into_iter().collect())
}

/// Relational phase: pure joins, no probability aggregation, all columns
/// kept. `IndepProject` is a no-op here — that is what "lazy" means.
fn materialise(
    db: &SproutDb<'_>,
    plan: &SproutPlan,
) -> Result<(Vec<String>, Vec<LineageRow>)> {
    match plan {
        SproutPlan::Scan { leaf, subgoal } => {
            let rows = scan_rows(db, subgoal)?
                .into_iter()
                .map(|(vals, ti, p)| LineageRow { vals, leaves: vec![(*leaf, (ti, p))] })
                .collect();
            Ok((subgoal.var_names(), rows))
        }
        SproutPlan::IndepJoin { left, right } => {
            let (lcols, lrows) = materialise(db, left)?;
            let (rcols, rrows) = materialise(db, right)?;
            let shared: Vec<String> =
                rcols.iter().filter(|c| lcols.contains(c)).cloned().collect();
            let l_key: Vec<usize> = shared
                .iter()
                .map(|c| lcols.iter().position(|x| x == c).expect("shared"))
                .collect();
            let r_key: Vec<usize> = shared
                .iter()
                .map(|c| rcols.iter().position(|x| x == c).expect("shared"))
                .collect();
            let r_extra: Vec<usize> =
                (0..rcols.len()).filter(|i| !shared.contains(&rcols[*i])).collect();
            let mut out_cols = lcols.clone();
            out_cols.extend(r_extra.iter().map(|&i| rcols[i].clone()));
            let mut table: HashMap<Row, Vec<&LineageRow>> = HashMap::new();
            for lr in &lrows {
                let key: Row = l_key.iter().map(|&i| lr.vals[i].clone()).collect();
                table.entry(key).or_default().push(lr);
            }
            let mut out = Vec::new();
            for rr in &rrows {
                let key: Row = r_key.iter().map(|&i| rr.vals[i].clone()).collect();
                if let Some(ls) = table.get(&key) {
                    for lr in ls {
                        let mut vals = lr.vals.clone();
                        vals.extend(r_extra.iter().map(|&i| rr.vals[i].clone()));
                        let mut leaves = lr.leaves.clone();
                        leaves.extend(rr.leaves.iter().cloned());
                        leaves.sort_by_key(|(l, _)| *l);
                        out.push(LineageRow { vals, leaves });
                    }
                }
            }
            Ok((out_cols, out))
        }
        SproutPlan::IndepProject { input, .. } => materialise(db, input),
    }
}

/// Confidence phase of the lazy evaluation: replay the plan structure over
/// the materialised lineage, aggregating bottom-up. Each recursion level is
/// one grouping pass (the "SQL-like aggregation" of §2.3).
fn lazy_conf(
    plan: &SproutPlan,
    cols: &[String],
    rows: &[LineageRow],
) -> BTreeMap<Row, f64> {
    let proj = |names: &[String], r: &LineageRow| -> Row {
        names
            .iter()
            .map(|n| {
                let i = cols.iter().position(|c| c == n).expect("column present");
                r.vals[i].clone()
            })
            .collect()
    };
    match plan {
        SproutPlan::Scan { leaf, subgoal } => {
            let names = subgoal.var_names();
            // Per distinct value-row: the set of distinct contributing
            // tuples of this leaf, combined as independent events.
            let mut groups: BTreeMap<Row, BTreeMap<usize, f64>> = BTreeMap::new();
            for r in rows {
                let (_l, (ti, p)) = r
                    .leaves
                    .iter()
                    .find(|(l, _)| l == leaf)
                    .expect("leaf lineage present");
                groups.entry(proj(&names, r)).or_default().insert(*ti, *p);
            }
            groups
                .into_iter()
                .map(|(row, tuples)| {
                    let none: f64 = tuples.values().map(|p| 1.0 - p).product();
                    (row, 1.0 - none)
                })
                .collect()
        }
        SproutPlan::IndepJoin { left, right } => {
            let lmap = lazy_conf(left, cols, rows);
            let rmap = lazy_conf(right, cols, rows);
            let (lnames, rnames) = (left.columns(), right.columns());
            let out_names = plan.columns();
            let mut out: BTreeMap<Row, f64> = BTreeMap::new();
            for r in rows {
                let key = proj(&out_names, r);
                if out.contains_key(&key) {
                    continue;
                }
                let lp = lmap[&proj(&lnames, r)];
                let rp = rmap[&proj(&rnames, r)];
                out.insert(key, lp * rp);
            }
            out
        }
        SproutPlan::IndepProject { input, onto } => {
            let inner = lazy_conf(input, cols, rows);
            let in_names = input.columns();
            let keep: Vec<usize> = onto
                .iter()
                .map(|c| in_names.iter().position(|x| x == c).expect("onto ⊆ input"))
                .collect();
            let mut out: BTreeMap<Row, f64> = BTreeMap::new();
            for (row, p) in inner {
                let out_row: Row = keep.iter().map(|&i| row[i].clone()).collect();
                let none = out.entry(out_row).or_insert(1.0);
                *none *= 1.0 - p;
            }
            out.into_iter().map(|(r, none)| (r, 1.0 - none)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Lineage extraction (for validating against the general algorithms)
// ---------------------------------------------------------------------------

/// The lineage DNF of one head-value row: one clause per materialised
/// lineage row (conjunction of the contributing tuples' conditions).
/// Used by tests to cross-check SPROUT against the exact d-tree algorithm.
pub fn lineage_dnf(
    db: &SproutDb<'_>,
    plan: &SproutPlan,
    cq_head: &[String],
) -> Result<BTreeMap<Row, Dnf>> {
    let (cols, rows) = materialise(db, plan)?;
    let keep: Vec<usize> = cq_head
        .iter()
        .map(|c| {
            cols.iter().position(|x| x == c).ok_or_else(|| {
                UrelError::Engine(maybms_engine::EngineError::ColumnNotFound {
                    name: c.clone(),
                    available: cols.clone(),
                })
            })
        })
        .collect::<Result<_>>()?;
    // Rebuild each row's clause from the leaf tuples' WSDs.
    let mut leaf_tables: HashMap<usize, &URelation> = HashMap::new();
    collect_leaf_tables(db, plan, &mut leaf_tables)?;
    let mut out: BTreeMap<Row, Vec<maybms_urel::Wsd>> = BTreeMap::new();
    for r in rows {
        let key: Row = keep.iter().map(|&i| r.vals[i].clone()).collect();
        let mut clause = maybms_urel::Wsd::tautology();
        let mut dead = false;
        for (leaf, (ti, _p)) in &r.leaves {
            let wsd = &leaf_tables[leaf].tuples()[*ti].wsd;
            match clause.conjoin(wsd) {
                Some(c) => clause = c,
                None => {
                    dead = true;
                    break;
                }
            }
        }
        if !dead {
            out.entry(key).or_default().push(clause);
        }
    }
    Ok(out.into_iter().map(|(k, cs)| (k, Dnf::new(cs))).collect())
}

fn collect_leaf_tables<'a>(
    db: &SproutDb<'a>,
    plan: &SproutPlan,
    out: &mut HashMap<usize, &'a URelation>,
) -> Result<()> {
    match plan {
        SproutPlan::Scan { leaf, subgoal } => {
            let table = db.tables.get(&subgoal.table).ok_or_else(|| {
                UrelError::Engine(maybms_engine::EngineError::TableNotFound {
                    name: subgoal.table.clone(),
                })
            })?;
            out.insert(*leaf, table);
            Ok(())
        }
        SproutPlan::IndepJoin { left, right } => {
            collect_leaf_tables(db, left, out)?;
            collect_leaf_tables(db, right, out)
        }
        SproutPlan::IndepProject { input, .. } => collect_leaf_tables(db, input, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use maybms_engine::{rel, DataType, Expr};
    use maybms_urel::pick::{pick_tuples, PickTuplesOptions};

    fn v(name: &str) -> Term {
        Term::Var(name.into())
    }

    fn c(val: impl Into<Value>) -> Term {
        Term::Const(val.into())
    }

    /// R(a,b), S(b,c) tuple-independent test database.
    fn db(wt: &mut WorldTable) -> HashMap<String, URelation> {
        let mk = |wt: &mut WorldTable, rows: Vec<Vec<Value>>, names: [&str; 3]| {
            let r = rel(
                &[
                    (names[0], DataType::Int),
                    (names[1], DataType::Int),
                    (names[2], DataType::Float),
                ],
                rows,
            );
            pick_tuples(
                &r,
                &PickTuplesOptions { probability: Some(Expr::col(names[2])) },
                wt,
            )
            .unwrap()
        };
        let mut tables = HashMap::new();
        tables.insert(
            "R".to_string(),
            mk(
                wt,
                vec![
                    vec![1.into(), 10.into(), Value::Float(0.5)],
                    vec![1.into(), 20.into(), Value::Float(0.4)],
                    vec![2.into(), 10.into(), Value::Float(0.3)],
                    vec![2.into(), 30.into(), Value::Float(0.8)],
                ],
                ["a", "b", "pr"],
            ),
        );
        tables.insert(
            "S".to_string(),
            mk(
                wt,
                vec![
                    vec![10.into(), 100.into(), Value::Float(0.9)],
                    vec![10.into(), 200.into(), Value::Float(0.2)],
                    vec![20.into(), 100.into(), Value::Float(0.6)],
                    vec![30.into(), 300.into(), Value::Float(0.7)],
                ],
                ["b", "c", "ps"],
            ),
        );
        tables
    }

    /// q(a) :- R(a, b, _), S(b, c, _) — hierarchical (sg(b) = {R,S} ⊇
    /// sg(c) = {S}).
    fn q_a() -> Cq {
        Cq {
            head: vec!["a".into()],
            subgoals: vec![
                Subgoal { table: "R".into(), terms: vec![v("a"), v("b"), v("pr")] },
                Subgoal { table: "S".into(), terms: vec![v("b"), v("c"), v("ps")] },
            ],
        }
    }

    #[test]
    fn hierarchy_test_positive_and_negative() {
        assert!(is_hierarchical(&q_a()));
        // q() :- R(x, y), S(y, z), T(x, z) — the classic non-hierarchical
        // triangle: sg(x) = {R,T}, sg(y) = {R,S} overlap without nesting.
        let bad = Cq {
            head: vec![],
            subgoals: vec![
                Subgoal { table: "R".into(), terms: vec![v("x"), v("y"), v("pr")] },
                Subgoal { table: "S".into(), terms: vec![v("y"), v("z"), v("ps")] },
                Subgoal { table: "T".into(), terms: vec![v("x"), v("z"), v("pt")] },
            ],
        };
        assert!(!is_hierarchical(&bad));
        assert!(safe_plan(&bad).is_none());
    }

    #[test]
    fn self_joins_rejected() {
        let q = Cq {
            head: vec![],
            subgoals: vec![
                Subgoal { table: "R".into(), terms: vec![v("x"), v("y"), v("p1")] },
                Subgoal { table: "R".into(), terms: vec![v("y"), v("z"), v("p2")] },
            ],
        };
        assert!(safe_plan(&q).is_none());
    }

    #[test]
    fn safe_plan_shape_for_q_a() {
        let plan = safe_plan(&q_a()).unwrap();
        assert_eq!(plan.columns(), vec!["a".to_string()]);
        let mut leaves = Vec::new();
        plan.leaves(&mut leaves);
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1]);
    }

    #[test]
    fn eager_equals_lazy_equals_exact() {
        let mut wt = WorldTable::new();
        let tables = db(&mut wt);
        for t in tables.values() {
            assert!(is_tuple_independent(t));
        }
        let sdb = SproutDb { tables: &tables, wt: &wt };
        let q = q_a();
        let plan = safe_plan(&q).unwrap();

        let mut eager = eval_eager(&sdb, &plan).unwrap();
        let mut lazy = eval_lazy(&sdb, &plan).unwrap();
        eager.sort_by(|a, b| a.0.cmp(&b.0));
        lazy.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(eager.len(), lazy.len());
        for ((re, pe), (rl, pl)) in eager.iter().zip(&lazy) {
            assert_eq!(re, rl);
            assert!((pe - pl).abs() < 1e-12, "eager {pe} lazy {pl} for {re:?}");
        }

        // Cross-check against the exact algorithm on the lineage DNF.
        let lineages = lineage_dnf(&sdb, &plan, &q.head).unwrap();
        assert_eq!(lineages.len(), eager.len());
        for (row, p) in &eager {
            let truth = exact::probability(&lineages[row], &wt).unwrap();
            assert!(
                (p - truth).abs() < 1e-9,
                "sprout {p} vs exact {truth} for {row:?}"
            );
        }
    }

    #[test]
    fn boolean_query_single_probability() {
        let mut wt = WorldTable::new();
        let tables = db(&mut wt);
        let sdb = SproutDb { tables: &tables, wt: &wt };
        // q() :- R(a, b, _), S(b, c, _)
        let q = Cq { head: vec![], subgoals: q_a().subgoals };
        let plan = safe_plan(&q).unwrap();
        let eager = eval_eager(&sdb, &plan).unwrap();
        assert_eq!(eager.len(), 1);
        assert_eq!(eager[0].0, Vec::<Value>::new());
        let lineages = lineage_dnf(&sdb, &plan, &q.head).unwrap();
        let truth = exact::probability(&lineages[&vec![]], &wt).unwrap();
        assert!((eager[0].1 - truth).abs() < 1e-9);
        let lazy = eval_lazy(&sdb, &plan).unwrap();
        assert!((lazy[0].1 - truth).abs() < 1e-9);
    }

    #[test]
    fn constants_act_as_selections() {
        let mut wt = WorldTable::new();
        let tables = db(&mut wt);
        let sdb = SproutDb { tables: &tables, wt: &wt };
        // q() :- R(1, b, _), S(b, c, _)
        let q = Cq {
            head: vec![],
            subgoals: vec![
                Subgoal { table: "R".into(), terms: vec![c(1i64), v("b"), v("pr")] },
                Subgoal { table: "S".into(), terms: vec![v("b"), v("cc"), v("ps")] },
            ],
        };
        let plan = safe_plan(&q).unwrap();
        let eager = eval_eager(&sdb, &plan).unwrap();
        let lineages = lineage_dnf(&sdb, &plan, &q.head).unwrap();
        let truth = exact::probability(&lineages[&vec![]], &wt).unwrap();
        assert!((eager[0].1 - truth).abs() < 1e-9);
        // Sanity: manual value. R(1,10) p=.5 with S(10,·): 1-(1-.9)(1-.2)=.92;
        // R(1,20) p=.4 with S(20,·): .6.
        // P = 1-(1-.5*.92)(1-.4*.6) = 1-(0.54)(0.76) = 0.5896
        assert!((eager[0].1 - 0.5896).abs() < 1e-9);
    }

    #[test]
    fn disconnected_subgoals_independent_join() {
        let mut wt = WorldTable::new();
        let tables = db(&mut wt);
        let sdb = SproutDb { tables: &tables, wt: &wt };
        // q() :- R(a, b, _), S(b2, cc, _) — no shared vars: product of the
        // two Boolean sub-queries.
        let q = Cq {
            head: vec![],
            subgoals: vec![
                Subgoal { table: "R".into(), terms: vec![v("a"), v("b"), v("pr")] },
                Subgoal { table: "S".into(), terms: vec![v("b2"), v("cc"), v("ps")] },
            ],
        };
        let plan = safe_plan(&q).unwrap();
        let p = eval_eager(&sdb, &plan).unwrap()[0].1;
        let lineages = lineage_dnf(&sdb, &plan, &q.head).unwrap();
        let truth = exact::probability(&lineages[&vec![]], &wt).unwrap();
        assert!((p - truth).abs() < 1e-9);
        let lazy = eval_lazy(&sdb, &plan).unwrap()[0].1;
        assert!((lazy - truth).abs() < 1e-9);
    }

    #[test]
    fn repeated_variable_within_subgoal_is_equality() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("a", DataType::Int), ("b", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), 1.into(), Value::Float(0.5)],
                vec![1.into(), 2.into(), Value::Float(0.5)],
            ],
        );
        let u = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        let mut tables = HashMap::new();
        tables.insert("R".to_string(), u);
        let sdb = SproutDb { tables: &tables, wt: &wt };
        // q() :- R(x, x, _): only the (1,1) tuple matches.
        let q = Cq {
            head: vec![],
            subgoals: vec![Subgoal {
                table: "R".into(),
                terms: vec![v("x"), v("x"), v("p")],
            }],
        };
        let plan = safe_plan(&q).unwrap();
        let p = eval_eager(&sdb, &plan).unwrap()[0].1;
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tuple_independence_detector() {
        let mut wt = WorldTable::new();
        let r = rel(&[("a", DataType::Int)], vec![vec![1.into()], vec![2.into()]]);
        let ti = pick_tuples(&r, &PickTuplesOptions::default(), &mut wt).unwrap();
        assert!(is_tuple_independent(&ti));
        // A repair-key pair over one group shares a variable → dependent.
        let rk = maybms_urel::repair_key(
            &r,
            &[],
            &maybms_urel::RepairKeyOptions::default(),
            &mut wt,
        )
        .unwrap();
        assert!(!is_tuple_independent(&rk));
    }
}
