//! Exact confidence computation: the Koch–Olteanu decomposition-tree
//! algorithm ("Conditioning Probabilistic Databases", VLDB 2008; §2.3 of
//! the demo paper).
//!
//! "Given a DNF (of which each clause is a conjunctive local condition),
//! the algorithm employs a combination of variable elimination and
//! decomposition of the DNF into independent subsets of clauses (i.e.,
//! subsets that do not share variables), with cost-estimation heuristics
//! for choosing whether to use the former (and for which variable) or the
//! latter."
//!
//! The recursion builds a decomposition tree (d-tree):
//!
//! * **⊥ / ⊤ leaves** — empty DNF (probability 0), tautology clause
//!   (probability 1);
//! * **independent-partition nodes** — split the clauses into connected
//!   components of the clause/variable incidence graph;
//!   `P = 1 − Π(1 − P(componentᵢ))`;
//! * **single-clause leaves** — product of the assignment probabilities;
//! * **variable-elimination nodes** (Shannon expansion over a variable's
//!   alternatives) — `P = Σ_a P(x = a) · P(DNF | x = a)`, with the variable
//!   chosen by a pluggable heuristic.

use std::collections::HashMap;

use maybms_par::ThreadPool;
use maybms_urel::{Result, UrelError, Var, WorldTable};

use crate::dnf::Dnf;

/// Default clause-count floor below which independent partitions are not
/// worth fanning out to the pool.
pub const PAR_MIN_CLAUSES: usize = 32;

/// Heuristic for picking the variable to eliminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarChoice {
    /// The variable occurring in the most clauses (default; maximises the
    /// chance that conditioning decomposes the rest).
    #[default]
    MaxOccurrence,
    /// The variable with the smallest domain (fewest recursive branches).
    MinDomain,
    /// The smallest variable id (baseline for the E7 ablation).
    First,
}

/// Tuning knobs, exposed for the E7 ablation bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactOptions {
    /// Variable-elimination heuristic.
    pub var_choice: VarChoice,
    /// When `false`, skip independence partitioning (ablation).
    pub decompose: bool,
    /// When `false`, skip the O(n²) absorption simplification.
    pub simplify: bool,
    /// Cache sub-DNF probabilities across the recursion. Pays off when
    /// Shannon branches recreate identical subproblems (recurrent
    /// structures like random-walk lineage); costs hashing on every node.
    pub memoize: bool,
}

impl ExactOptions {
    /// The configuration used by `conf()`: decomposition on, absorption
    /// on, max-occurrence elimination, no memoization.
    pub fn standard() -> ExactOptions {
        ExactOptions {
            var_choice: VarChoice::MaxOccurrence,
            decompose: true,
            simplify: true,
            memoize: false,
        }
    }

    /// [`ExactOptions::standard`] with sub-DNF memoization enabled.
    pub fn memoized() -> ExactOptions {
        ExactOptions { memoize: true, ..ExactOptions::standard() }
    }
}

/// Statistics of one exact computation (d-tree shape), for benches/tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Number of independent-partition nodes.
    pub decompositions: usize,
    /// Number of variable-elimination (Shannon) nodes.
    pub eliminations: usize,
    /// Number of leaves (constants and single clauses).
    pub leaves: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
    /// Memoization cache hits (0 unless [`ExactOptions::memoize`]).
    pub cache_hits: usize,
}

/// Exact probability of `dnf` with the standard options. Independent
/// d-tree partitions fan out to the process-wide pool when the DNF is
/// large enough; the result is bit-identical to the sequential recursion.
pub fn probability(dnf: &Dnf, wt: &WorldTable) -> Result<f64> {
    let pool = maybms_par::pool();
    if pool.threads() > 1 {
        probability_par(dnf, wt, &ExactOptions::standard(), &pool, PAR_MIN_CLAUSES)
            .map(|(p, _)| p)
    } else {
        probability_with(dnf, wt, &ExactOptions::standard()).map(|(p, _)| p)
    }
}

/// Exact probability with explicit options; also returns d-tree statistics.
pub fn probability_with(
    dnf: &Dnf,
    wt: &WorldTable,
    options: &ExactOptions,
) -> Result<(f64, ExactStats)> {
    let mut stats = ExactStats::default();
    let d = if options.simplify { dnf.simplify() } else { dnf.clone() };
    let mut cache: Cache = options.memoize.then(HashMap::new);
    let p = go(&d, wt, options, &mut stats, 1, &mut cache, None)?;
    Ok((p, stats))
}

/// [`probability_with`] on an explicit pool: independent-partition nodes
/// whose DNF holds at least `min_par_clauses` clauses evaluate their
/// children as parallel tasks (each child is a var-disjoint subproblem).
///
/// The probability is **bit-identical** to the sequential recursion at
/// any thread count: children are pure functions of their component and
/// the `1 − Π(1 − pᵢ)` combination multiplies in the (sorted) component
/// order either way. Statistics are identical too, except `cache_hits`
/// under [`ExactOptions::memoize`]: parallel children use task-local
/// caches (components share no variables, so no *cross-component* hit is
/// ever lost, but a later Shannon sibling cannot hit entries produced
/// inside a parallel child).
pub fn probability_par(
    dnf: &Dnf,
    wt: &WorldTable,
    options: &ExactOptions,
    pool: &ThreadPool,
    min_par_clauses: usize,
) -> Result<(f64, ExactStats)> {
    let mut stats = ExactStats::default();
    let d = if options.simplify { dnf.simplify() } else { dnf.clone() };
    let mut cache: Cache = options.memoize.then(HashMap::new);
    let ctx = ParCtx { pool, min_clauses: min_par_clauses.max(1) };
    let p = go(&d, wt, options, &mut stats, 1, &mut cache, Some(&ctx))?;
    Ok((p, stats))
}

type Cache = Option<HashMap<Vec<maybms_urel::Wsd>, f64>>;

/// Parallel-recursion context threaded through [`go`].
struct ParCtx<'p> {
    pool: &'p ThreadPool,
    /// Fan out a partition node only when its DNF has at least this many
    /// clauses (smaller subproblems finish faster than a task costs).
    min_clauses: usize,
}

impl ExactStats {
    /// Fold a (parallel) child's statistics into the parent's.
    fn absorb(&mut self, child: &ExactStats) {
        self.decompositions += child.decompositions;
        self.eliminations += child.eliminations;
        self.leaves += child.leaves;
        self.cache_hits += child.cache_hits;
        self.max_depth = self.max_depth.max(child.max_depth);
    }
}

/// Canonical cache key: the clause list, which [`Dnf`] keeps sorted as a
/// construction invariant — no re-sort per node.
fn cache_key(dnf: &Dnf) -> Vec<maybms_urel::Wsd> {
    debug_assert!(dnf.clauses().windows(2).all(|w| w[0] <= w[1]));
    dnf.clauses().to_vec()
}

fn go(
    dnf: &Dnf,
    wt: &WorldTable,
    options: &ExactOptions,
    stats: &mut ExactStats,
    depth: usize,
    cache: &mut Cache,
    par: Option<&ParCtx>,
) -> Result<f64> {
    // Governor checkpoint: one relaxed load per d-tree node when no
    // limit is armed.
    maybms_gov::check()
        .map_err(|g| UrelError::from(maybms_engine::EngineError::Gov(g)))?;
    stats.max_depth = stats.max_depth.max(depth);
    // Constant leaves.
    if dnf.is_empty() {
        stats.leaves += 1;
        return Ok(0.0);
    }
    if dnf.is_true() {
        stats.leaves += 1;
        return Ok(1.0);
    }
    // Single clause: product of independent assignment probabilities.
    if dnf.len() == 1 {
        stats.leaves += 1;
        return dnf.clauses()[0].prob(wt);
    }
    let key = if cache.is_some() { Some(cache_key(dnf)) } else { None };
    if let (Some(c), Some(k)) = (cache.as_ref(), key.as_ref()) {
        if let Some(&p) = c.get(k) {
            stats.cache_hits += 1;
            return Ok(p);
        }
    }
    // Independence partition.
    if options.decompose {
        let comps = components(dnf);
        if comps.len() > 1 {
            stats.decompositions += 1;
            let mut none = 1.0;
            let fan_out = par
                .filter(|c| c.pool.threads() > 1 && dnf.len() >= c.min_clauses);
            if let Some(ctx) = fan_out {
                // Components share no variables, so each child is an
                // independent pure subproblem. Fan out *chunks* of
                // components (one task per component would drown small
                // children in scheduling overhead); every chunk returns
                // its children's probabilities in component order, and
                // the parent multiplies the flat sequence left-to-right —
                // the exact float-operation order of the sequential loop
                // below, hence bit-identical results.
                let chunk =
                    maybms_par::auto_chunk(comps.len(), ctx.pool.threads(), 1);
                let children: Vec<Result<(Vec<f64>, ExactStats)>> =
                    ctx.pool.par_map_chunks(comps.len(), chunk, |range| {
                        let mut chunk_stats = ExactStats::default();
                        let mut chunk_cache: Cache = options.memoize.then(HashMap::new);
                        let mut probs = Vec::with_capacity(range.len());
                        for ci in range {
                            probs.push(go(
                                &comps[ci],
                                wt,
                                options,
                                &mut chunk_stats,
                                depth + 1,
                                &mut chunk_cache,
                                par,
                            )?);
                        }
                        Ok((probs, chunk_stats))
                    });
                for child in children {
                    let (probs, chunk_stats) = child?;
                    for p in probs {
                        none *= 1.0 - p;
                    }
                    stats.absorb(&chunk_stats);
                }
            } else {
                for comp in comps {
                    let p = go(&comp, wt, options, stats, depth + 1, cache, par)?;
                    none *= 1.0 - p;
                }
            }
            let total = 1.0 - none;
            if let (Some(c), Some(k)) = (cache.as_mut(), key) {
                c.insert(k, total);
            }
            return Ok(total);
        }
    }
    // Variable elimination (Shannon expansion).
    stats.eliminations += 1;
    let x = choose_var(dnf, wt, options.var_choice)?;
    let dist = wt.distribution(x)?;
    let mut total = 0.0;
    for (alt, &p_alt) in dist.iter().enumerate() {
        if p_alt == 0.0 {
            continue;
        }
        let conditioned = dnf.condition(x, alt as u16);
        let conditioned =
            if options.simplify { conditioned.simplify() } else { conditioned };
        total += p_alt * go(&conditioned, wt, options, stats, depth + 1, cache, par)?;
    }
    if let (Some(c), Some(k)) = (cache.as_mut(), key) {
        c.insert(k, total);
    }
    Ok(total)
}

/// Split a DNF into connected components of the clause–variable graph
/// (union–find over clause indices keyed by shared variables).
fn components(dnf: &Dnf) -> Vec<Dnf> {
    let n = dnf.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, c) in dnf.clauses().iter().enumerate() {
        for v in c.vars() {
            match owner.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<maybms_urel::Wsd>> = HashMap::new();
    for (i, c) in dnf.clauses().iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(c.clone());
    }
    let mut out: Vec<Dnf> = groups.into_values().map(Dnf::new).collect();
    // Deterministic order helps reproducibility of stats.
    out.sort_by(|a, b| a.clauses().cmp(b.clauses()));
    out
}

/// Pick the elimination variable according to the heuristic.
fn choose_var(dnf: &Dnf, wt: &WorldTable, heuristic: VarChoice) -> Result<Var> {
    let mut counts: HashMap<Var, usize> = HashMap::new();
    for c in dnf.clauses() {
        for v in c.vars() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    debug_assert!(!counts.is_empty(), "non-constant DNF must mention a variable");
    let var = match heuristic {
        VarChoice::MaxOccurrence => counts
            .iter()
            .max_by_key(|(v, &n)| (n, std::cmp::Reverse(v.0)))
            .map(|(&v, _)| v),
        VarChoice::MinDomain => {
            let mut best: Option<(usize, Var)> = None;
            for &v in counts.keys() {
                let d = wt.domain_size(v)?;
                if best.is_none_or(|(bd, bv)| (d, v.0) < (bd, bv.0)) {
                    best = Some((d, v));
                }
            }
            best.map(|(_, v)| v)
        }
        VarChoice::First => counts.keys().copied().min(),
    };
    Ok(var.expect("counts non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use maybms_urel::{Assignment, Wsd};

    fn clause(pairs: &[(Var, u16)]) -> Wsd {
        Wsd::from_assignments(pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect())
            .unwrap()
    }

    #[test]
    fn constants() {
        let wt = WorldTable::new();
        assert_eq!(probability(&Dnf::falsum(), &wt).unwrap(), 0.0);
        assert_eq!(
            probability(&Dnf::new(vec![Wsd::tautology()]), &wt).unwrap(),
            1.0
        );
    }

    #[test]
    fn independent_clauses_decompose() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.7, 0.3]).unwrap();
        let y = wt.new_var(&[0.4, 0.6]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 1)]), clause(&[(y, 1)])]);
        let (p, stats) = probability_with(&d, &wt, &ExactOptions::standard()).unwrap();
        assert!((p - 0.72).abs() < 1e-12);
        assert_eq!(stats.decompositions, 1);
        assert_eq!(stats.eliminations, 0);
    }

    #[test]
    fn shared_variable_forces_elimination() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        // (x=1 ∧ y=1) ∨ (x=0): P = 0.25 + 0.5 = 0.75
        let d = Dnf::new(vec![clause(&[(x, 1), (y, 1)]), clause(&[(x, 0)])]);
        let (p, stats) = probability_with(&d, &wt, &ExactOptions::standard()).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
        assert!(stats.eliminations >= 1);
    }

    #[test]
    fn mutually_exclusive_assignments() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.2, 0.3, 0.5]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 0)]), clause(&[(x, 2)])]);
        assert!((probability(&d, &wt).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_naive_on_handcrafted_cases() {
        let mut wt = WorldTable::new();
        let v: Vec<Var> = (0..5)
            .map(|i| {
                wt.new_var(&[0.1 + 0.1 * i as f64, 0.9 - 0.1 * i as f64]).unwrap()
            })
            .collect();
        let cases = vec![
            Dnf::new(vec![clause(&[(v[0], 1), (v[1], 1)]), clause(&[(v[1], 0), (v[2], 1)])]),
            Dnf::new(vec![
                clause(&[(v[0], 1)]),
                clause(&[(v[1], 1), (v[2], 1)]),
                clause(&[(v[3], 1), (v[4], 0)]),
            ]),
            Dnf::new(vec![
                clause(&[(v[0], 1), (v[1], 1), (v[2], 1)]),
                clause(&[(v[0], 0), (v[3], 1)]),
                clause(&[(v[2], 0), (v[4], 1)]),
                clause(&[(v[1], 0)]),
            ]),
        ];
        for d in cases {
            let exact = probability(&d, &wt).unwrap();
            let oracle = naive::probability(&d, &wt, 1 << 20).unwrap();
            assert!(
                (exact - oracle).abs() < 1e-9,
                "exact {exact} vs naive {oracle} on {d:?}"
            );
        }
    }

    #[test]
    fn all_heuristics_agree() {
        let mut wt = WorldTable::new();
        let v: Vec<Var> = (0..4).map(|_| wt.new_var(&[0.5, 0.3, 0.2]).unwrap()).collect();
        let d = Dnf::new(vec![
            clause(&[(v[0], 0), (v[1], 1)]),
            clause(&[(v[1], 2), (v[2], 0)]),
            clause(&[(v[2], 1), (v[3], 2)]),
            clause(&[(v[0], 2)]),
        ]);
        let standard = probability(&d, &wt).unwrap();
        for choice in [VarChoice::MaxOccurrence, VarChoice::MinDomain, VarChoice::First] {
            for decompose in [true, false] {
                for simplify in [true, false] {
                    for memoize in [true, false] {
                        let opts =
                            ExactOptions { var_choice: choice, decompose, simplify, memoize };
                        let (p, _) = probability_with(&d, &wt, &opts).unwrap();
                        assert!(
                            (p - standard).abs() < 1e-9,
                            "{choice:?} decompose={decompose} simplify={simplify} \
                             memoize={memoize}: {p} vs {standard}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decomposition_reduces_eliminations_on_block_dnfs() {
        // 6 independent blocks of 2 clauses sharing one variable each:
        // with decomposition the eliminations stay per-block; without it
        // the recursion interleaves blocks and balloons.
        let mut wt = WorldTable::new();
        let mut clauses = Vec::new();
        for _ in 0..6 {
            let x = wt.new_var(&[0.5, 0.5]).unwrap();
            let y = wt.new_var(&[0.5, 0.5]).unwrap();
            clauses.push(clause(&[(x, 1), (y, 1)]));
            clauses.push(clause(&[(x, 0), (y, 0)]));
        }
        let d = Dnf::new(clauses);
        let with = probability_with(&d, &wt, &ExactOptions::standard()).unwrap();
        let without = probability_with(
            &d,
            &wt,
            &ExactOptions { decompose: false, simplify: true, ..Default::default() },
        )
        .unwrap();
        assert!((with.0 - without.0).abs() < 1e-9);
        assert!(
            with.1.eliminations < without.1.eliminations,
            "with: {:?}, without: {:?}",
            with.1,
            without.1
        );
    }

    #[test]
    fn memoization_hits_on_recurrent_structure() {
        // Chain DNF (x_i=1 ∧ x_{i+1}=1): conditioning on either end keeps
        // regenerating the same inner chains.
        let mut wt = WorldTable::new();
        let xs: Vec<Var> = (0..10).map(|_| wt.new_var(&[0.5, 0.5]).unwrap()).collect();
        let clauses: Vec<maybms_urel::Wsd> = xs
            .windows(2)
            .map(|w| clause(&[(w[0], 1), (w[1], 1)]))
            .collect();
        let d = Dnf::new(clauses);
        let plain_opts = ExactOptions { decompose: false, ..ExactOptions::standard() };
        let memo_opts = ExactOptions { memoize: true, ..plain_opts };
        let (p_plain, s_plain) = probability_with(&d, &wt, &plain_opts).unwrap();
        let (p_memo, s_memo) = probability_with(&d, &wt, &memo_opts).unwrap();
        assert!((p_plain - p_memo).abs() < 1e-12);
        assert!(s_memo.cache_hits > 0, "expected cache hits: {s_memo:?}");
        assert!(
            s_memo.eliminations < s_plain.eliminations,
            "memoized {s_memo:?} vs plain {s_plain:?}"
        );
        assert_eq!(s_plain.cache_hits, 0);
    }

    #[test]
    fn parallel_partitions_bit_identical_to_sequential() {
        // Many independent blocks — the decomposition-heavy family — plus
        // a shared-variable DNF that forces Shannon nodes above nested
        // partitions.
        let mut wt = WorldTable::new();
        let mut clauses = Vec::new();
        for i in 0..8 {
            let x = wt.new_var(&[0.3 + 0.05 * i as f64, 0.7 - 0.05 * i as f64]).unwrap();
            let y = wt.new_var(&[0.5, 0.5]).unwrap();
            clauses.push(clause(&[(x, 1), (y, 1)]));
            clauses.push(clause(&[(x, 0), (y, 0)]));
        }
        let d = Dnf::new(clauses);
        for memoize in [false, true] {
            let opts = ExactOptions { memoize, ..ExactOptions::standard() };
            let (seq_p, seq_stats) = probability_with(&d, &wt, &opts).unwrap();
            for threads in [1, 2, 8] {
                let pool = ThreadPool::new(threads);
                let (par_p, par_stats) =
                    probability_par(&d, &wt, &opts, &pool, 1).unwrap();
                assert_eq!(
                    seq_p.to_bits(),
                    par_p.to_bits(),
                    "threads = {threads}, memoize = {memoize}"
                );
                if !memoize {
                    // Node counts are scheduling-independent; cache hit
                    // counts may legitimately differ under memoization
                    // (task-local caches).
                    assert_eq!(seq_stats, par_stats, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn zero_probability_branches_skipped() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.0, 1.0]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 0), (y, 0)]), clause(&[(x, 1), (y, 1)])]);
        // P = 0·(…) + 1·P(y=1) = 0.5
        assert!((probability(&d, &wt).unwrap() - 0.5).abs() < 1e-12);
    }
}
