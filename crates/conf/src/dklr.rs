//! The Dagum–Karp–Luby–Ross "optimal algorithm for Monte Carlo estimation"
//! (SIAM J. Comput. 29(5), 2000), driving the Karp–Luby estimator to an
//! (ε, δ)-approximation (§2.3):
//!
//! > "The latter is based on sequential analysis and determines the number
//! > of invocations of the Karp–Luby estimator needed to achieve the
//! > required bound by running the estimator a small number of times to
//! > estimate its mean and variance."
//!
//! Implemented here:
//!
//! * [`stopping_rule`] — the Stopping Rule Algorithm (SRA): sample until
//!   the running sum reaches `Υ₁ = 1 + (1+ε)Υ`, output `Υ₁/N`;
//! * [`approximate`] — the full 𝒜𝒜 algorithm: (1) a coarse SRA run,
//!   (2) a variance-estimation phase on sample *pairs*, (3) the final run
//!   with the optimal number of samples `∝ max(σ², εμ)/μ²`.
//!
//! Guarantee: `P(|μ̃ − μ| ≤ ε·μ) ≥ 1 − δ` for any estimator with outcomes
//! in `[0, 1]` — satisfied by the Karp–Luby indicator. Because the output
//! is rescaled by the constant `S`, the *relative* error guarantee carries
//! over to the DNF probability.

use rand::Rng;

use maybms_urel::{Result, UrelError, WorldTable};

use crate::dnf::Dnf;
use crate::karp_luby::KarpLuby;

/// λ = e − 2, the constant of the generalised zero-one estimator theorem.
const LAMBDA: f64 = std::f64::consts::E - 2.0;

/// Outcome of an (ε, δ) approximation, with sampling statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Approximation {
    /// The estimate `p̂`.
    pub estimate: f64,
    /// Total Karp–Luby invocations across all phases.
    pub samples: u64,
}

/// Configuration for the DKLR driver.
#[derive(Debug, Clone, Copy)]
pub struct DklrOptions {
    /// Relative error bound ε (0 < ε < 1 is the meaningful range).
    pub epsilon: f64,
    /// Failure probability δ (0 < δ < 1).
    pub delta: f64,
    /// Hard cap on total samples; exceeding it is an error rather than a
    /// silent loss of the guarantee.
    pub max_samples: u64,
}

impl DklrOptions {
    /// `aconf(ε, δ)` with the default cap of 2·10⁸ invocations.
    pub fn new(epsilon: f64, delta: f64) -> DklrOptions {
        DklrOptions { epsilon, delta, max_samples: 200_000_000 }
    }

    fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(UrelError::BadProbability {
                message: format!("aconf epsilon {} outside (0, 1)", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(UrelError::BadProbability {
                message: format!("aconf delta {} outside (0, 1)", self.delta),
            });
        }
        Ok(())
    }
}

/// `Υ(ε, δ) = 4·λ·ln(2/δ)/ε²` — the base sample-count scale.
fn upsilon(epsilon: f64, delta: f64) -> f64 {
    4.0 * LAMBDA * (2.0 / delta).ln() / (epsilon * epsilon)
}

/// Stopping Rule Algorithm: keep invoking the estimator until the running
/// sum of outcomes reaches `Υ₁ = 1 + (1+ε)Υ`; output `μ̂ = Υ₁ / N`.
///
/// For outcomes in `[0,1]` with mean `μ > 0`:
/// `P(|μ̂ − μ| ≤ ε·μ) > 1 − δ` (DKLR Theorem 1).
pub fn stopping_rule<R: Rng + ?Sized>(
    kl: &KarpLuby,
    wt: &WorldTable,
    options: &DklrOptions,
    rng: &mut R,
) -> Result<Approximation> {
    options.validate()?;
    if let Some(p) = kl.constant_value() {
        return Ok(Approximation { estimate: p, samples: 0 });
    }
    let upsilon1 = 1.0 + (1.0 + options.epsilon) * upsilon(options.epsilon, options.delta);
    let mut sum = 0.0;
    let mut n: u64 = 0;
    while sum < upsilon1 {
        if n >= options.max_samples {
            return Err(UrelError::BadProbability {
                message: format!(
                    "stopping rule exceeded {} samples (sum {sum:.1} < {upsilon1:.1}); \
                     the event probability is too small for this (ε, δ)",
                    options.max_samples
                ),
            });
        }
        sum += kl.sample_indicator(wt, rng);
        n += 1;
    }
    Ok(Approximation { estimate: kl.scale() * upsilon1 / n as f64, samples: n })
}

/// The 𝒜𝒜 algorithm (DKLR §2.2): optimal up to constants — its expected
/// sample count is within a constant factor of any estimator achieving the
/// same (ε, δ) guarantee.
pub fn approximate<R: Rng + ?Sized>(
    kl: &KarpLuby,
    wt: &WorldTable,
    options: &DklrOptions,
    rng: &mut R,
) -> Result<Approximation> {
    options.validate()?;
    if let Some(p) = kl.constant_value() {
        return Ok(Approximation { estimate: p, samples: 0 });
    }
    let eps = options.epsilon;
    let delta = options.delta;
    let ups = upsilon(eps, delta);
    let ups2 = 2.0 * (1.0 + eps.sqrt()) * (1.0 + 2.0 * eps.sqrt())
        * (1.0 + (3.0f64 / 2.0).ln() / (2.0 / delta).ln())
        * ups;

    // Step 1: coarse SRA with ε' = min(1/2, √ε), δ' = δ/3.
    let coarse = DklrOptions {
        epsilon: (0.5f64).min(eps.sqrt()),
        delta: delta / 3.0,
        max_samples: options.max_samples,
    };
    let sra = stopping_rule(kl, wt, &coarse, rng)?;
    let mut spent = sra.samples;
    // μ̂ of the *indicator* (mean in [0,1]), not of the scaled estimate.
    let mu_hat = sra.estimate / kl.scale();

    // Step 2: variance estimation from sample pairs.
    let n2 = ((ups2 * eps / mu_hat).ceil() as u64).max(1);
    if spent + 2 * n2 > options.max_samples {
        return Err(UrelError::BadProbability {
            message: format!(
                "AA step 2 would need {} samples, above the cap {}",
                2 * n2,
                options.max_samples
            ),
        });
    }
    let mut s2 = 0.0;
    for _ in 0..n2 {
        let a = kl.sample_indicator(wt, rng);
        let b = kl.sample_indicator(wt, rng);
        s2 += (a - b) * (a - b) / 2.0;
    }
    spent += 2 * n2;
    let rho_hat = (s2 / n2 as f64).max(eps * mu_hat);

    // Step 3: the optimal main run.
    let n3 = ((ups2 * rho_hat / (mu_hat * mu_hat)).ceil() as u64).max(1);
    if spent + n3 > options.max_samples {
        return Err(UrelError::BadProbability {
            message: format!(
                "AA step 3 would need {n3} samples, above the cap {}",
                options.max_samples
            ),
        });
    }
    let mut sum = 0.0;
    for _ in 0..n3 {
        sum += kl.sample_indicator(wt, rng);
    }
    spent += n3;
    Ok(Approximation { estimate: kl.scale() * sum / n3 as f64, samples: spent })
}

/// Convenience: `aconf(ε, δ)` for a DNF — prepare Karp–Luby and run 𝒜𝒜.
pub fn aconf<R: Rng + ?Sized>(
    dnf: &Dnf,
    wt: &WorldTable,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
) -> Result<f64> {
    let kl = KarpLuby::new(dnf, wt)?;
    Ok(approximate(&kl, wt, &DklrOptions::new(epsilon, delta), rng)?.estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use maybms_urel::{Assignment, Var, Wsd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clause(pairs: &[(Var, u16)]) -> Wsd {
        Wsd::from_assignments(pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect())
            .unwrap()
    }

    /// A DNF whose clauses overlap, with known probability.
    fn test_dnf(wt: &mut WorldTable, blocks: usize) -> Dnf {
        let mut clauses = Vec::new();
        for _ in 0..blocks {
            let x = wt.new_var(&[0.5, 0.5]).unwrap();
            let y = wt.new_var(&[0.7, 0.3]).unwrap();
            clauses.push(clause(&[(x, 1), (y, 1)]));
            clauses.push(clause(&[(x, 0), (y, 0)]));
        }
        Dnf::new(clauses)
    }

    #[test]
    fn options_validated() {
        assert!(DklrOptions::new(0.0, 0.5).validate().is_err());
        assert!(DklrOptions::new(1.5, 0.5).validate().is_err());
        assert!(DklrOptions::new(0.1, 0.0).validate().is_err());
        assert!(DklrOptions::new(0.1, 1.0).validate().is_err());
        assert!(DklrOptions::new(0.1, 0.05).validate().is_ok());
    }

    #[test]
    fn constants_cost_zero_samples() {
        let wt = WorldTable::new();
        let kl = KarpLuby::new(&Dnf::falsum(), &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let a = approximate(&kl, &wt, &DklrOptions::new(0.1, 0.1), &mut rng).unwrap();
        assert_eq!(a, Approximation { estimate: 0.0, samples: 0 });
    }

    #[test]
    fn stopping_rule_achieves_relative_error() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 3);
        let truth = exact::probability(&d, &wt).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let opts = DklrOptions::new(0.1, 0.05);
        let mut failures = 0;
        let runs = 30;
        for _ in 0..runs {
            let a = stopping_rule(&kl, &wt, &opts, &mut rng).unwrap();
            if ((a.estimate - truth) / truth).abs() > opts.epsilon {
                failures += 1;
            }
        }
        // δ = 0.05: expect ~1.5 failures in 30; allow generous slack.
        assert!(failures <= 4, "failures {failures}/{runs}");
    }

    #[test]
    fn aa_achieves_relative_error_with_fewer_samples() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 4);
        let truth = exact::probability(&d, &wt).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let opts = DklrOptions::new(0.1, 0.05);
        let mut rng = StdRng::seed_from_u64(23);
        let mut failures = 0;
        let mut aa_samples = 0u64;
        let mut sra_samples = 0u64;
        let runs = 20;
        for _ in 0..runs {
            let aa = approximate(&kl, &wt, &opts, &mut rng).unwrap();
            let sra = stopping_rule(&kl, &wt, &opts, &mut rng).unwrap();
            aa_samples += aa.samples;
            sra_samples += sra.samples;
            if ((aa.estimate - truth) / truth).abs() > opts.epsilon {
                failures += 1;
            }
        }
        assert!(failures <= 3, "failures {failures}/{runs}");
        // The Karp-Luby indicator has mean p/S; for this family the AA's
        // variance-adapted step-3 run should not be wildly worse than SRA.
        assert!(
            aa_samples < sra_samples * 4,
            "AA used {aa_samples}, SRA {sra_samples}"
        );
    }

    #[test]
    fn sample_cap_enforced() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 2);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let opts = DklrOptions { epsilon: 0.01, delta: 0.01, max_samples: 100 };
        assert!(stopping_rule(&kl, &wt, &opts, &mut rng).is_err());
        assert!(approximate(&kl, &wt, &opts, &mut rng).is_err());
    }

    #[test]
    fn smaller_epsilon_needs_more_samples() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 3);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let loose =
            approximate(&kl, &wt, &DklrOptions::new(0.2, 0.05), &mut rng).unwrap();
        let tight =
            approximate(&kl, &wt, &DklrOptions::new(0.05, 0.05), &mut rng).unwrap();
        assert!(
            tight.samples > loose.samples * 4,
            "tight {} vs loose {}",
            tight.samples,
            loose.samples
        );
    }

    #[test]
    fn aconf_end_to_end() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 2);
        let truth = exact::probability(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let est = aconf(&d, &wt, 0.05, 0.05, &mut rng).unwrap();
        assert!(((est - truth) / truth).abs() < 0.05, "est {est} truth {truth}");
    }
}
