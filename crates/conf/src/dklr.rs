//! The Dagum–Karp–Luby–Ross "optimal algorithm for Monte Carlo estimation"
//! (SIAM J. Comput. 29(5), 2000), driving the Karp–Luby estimator to an
//! (ε, δ)-approximation (§2.3):
//!
//! > "The latter is based on sequential analysis and determines the number
//! > of invocations of the Karp–Luby estimator needed to achieve the
//! > required bound by running the estimator a small number of times to
//! > estimate its mean and variance."
//!
//! Implemented here:
//!
//! * [`stopping_rule`] — the Stopping Rule Algorithm (SRA): sample until
//!   the running sum reaches `Υ₁ = 1 + (1+ε)Υ`, output `Υ₁/N`;
//! * [`approximate`] — the full 𝒜𝒜 algorithm: (1) a coarse SRA run,
//!   (2) a variance-estimation phase on sample *pairs*, (3) the final run
//!   with the optimal number of samples `∝ max(σ², εμ)/μ²`.
//!
//! Guarantee: `P(|μ̃ − μ| ≤ ε·μ) ≥ 1 − δ` for any estimator with outcomes
//! in `[0, 1]` — satisfied by the Karp–Luby indicator. Because the output
//! is rescaled by the constant `S`, the *relative* error guarantee carries
//! over to the DNF probability.

use maybms_par::ThreadPool;
use rand::Rng;

use maybms_urel::{Result, UrelError, WorldTable};

use crate::dnf::Dnf;
use crate::karp_luby::{KarpLuby, SAMPLE_BATCH};

/// λ = e − 2, the constant of the generalised zero-one estimator theorem.
const LAMBDA: f64 = std::f64::consts::E - 2.0;

/// Outcome of an (ε, δ) approximation, with sampling statistics.
///
/// Every field is deterministic for the seeded drivers: the *consumed*
/// sample counts follow the stream order regardless of how many batches
/// were computed speculatively, and `batches` counts consumed batches
/// (`⌈samples/SAMPLE_BATCH⌉` per phase), not speculative ones — so the
/// report is bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Approximation {
    /// The estimate `p̂`.
    pub estimate: f64,
    /// Total Karp–Luby invocations across all phases.
    pub samples: u64,
    /// Seeded sample batches consumed (`⌈n/SAMPLE_BATCH⌉` per phase).
    pub batches: u64,
    /// Estimator variance `ρ̂` at stop (the 𝒜𝒜 step-2 estimate, floored
    /// at `ε·μ̂`); `0` for the SRA and for constant DNFs.
    pub variance: f64,
    /// Achieved relative standard error of the final run,
    /// `√(ρ̂/n₃)/μ̂` for 𝒜𝒜; the target `ε` for the SRA (which does not
    /// estimate variance); `0` for constant DNFs.
    pub rel_stderr: f64,
    /// Deadline degradation marker: `Some(b)` when the governor's
    /// deadline cut the seeded run at consumed-batch index `b` (counted
    /// across all phases). The estimate is then the partial seeded mean
    /// at that batch boundary — still a pure function of `(seed, b)`,
    /// so bit-identical given the same cut point — with `rel_stderr`
    /// reporting the *achieved* error, not the requested `(ε, δ)`
    /// guarantee. `None` = the run completed normally.
    pub cut_batch: Option<u64>,
}

impl Approximation {
    /// A zero-cost report for a constant DNF.
    fn constant(p: f64) -> Approximation {
        Approximation {
            estimate: p,
            samples: 0,
            batches: 0,
            variance: 0.0,
            rel_stderr: 0.0,
            cut_batch: None,
        }
    }
}

/// Governor verdict at a sample-batch boundary: `Ok(false)` = proceed,
/// `Ok(true)` = the deadline passed (degrade to the partial estimate),
/// `Err` = hard abort (cancellation or memory budget).
fn gov_batch_verdict() -> Result<bool> {
    match maybms_gov::check() {
        Ok(()) => Ok(false),
        Err(maybms_gov::GovError::DeadlineExceeded { .. }) => Ok(true),
        Err(g) => Err(UrelError::from(maybms_engine::EngineError::Gov(g))),
    }
}

/// The degraded partial estimate over `n` consumed indicator draws with
/// running `sum` / `sumsq`, cut at global consumed-batch index
/// `cut_batch`. An empty prefix reports estimate 0 with infinite error.
fn degraded(kl: &KarpLuby, sum: f64, sumsq: f64, n: u64, cut_batch: u64) -> Approximation {
    let (estimate, rel_stderr) = if n == 0 {
        (0.0, f64::INFINITY)
    } else {
        let mean = sum / n as f64;
        let var = if n > 1 {
            ((sumsq - n as f64 * mean * mean) / (n as f64 - 1.0)).max(0.0)
        } else {
            0.0
        };
        let rel = if mean > 0.0 { (var / n as f64).sqrt() / mean } else { f64::INFINITY };
        (kl.scale() * mean, rel)
    };
    Approximation {
        estimate,
        samples: n,
        batches: phase_batches(n),
        variance: 0.0,
        rel_stderr,
        cut_batch: Some(cut_batch),
    }
}

/// Batches consumed by a phase that drew `samples` draws from its stream.
fn phase_batches(samples: u64) -> u64 {
    samples.div_ceil(SAMPLE_BATCH as u64)
}

/// Configuration for the DKLR driver.
#[derive(Debug, Clone, Copy)]
pub struct DklrOptions {
    /// Relative error bound ε (0 < ε < 1 is the meaningful range).
    pub epsilon: f64,
    /// Failure probability δ (0 < δ < 1).
    pub delta: f64,
    /// Hard cap on total samples; exceeding it is an error rather than a
    /// silent loss of the guarantee.
    pub max_samples: u64,
}

impl DklrOptions {
    /// `aconf(ε, δ)` with the default cap of 2·10⁸ invocations.
    pub fn new(epsilon: f64, delta: f64) -> DklrOptions {
        DklrOptions { epsilon, delta, max_samples: 200_000_000 }
    }

    fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(UrelError::BadProbability {
                message: format!("aconf epsilon {} outside (0, 1)", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(UrelError::BadProbability {
                message: format!("aconf delta {} outside (0, 1)", self.delta),
            });
        }
        Ok(())
    }
}

/// `Υ(ε, δ) = 4·λ·ln(2/δ)/ε²` — the base sample-count scale.
fn upsilon(epsilon: f64, delta: f64) -> f64 {
    4.0 * LAMBDA * (2.0 / delta).ln() / (epsilon * epsilon)
}

/// Stopping Rule Algorithm: keep invoking the estimator until the running
/// sum of outcomes reaches `Υ₁ = 1 + (1+ε)Υ`; output `μ̂ = Υ₁ / N`.
///
/// For outcomes in `[0,1]` with mean `μ > 0`:
/// `P(|μ̂ − μ| ≤ ε·μ) > 1 − δ` (DKLR Theorem 1).
pub fn stopping_rule<R: Rng + ?Sized>(
    kl: &KarpLuby,
    wt: &WorldTable,
    options: &DklrOptions,
    rng: &mut R,
) -> Result<Approximation> {
    options.validate()?;
    if let Some(p) = kl.constant_value() {
        return Ok(Approximation::constant(p));
    }
    let upsilon1 = 1.0 + (1.0 + options.epsilon) * upsilon(options.epsilon, options.delta);
    let mut sum = 0.0;
    let mut n: u64 = 0;
    while sum < upsilon1 {
        if n >= options.max_samples {
            return Err(UrelError::BadProbability {
                message: format!(
                    "stopping rule exceeded {} samples (sum {sum:.1} < {upsilon1:.1}); \
                     the event probability is too small for this (ε, δ)",
                    options.max_samples
                ),
            });
        }
        sum += kl.sample_indicator(wt, rng);
        n += 1;
    }
    Ok(Approximation {
        estimate: kl.scale() * upsilon1 / n as f64,
        samples: n,
        batches: phase_batches(n),
        variance: 0.0,
        rel_stderr: options.epsilon,
        cut_batch: None,
    })
}

/// The 𝒜𝒜 algorithm (DKLR §2.2): optimal up to constants — its expected
/// sample count is within a constant factor of any estimator achieving the
/// same (ε, δ) guarantee.
pub fn approximate<R: Rng + ?Sized>(
    kl: &KarpLuby,
    wt: &WorldTable,
    options: &DklrOptions,
    rng: &mut R,
) -> Result<Approximation> {
    options.validate()?;
    if let Some(p) = kl.constant_value() {
        return Ok(Approximation::constant(p));
    }
    let eps = options.epsilon;
    let delta = options.delta;
    let ups = upsilon(eps, delta);
    let ups2 = 2.0 * (1.0 + eps.sqrt()) * (1.0 + 2.0 * eps.sqrt())
        * (1.0 + (3.0f64 / 2.0).ln() / (2.0 / delta).ln())
        * ups;

    // Step 1: coarse SRA with ε' = min(1/2, √ε), δ' = δ/3.
    let coarse = DklrOptions {
        epsilon: (0.5f64).min(eps.sqrt()),
        delta: delta / 3.0,
        max_samples: options.max_samples,
    };
    let sra = stopping_rule(kl, wt, &coarse, rng)?;
    let mut spent = sra.samples;
    let mut batches = sra.batches;
    // μ̂ of the *indicator* (mean in [0,1]), not of the scaled estimate.
    let mu_hat = sra.estimate / kl.scale();

    // Step 2: variance estimation from sample pairs.
    let n2 = ((ups2 * eps / mu_hat).ceil() as u64).max(1);
    if spent + 2 * n2 > options.max_samples {
        return Err(UrelError::BadProbability {
            message: format!(
                "AA step 2 would need {} samples, above the cap {}",
                2 * n2,
                options.max_samples
            ),
        });
    }
    let mut s2 = 0.0;
    for _ in 0..n2 {
        let a = kl.sample_indicator(wt, rng);
        let b = kl.sample_indicator(wt, rng);
        s2 += (a - b) * (a - b) / 2.0;
    }
    spent += 2 * n2;
    batches += phase_batches(2 * n2);
    let rho_hat = (s2 / n2 as f64).max(eps * mu_hat);

    // Step 3: the optimal main run.
    let n3 = ((ups2 * rho_hat / (mu_hat * mu_hat)).ceil() as u64).max(1);
    if spent + n3 > options.max_samples {
        return Err(UrelError::BadProbability {
            message: format!(
                "AA step 3 would need {n3} samples, above the cap {}",
                options.max_samples
            ),
        });
    }
    let mut sum = 0.0;
    for _ in 0..n3 {
        sum += kl.sample_indicator(wt, rng);
    }
    spent += n3;
    batches += phase_batches(n3);
    Ok(Approximation {
        estimate: kl.scale() * sum / n3 as f64,
        samples: spent,
        batches,
        variance: rho_hat,
        rel_stderr: (rho_hat / n3 as f64).sqrt() / mu_hat,
        cut_batch: None,
    })
}

/// Convenience: `aconf(ε, δ)` for a DNF — prepare Karp–Luby and run 𝒜𝒜.
pub fn aconf<R: Rng + ?Sized>(
    dnf: &Dnf,
    wt: &WorldTable,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
) -> Result<f64> {
    let kl = KarpLuby::new(dnf, wt)?;
    Ok(approximate(&kl, wt, &DklrOptions::new(epsilon, delta), rng)?.estimate)
}

// ---------------------------------------------------------------------
// Seeded, deterministically parallel drivers
// ---------------------------------------------------------------------
//
// The `*_seeded` functions below re-express the DKLR drivers over the
// *seeded batch stream* of `maybms_conf::karp_luby`: the sample sequence
// is the concatenation of SAMPLE_BATCH-sized batches, batch `b` drawn
// from an RNG seeded with `derive_seed(phase_seed, b)`. The stream is a
// pure function of the seed, so batches can be computed speculatively in
// parallel while the sequential-analysis logic (stopping rule, sample
// accounting) consumes them strictly in stream order — estimates and
// sample counts are bit-identical at any thread count.

/// Seed of phase `phase` of a seeded DKLR run (the phases — coarse SRA,
/// variance pairs, main run — must draw from disjoint streams).
fn phase_seed(seed: u64, phase: u64) -> u64 {
    maybms_par::derive_seed(seed, phase)
}

/// Deterministic batch-parallel [`stopping_rule`]: consume the seeded
/// stream until the running sum reaches `Υ₁`. Batches are precomputed
/// `threads` at a time (speculation past the stopping point is discarded),
/// but the scan — and therefore the estimate and the consumed-sample
/// count — follows stream order exactly.
///
/// The governor is consulted once per consumed batch: a deadline cuts the
/// run into a degraded partial estimate ([`Approximation::cut_batch`]);
/// cancellation and memory aborts propagate as errors.
pub fn stopping_rule_seeded(
    kl: &KarpLuby,
    wt: &WorldTable,
    options: &DklrOptions,
    seed: u64,
    pool: &ThreadPool,
) -> Result<Approximation> {
    options.validate()?;
    if let Some(p) = kl.constant_value() {
        return Ok(Approximation::constant(p));
    }
    let upsilon1 = 1.0 + (1.0 + options.epsilon) * upsilon(options.epsilon, options.delta);
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    let mut n: u64 = 0;
    let mut consumed: u64 = 0;
    let stride = pool.threads() as u64;
    let mut next_batch: u64 = 0;
    loop {
        let round: Vec<Vec<f64>> =
            pool.par_map((next_batch..next_batch + stride).collect(), |b| {
                kl.batch_indicators(wt, seed, b, SAMPLE_BATCH)
            });
        next_batch += stride;
        for batch in round {
            if gov_batch_verdict()? {
                return Ok(degraded(kl, sum, sumsq, n, consumed));
            }
            for x in batch {
                if n >= options.max_samples {
                    return Err(UrelError::BadProbability {
                        message: format!(
                            "stopping rule exceeded {} samples (sum {sum:.1} < \
                             {upsilon1:.1}); the event probability is too small \
                             for this (ε, δ)",
                            options.max_samples
                        ),
                    });
                }
                sum += x;
                sumsq += x * x;
                n += 1;
                if sum >= upsilon1 {
                    return Ok(Approximation {
                        estimate: kl.scale() * upsilon1 / n as f64,
                        samples: n,
                        batches: phase_batches(n),
                        variance: 0.0,
                        rel_stderr: options.epsilon,
                        cut_batch: None,
                    });
                }
            }
            consumed += 1;
        }
    }
}

/// Outcome of a governed batched stream fold.
enum StreamSum {
    /// All batches consumed: the fold total.
    Done(f64),
    /// Deadline cut before batch `consumed` (0-based within the phase):
    /// the raw indicator `sum`/`sumsq` over the consumed full batches.
    Cut {
        /// Full batches consumed before the cut.
        consumed: u64,
        /// Indicator sum over those batches.
        sum: f64,
        /// Indicator square sum over those batches.
        sumsq: f64,
    },
}

/// Sum `f` over the first `samples` draws of phase stream `seed`,
/// batch-parallel with in-order combination. `f` folds one batch's
/// indicator slice into a partial (identity on indicators for plain sums,
/// paired squared differences for the variance phase). The governor is
/// consulted once per consumed batch (batches are computed `threads` at a
/// time; a cut discards the speculative remainder of the round).
fn batched_stream_sum(
    kl: &KarpLuby,
    wt: &WorldTable,
    samples: u64,
    seed: u64,
    pool: &ThreadPool,
    f: impl Fn(&[f64]) -> f64 + Sync,
) -> Result<StreamSum> {
    let batches = (samples as usize).div_ceil(SAMPLE_BATCH) as u64;
    let stride = (pool.threads() as u64).max(1);
    let mut total = 0.0;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    let mut consumed: u64 = 0;
    let mut b: u64 = 0;
    while b < batches {
        let end = (b + stride).min(batches);
        let round: Vec<(f64, f64, f64)> = pool.par_map((b..end).collect(), |bi| {
            let len = SAMPLE_BATCH.min(samples as usize - bi as usize * SAMPLE_BATCH);
            let xs = kl.batch_indicators(wt, seed, bi, len);
            (f(&xs), xs.iter().sum(), xs.iter().map(|x| x * x).sum())
        });
        for (val, s, sq) in round {
            if gov_batch_verdict()? {
                return Ok(StreamSum::Cut { consumed, sum, sumsq });
            }
            total += val;
            sum += s;
            sumsq += sq;
            consumed += 1;
        }
        b = end;
    }
    Ok(StreamSum::Done(total))
}

/// Deterministic batch-parallel [`approximate`] (the 𝒜𝒜 algorithm).
///
/// Same three phases as the sequential driver, each over its own seeded
/// stream; per-phase results are bit-identical at any thread count, so
/// the derived sample counts — and hence the final estimate and total
/// sample accounting — are too. The variance phase pairs consecutive
/// stream draws; [`SAMPLE_BATCH`] is even, so pairs never straddle batch
/// boundaries and each batch folds its pairs locally.
pub fn approximate_seeded(
    kl: &KarpLuby,
    wt: &WorldTable,
    options: &DklrOptions,
    seed: u64,
    pool: &ThreadPool,
) -> Result<Approximation> {
    options.validate()?;
    if let Some(p) = kl.constant_value() {
        return Ok(Approximation::constant(p));
    }
    let eps = options.epsilon;
    let delta = options.delta;
    let ups = upsilon(eps, delta);
    let ups2 = 2.0 * (1.0 + eps.sqrt()) * (1.0 + 2.0 * eps.sqrt())
        * (1.0 + (3.0f64 / 2.0).ln() / (2.0 / delta).ln())
        * ups;

    // Step 1: coarse SRA with ε' = min(1/2, √ε), δ' = δ/3.
    let coarse = DklrOptions {
        epsilon: (0.5f64).min(eps.sqrt()),
        delta: delta / 3.0,
        max_samples: options.max_samples,
    };
    let sra = stopping_rule_seeded(kl, wt, &coarse, phase_seed(seed, 1), pool)?;
    if sra.cut_batch.is_some() {
        // Deadline hit during the coarse run: its partial seeded mean is
        // the best (and only) information available.
        return Ok(sra);
    }
    let mut spent = sra.samples;
    let mut batches = sra.batches;
    let mu_hat = sra.estimate / kl.scale();

    // Step 2: variance estimation from sample pairs.
    let n2 = ((ups2 * eps / mu_hat).ceil() as u64).max(1);
    if spent + 2 * n2 > options.max_samples {
        return Err(UrelError::BadProbability {
            message: format!(
                "AA step 2 would need {} samples, above the cap {}",
                2 * n2,
                options.max_samples
            ),
        });
    }
    let s2 = match batched_stream_sum(kl, wt, 2 * n2, phase_seed(seed, 2), pool, |xs| {
        xs.chunks_exact(2).map(|p| (p[0] - p[1]) * (p[0] - p[1]) / 2.0).sum()
    })? {
        StreamSum::Done(total) => total,
        StreamSum::Cut { consumed, .. } => {
            // Deadline mid-variance-phase: the SRA estimate already holds
            // with its coarse (ε', δ') guarantee, so fall back to it and
            // account for the consumed variance samples.
            return Ok(Approximation {
                samples: spent + consumed * SAMPLE_BATCH as u64,
                batches: batches + consumed,
                cut_batch: Some(sra.batches + consumed),
                ..sra
            });
        }
    };
    spent += 2 * n2;
    batches += phase_batches(2 * n2);
    let rho_hat = (s2 / n2 as f64).max(eps * mu_hat);

    // Step 3: the optimal main run.
    let n3 = ((ups2 * rho_hat / (mu_hat * mu_hat)).ceil() as u64).max(1);
    if spent + n3 > options.max_samples {
        return Err(UrelError::BadProbability {
            message: format!(
                "AA step 3 would need {n3} samples, above the cap {}",
                options.max_samples
            ),
        });
    }
    let sum =
        match batched_stream_sum(kl, wt, n3, phase_seed(seed, 3), pool, |xs| xs.iter().sum())? {
            StreamSum::Done(total) => total,
            StreamSum::Cut { consumed, sum, sumsq } => {
                if consumed == 0 {
                    // Nothing from the main run yet: the SRA estimate is
                    // still the best information available.
                    return Ok(Approximation {
                        samples: spent,
                        batches,
                        cut_batch: Some(batches),
                        ..sra
                    });
                }
                // Partial main run: seeded mean over the consumed batches,
                // with the *achieved* standard error rather than the
                // requested one.
                let n = consumed * SAMPLE_BATCH as u64;
                let partial = degraded(kl, sum, sumsq, n, batches + consumed);
                return Ok(Approximation {
                    samples: spent + n,
                    batches: batches + consumed,
                    variance: rho_hat,
                    ..partial
                });
            }
        };
    spent += n3;
    batches += phase_batches(n3);
    Ok(Approximation {
        estimate: kl.scale() * sum / n3 as f64,
        samples: spent,
        batches,
        variance: rho_hat,
        rel_stderr: (rho_hat / n3 as f64).sqrt() / mu_hat,
        cut_batch: None,
    })
}

/// Seeded `aconf(ε, δ)` with the full [`Approximation`] report: prepare
/// Karp–Luby and run the deterministic parallel 𝒜𝒜 — the engine of the
/// SQL `aconf` aggregate. Callers that only want the estimate use
/// [`aconf_seeded`].
pub fn aconf_seeded_report(
    dnf: &Dnf,
    wt: &WorldTable,
    epsilon: f64,
    delta: f64,
    seed: u64,
    pool: &ThreadPool,
) -> Result<Approximation> {
    let kl = KarpLuby::new(dnf, wt)?;
    approximate_seeded(&kl, wt, &DklrOptions::new(epsilon, delta), seed, pool)
}

/// Seeded `aconf(ε, δ)`: [`aconf_seeded_report`] keeping the estimate only.
pub fn aconf_seeded(
    dnf: &Dnf,
    wt: &WorldTable,
    epsilon: f64,
    delta: f64,
    seed: u64,
    pool: &ThreadPool,
) -> Result<f64> {
    Ok(aconf_seeded_report(dnf, wt, epsilon, delta, seed, pool)?.estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use maybms_urel::{Assignment, Var, Wsd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clause(pairs: &[(Var, u16)]) -> Wsd {
        Wsd::from_assignments(pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect())
            .unwrap()
    }

    /// A DNF whose clauses overlap, with known probability.
    fn test_dnf(wt: &mut WorldTable, blocks: usize) -> Dnf {
        let mut clauses = Vec::new();
        for _ in 0..blocks {
            let x = wt.new_var(&[0.5, 0.5]).unwrap();
            let y = wt.new_var(&[0.7, 0.3]).unwrap();
            clauses.push(clause(&[(x, 1), (y, 1)]));
            clauses.push(clause(&[(x, 0), (y, 0)]));
        }
        Dnf::new(clauses)
    }

    #[test]
    fn options_validated() {
        assert!(DklrOptions::new(0.0, 0.5).validate().is_err());
        assert!(DklrOptions::new(1.5, 0.5).validate().is_err());
        assert!(DklrOptions::new(0.1, 0.0).validate().is_err());
        assert!(DklrOptions::new(0.1, 1.0).validate().is_err());
        assert!(DklrOptions::new(0.1, 0.05).validate().is_ok());
    }

    #[test]
    fn constants_cost_zero_samples() {
        let wt = WorldTable::new();
        let kl = KarpLuby::new(&Dnf::falsum(), &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let a = approximate(&kl, &wt, &DklrOptions::new(0.1, 0.1), &mut rng).unwrap();
        assert_eq!(a, Approximation::constant(0.0));
        assert_eq!(a.samples, 0);
        assert_eq!(a.batches, 0);
    }

    #[test]
    fn stopping_rule_achieves_relative_error() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 3);
        let truth = exact::probability(&d, &wt).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let opts = DklrOptions::new(0.1, 0.05);
        let mut failures = 0;
        let runs = 30;
        for _ in 0..runs {
            let a = stopping_rule(&kl, &wt, &opts, &mut rng).unwrap();
            if ((a.estimate - truth) / truth).abs() > opts.epsilon {
                failures += 1;
            }
        }
        // δ = 0.05: expect ~1.5 failures in 30; allow generous slack.
        assert!(failures <= 4, "failures {failures}/{runs}");
    }

    #[test]
    fn aa_achieves_relative_error_with_fewer_samples() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 4);
        let truth = exact::probability(&d, &wt).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let opts = DklrOptions::new(0.1, 0.05);
        let mut rng = StdRng::seed_from_u64(23);
        let mut failures = 0;
        let mut aa_samples = 0u64;
        let mut sra_samples = 0u64;
        let runs = 20;
        for _ in 0..runs {
            let aa = approximate(&kl, &wt, &opts, &mut rng).unwrap();
            let sra = stopping_rule(&kl, &wt, &opts, &mut rng).unwrap();
            aa_samples += aa.samples;
            sra_samples += sra.samples;
            if ((aa.estimate - truth) / truth).abs() > opts.epsilon {
                failures += 1;
            }
        }
        assert!(failures <= 3, "failures {failures}/{runs}");
        // The Karp-Luby indicator has mean p/S; for this family the AA's
        // variance-adapted step-3 run should not be wildly worse than SRA.
        assert!(
            aa_samples < sra_samples * 4,
            "AA used {aa_samples}, SRA {sra_samples}"
        );
    }

    #[test]
    fn sample_cap_enforced() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 2);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let opts = DklrOptions { epsilon: 0.01, delta: 0.01, max_samples: 100 };
        assert!(stopping_rule(&kl, &wt, &opts, &mut rng).is_err());
        assert!(approximate(&kl, &wt, &opts, &mut rng).is_err());
    }

    #[test]
    fn smaller_epsilon_needs_more_samples() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 3);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let loose =
            approximate(&kl, &wt, &DklrOptions::new(0.2, 0.05), &mut rng).unwrap();
        let tight =
            approximate(&kl, &wt, &DklrOptions::new(0.05, 0.05), &mut rng).unwrap();
        assert!(
            tight.samples > loose.samples * 4,
            "tight {} vs loose {}",
            tight.samples,
            loose.samples
        );
    }

    #[test]
    fn seeded_drivers_bit_identical_across_thread_counts() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 3);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let opts = DklrOptions::new(0.1, 0.05);
        let p1 = ThreadPool::new(1);
        let sra_ref = stopping_rule_seeded(&kl, &wt, &opts, 42, &p1).unwrap();
        let aa_ref = approximate_seeded(&kl, &wt, &opts, 42, &p1).unwrap();
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let sra = stopping_rule_seeded(&kl, &wt, &opts, 42, &pool).unwrap();
            assert_eq!(sra_ref.estimate.to_bits(), sra.estimate.to_bits());
            assert_eq!(sra_ref.samples, sra.samples, "threads = {threads}");
            let aa = approximate_seeded(&kl, &wt, &opts, 42, &pool).unwrap();
            assert_eq!(aa_ref.estimate.to_bits(), aa.estimate.to_bits());
            assert_eq!(aa_ref.samples, aa.samples, "threads = {threads}");
            // The whole effort report is deterministic, not just the
            // estimate: consumed batches, variance, and stderr too.
            assert_eq!(aa_ref.batches, aa.batches, "threads = {threads}");
            assert_eq!(aa_ref.variance.to_bits(), aa.variance.to_bits());
            assert_eq!(aa_ref.rel_stderr.to_bits(), aa.rel_stderr.to_bits());
        }
        // Different seeds give different runs.
        let other = approximate_seeded(&kl, &wt, &opts, 43, &p1).unwrap();
        assert_ne!(aa_ref.estimate.to_bits(), other.estimate.to_bits());
    }

    #[test]
    fn seeded_drivers_achieve_relative_error() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 3);
        let truth = exact::probability(&d, &wt).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let opts = DklrOptions::new(0.1, 0.05);
        let pool = ThreadPool::new(4);
        let mut failures = 0;
        let runs = 30;
        for seed in 0..runs {
            let a = approximate_seeded(&kl, &wt, &opts, seed, &pool).unwrap();
            if ((a.estimate - truth) / truth).abs() > opts.epsilon {
                failures += 1;
            }
        }
        // δ = 0.05: expect ~1.5 failures in 30; allow generous slack.
        assert!(failures <= 4, "failures {failures}/{runs}");
    }

    #[test]
    fn seeded_sample_cap_enforced() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 2);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let pool = ThreadPool::new(2);
        let opts = DklrOptions { epsilon: 0.01, delta: 0.01, max_samples: 100 };
        assert!(stopping_rule_seeded(&kl, &wt, &opts, 1, &pool).is_err());
        assert!(approximate_seeded(&kl, &wt, &opts, 1, &pool).is_err());
    }

    #[test]
    fn aconf_end_to_end() {
        let mut wt = WorldTable::new();
        let d = test_dnf(&mut wt, 2);
        let truth = exact::probability(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let est = aconf(&d, &wt, 0.05, 0.05, &mut rng).unwrap();
        assert!(((est - truth) / truth).abs() < 0.05, "est {est} truth {truth}");
    }
}
