//! The Karp–Luby unbiased estimator for DNF probability, "in a modified
//! version adapted to confidence computation in probabilistic databases"
//! (§2.3): clauses are conjunctions of assignments of *multi-valued*
//! independent variables, not just Boolean literals.
//!
//! The estimator uses the coverage (importance-sampling) scheme:
//!
//! 1. let `S = Σᵢ P(cᵢ)` (each clause's probability is a simple product);
//! 2. draw clause `i` with probability `P(cᵢ)/S`;
//! 3. draw a world `w` from the distribution *conditioned on cᵢ being
//!    true*: fix cᵢ's assignments, sample every other variable of the DNF
//!    independently;
//! 4. output `X = 1` if `i = min{ j : w ⊨ cⱼ }`, else `0`.
//!
//! Then `E[X] = P(⋁ cⱼ)/S`, so `S·X̄` is an unbiased estimate of the DNF
//! probability, and `E[X] ≥ 1/m` for `m` clauses — the property the
//! Dagum–Karp–Luby–Ross stopping rules rely on.

use maybms_par::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use maybms_urel::{Result, Var, WorldTable};

use crate::dnf::Dnf;

/// Samples per deterministic batch in the seeded estimators.
///
/// The seeded sample stream is *defined* as the concatenation of
/// fixed-size batches, batch `b` drawn from an RNG seeded with
/// [`maybms_par::derive_seed`]`(seed, b)`. Because neither the batch size
/// nor the per-batch seed depends on the thread count, the stream — and
/// every estimate computed from it — is bit-identical at any parallelism.
/// Kept even so that the DKLR variance phase's sample *pairs* never
/// straddle a batch boundary.
pub const SAMPLE_BATCH: usize = 1024;

/// A prepared Karp–Luby sampler over a fixed DNF.
#[derive(Debug, Clone)]
pub struct KarpLuby {
    clauses: Vec<maybms_urel::Wsd>,
    /// Cumulative clause probabilities (unnormalised, ending at `sum`).
    cumulative: Vec<f64>,
    /// `S = Σ P(cᵢ)`.
    sum: f64,
    /// All variables mentioned by the DNF.
    vars: Vec<Var>,
    /// Scratch world indexed by raw variable id.
    world_len: usize,
    /// Trivial cases resolved at construction.
    constant: Option<f64>,
}

impl KarpLuby {
    /// Prepare a sampler. Constant DNFs (false / true / zero total mass)
    /// short-circuit.
    pub fn new(dnf: &Dnf, wt: &WorldTable) -> Result<KarpLuby> {
        if dnf.is_empty() {
            return Ok(Self::constant(0.0));
        }
        if dnf.is_true() {
            return Ok(Self::constant(1.0));
        }
        let clauses: Vec<_> = dnf.clauses().to_vec();
        let mut cumulative = Vec::with_capacity(clauses.len());
        let mut sum = 0.0;
        for c in &clauses {
            sum += c.prob(wt)?;
            cumulative.push(sum);
        }
        if sum == 0.0 {
            return Ok(Self::constant(0.0));
        }
        let vars = dnf.vars();
        let world_len = vars.iter().map(|v| v.0 as usize + 1).max().unwrap_or(0);
        Ok(KarpLuby { clauses, cumulative, sum, vars, world_len, constant: None })
    }

    fn constant(p: f64) -> KarpLuby {
        KarpLuby {
            clauses: Vec::new(),
            cumulative: Vec::new(),
            sum: p,
            vars: Vec::new(),
            world_len: 0,
            constant: Some(p),
        }
    }

    /// The probability when the DNF is constant (no sampling needed).
    pub fn constant_value(&self) -> Option<f64> {
        self.constant
    }

    /// `S = Σ P(cᵢ)`, the scale factor of the estimator.
    pub fn scale(&self) -> f64 {
        self.sum
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Draw one Bernoulli outcome `X ∈ {0, 1}` with
    /// `E[X] = P(DNF)/S`. Panics on constant samplers (callers check
    /// [`KarpLuby::constant_value`] first).
    pub fn sample_indicator<R: Rng + ?Sized>(&self, wt: &WorldTable, rng: &mut R) -> f64 {
        assert!(
            self.constant.is_none(),
            "sample_indicator called on a constant Karp-Luby sampler"
        );
        // 1. pick clause i ∝ P(cᵢ)
        let x: f64 = rng.gen::<f64>() * self.sum;
        let i = match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => (i + 1).min(self.clauses.len() - 1),
            Err(i) => i.min(self.clauses.len() - 1),
        };
        // 2. sample a world conditioned on cᵢ: fix cᵢ's assignments, draw
        //    the remaining DNF variables.
        let mut world = vec![0u16; self.world_len];
        let ci = &self.clauses[i];
        let free: Vec<Var> =
            self.vars.iter().copied().filter(|&v| ci.get(v).is_none()).collect();
        wt.sample_into(&mut world, &free, rng);
        for a in ci.assignments() {
            world[a.var.0 as usize] = a.alt;
        }
        // 3. indicator: is i the first satisfied clause?
        for (j, cj) in self.clauses.iter().enumerate() {
            if cj.satisfied_by(&world) {
                return if j == i { 1.0 } else { 0.0 };
            }
        }
        unreachable!("clause i is satisfied by construction");
    }

    /// Plain Monte Carlo estimate with a fixed number of samples:
    /// `S · mean(X)`. (The (ε,δ)-adaptive version lives in [`crate::dklr`].)
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        wt: &WorldTable,
        samples: usize,
        rng: &mut R,
    ) -> f64 {
        if let Some(p) = self.constant {
            return p;
        }
        maybms_obs::metrics().mc_samples.add(samples as u64);
        let mut acc = 0.0;
        for _ in 0..samples {
            acc += self.sample_indicator(wt, rng);
        }
        self.sum * acc / samples as f64
    }

    /// The indicators of seeded batch `batch` (`len` draws from an RNG
    /// seeded by `derive_seed(seed, batch)`) — the unit of deterministic
    /// parallel sampling. Used by the DKLR drivers, which need per-sample
    /// granularity for their stopping rule.
    pub(crate) fn batch_indicators(
        &self,
        wt: &WorldTable,
        seed: u64,
        batch: u64,
        len: usize,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(maybms_par::derive_seed(seed, batch));
        (0..len).map(|_| self.sample_indicator(wt, &mut rng)).collect()
    }

    /// Seeded fixed-count Monte Carlo estimate, batch-parallel on `pool`.
    ///
    /// The sample stream is the concatenation of [`SAMPLE_BATCH`]-sized
    /// seeded batches (see the constant's docs); batch sums accumulate in
    /// batch order. The estimate is therefore **bit-identical at any
    /// thread count** — a 1-thread and an 8-thread pool return the same
    /// float for the same `(samples, seed)`.
    pub fn estimate_seeded(
        &self,
        wt: &WorldTable,
        samples: usize,
        seed: u64,
        pool: &ThreadPool,
    ) -> f64 {
        if let Some(p) = self.constant {
            return p;
        }
        if samples == 0 {
            return 0.0;
        }
        maybms_obs::metrics().mc_samples.add(samples as u64);
        let batches = samples.div_ceil(SAMPLE_BATCH);
        let sums: Vec<f64> = pool.par_map((0..batches as u64).collect(), |b| {
            let len = SAMPLE_BATCH.min(samples - b as usize * SAMPLE_BATCH);
            let mut acc = 0.0;
            for x in self.batch_indicators(wt, seed, b, len) {
                acc += x;
            }
            acc
        });
        let acc: f64 = sums.iter().sum();
        self.sum * acc / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, naive};
    use maybms_urel::{Assignment, Wsd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clause(pairs: &[(Var, u16)]) -> Wsd {
        Wsd::from_assignments(pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect())
            .unwrap()
    }

    #[test]
    fn constant_dnfs_short_circuit() {
        let wt = WorldTable::new();
        let kl = KarpLuby::new(&Dnf::falsum(), &wt).unwrap();
        assert_eq!(kl.constant_value(), Some(0.0));
        let kl = KarpLuby::new(&Dnf::new(vec![Wsd::tautology()]), &wt).unwrap();
        assert_eq!(kl.constant_value(), Some(1.0));
    }

    #[test]
    fn zero_mass_dnf_is_constant_zero() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[1.0, 0.0]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 1)])]);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        assert_eq!(kl.constant_value(), Some(0.0));
    }

    #[test]
    fn estimator_is_unbiased_small_dnf() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let y = wt.new_var(&[0.3, 0.7]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 1), (y, 1)]), clause(&[(x, 0)])]);
        let truth = naive::probability(&d, &wt, 100).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let est = kl.estimate(&wt, 200_000, &mut rng);
        assert!(
            (est - truth).abs() < 0.01,
            "estimate {est} too far from truth {truth}"
        );
    }

    #[test]
    fn estimator_matches_exact_on_overlapping_clauses() {
        let mut wt = WorldTable::new();
        let vars: Vec<Var> =
            (0..6).map(|_| wt.new_var(&[0.6, 0.4]).unwrap()).collect();
        let d = Dnf::new(vec![
            clause(&[(vars[0], 1), (vars[1], 1)]),
            clause(&[(vars[1], 1), (vars[2], 1)]),
            clause(&[(vars[2], 0), (vars[3], 1), (vars[4], 1)]),
            clause(&[(vars[5], 1)]),
        ]);
        let truth = exact::probability(&d, &wt).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let est = kl.estimate(&wt, 400_000, &mut rng);
        assert!(
            ((est - truth) / truth).abs() < 0.02,
            "relative error too large: est {est}, truth {truth}"
        );
    }

    #[test]
    fn indicator_mean_is_at_least_one_over_m() {
        // E[X] = p/S ≥ 1/m — the DKLR precondition.
        let mut wt = WorldTable::new();
        let vars: Vec<Var> =
            (0..4).map(|_| wt.new_var(&[0.5, 0.5]).unwrap()).collect();
        let d = Dnf::new(vars.iter().map(|&v| clause(&[(v, 1)])).collect());
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let truth = exact::probability(&d, &wt).unwrap();
        let mean = truth / kl.scale();
        assert!(mean >= 1.0 / kl.num_clauses() as f64 - 1e-12);
    }

    #[test]
    fn scale_is_clause_probability_sum() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.25, 0.75]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 1)]), clause(&[(y, 0)])]);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        assert!((kl.scale() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn seeded_estimate_bit_identical_across_thread_counts() {
        let mut wt = WorldTable::new();
        let vars: Vec<Var> =
            (0..6).map(|_| wt.new_var(&[0.6, 0.4]).unwrap()).collect();
        let d = Dnf::new(vec![
            clause(&[(vars[0], 1), (vars[1], 1)]),
            clause(&[(vars[1], 1), (vars[2], 1)]),
            clause(&[(vars[2], 0), (vars[3], 1), (vars[4], 1)]),
            clause(&[(vars[5], 1)]),
        ]);
        let kl = KarpLuby::new(&d, &wt).unwrap();
        // A sample count that is not a batch multiple (exercises the tail).
        let samples = 3 * SAMPLE_BATCH + 137;
        let p1 = ThreadPool::new(1);
        let reference = kl.estimate_seeded(&wt, samples, 99, &p1);
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let est = kl.estimate_seeded(&wt, samples, 99, &pool);
            assert_eq!(reference.to_bits(), est.to_bits(), "threads = {threads}");
        }
        // Different seeds give different estimates (the seed is live).
        assert_ne!(
            reference.to_bits(),
            kl.estimate_seeded(&wt, samples, 100, &p1).to_bits()
        );
        // And the estimate is statistically sound.
        let truth = exact::probability(&d, &wt).unwrap();
        let est = kl.estimate_seeded(&wt, 400_000, 7, &p1);
        assert!(((est - truth) / truth).abs() < 0.02, "est {est} truth {truth}");
    }

    #[test]
    fn multivalued_variables_handled() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.2, 0.3, 0.5]).unwrap();
        let y = wt.new_var(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 2), (y, 3)]), clause(&[(x, 0)]), clause(&[(y, 0)])]);
        let truth = naive::probability(&d, &wt, 100).unwrap();
        let kl = KarpLuby::new(&d, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let est = kl.estimate(&wt, 300_000, &mut rng);
        assert!((est - truth).abs() < 0.01, "est {est} truth {truth}");
    }
}
