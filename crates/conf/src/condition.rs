//! Conditioning: confidence given a constraint (Koch–Olteanu, "Conditioning
//! Probabilistic Databases", VLDB 2008 — reference \[3\] of the demo paper).
//!
//! The MayBMS website demos "data cleaning using constraints": a constraint
//! knocks out the worlds violating it and renormalises the rest. For events
//! and constraints given as DNFs over the world table this is Bayes:
//!
//! ```text
//! P(event | constraint) = P(event ∧ constraint) / P(constraint)
//! ```
//!
//! The conjunction of two DNFs is the cross product of their clauses with
//! unsatisfiable combinations dropped, then simplification — after which
//! any [`crate::ConfMethod`] computes the two probabilities.

use maybms_urel::{Result, UrelError, WorldTable};

use crate::dnf::Dnf;
use crate::{confidence, ConfMethod};

/// `a ∧ b` as a DNF: cross product of clauses, dropping contradictions.
/// Output size is at most `|a| · |b|`; [`Dnf::simplify`] prunes absorbed
/// clauses.
pub fn and(a: &Dnf, b: &Dnf) -> Dnf {
    if a.is_empty() || b.is_empty() {
        return Dnf::falsum();
    }
    let mut clauses = Vec::with_capacity(a.len() * b.len());
    for ca in a.clauses() {
        for cb in b.clauses() {
            if let Some(c) = ca.conjoin(cb) {
                clauses.push(c);
            }
        }
    }
    Dnf::new(clauses).simplify()
}

/// `P(event | constraint)` with the chosen method for both probabilities.
///
/// Errors with [`UrelError::BadProbability`] when the constraint has zero
/// probability (conditioning on the impossible).
pub fn conditional_probability(
    event: &Dnf,
    constraint: &Dnf,
    wt: &WorldTable,
    method: ConfMethod,
) -> Result<f64> {
    let p_c = confidence(constraint, wt, method)?;
    if p_c <= 0.0 {
        return Err(UrelError::BadProbability {
            message: "conditioning on a zero-probability constraint".into(),
        });
    }
    let p_both = confidence(&and(event, constraint), wt, method)?;
    Ok(p_both / p_c)
}

/// Renormalised per-clause posteriors: for a family of mutually relevant
/// events (e.g. the repair alternatives of one group) return
/// `P(eventᵢ | constraint)` for each.
pub fn posteriors(
    events: &[Dnf],
    constraint: &Dnf,
    wt: &WorldTable,
    method: ConfMethod,
) -> Result<Vec<f64>> {
    let p_c = confidence(constraint, wt, method)?;
    if p_c <= 0.0 {
        return Err(UrelError::BadProbability {
            message: "conditioning on a zero-probability constraint".into(),
        });
    }
    events
        .iter()
        .map(|e| Ok(confidence(&and(e, constraint), wt, method)? / p_c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use maybms_urel::{Assignment, Var, Wsd};

    fn clause(pairs: &[(Var, u16)]) -> Wsd {
        Wsd::from_assignments(pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect())
            .unwrap()
    }

    fn setup() -> (WorldTable, Var, Var) {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let y = wt.new_var(&[0.2, 0.8]).unwrap();
        (wt, x, y)
    }

    #[test]
    fn and_is_cross_product_with_contradictions_dropped() {
        let (_, x, y) = setup();
        let a = Dnf::new(vec![clause(&[(x, 0)]), clause(&[(x, 1)])]);
        let b = Dnf::new(vec![clause(&[(x, 0), (y, 1)])]);
        let c = and(&a, &b);
        // (x=0 ∧ x=0 ∧ y=1) ∨ (x=1 ∧ x=0 ∧ y=1) → only the first survives.
        assert_eq!(c.len(), 1);
        assert_eq!(c.clauses()[0], clause(&[(x, 0), (y, 1)]));
    }

    #[test]
    fn and_with_falsum_is_falsum() {
        let (_, x, _) = setup();
        let a = Dnf::new(vec![clause(&[(x, 0)])]);
        assert!(and(&a, &Dnf::falsum()).is_empty());
        assert!(and(&Dnf::falsum(), &a).is_empty());
    }

    #[test]
    fn and_probability_matches_naive() {
        let (wt, x, y) = setup();
        let a = Dnf::new(vec![clause(&[(x, 1)]), clause(&[(y, 0)])]);
        let b = Dnf::new(vec![clause(&[(y, 1)]), clause(&[(x, 0)])]);
        let both = and(&a, &b);
        // Ground truth by world enumeration: P(a ∧ b).
        let mut truth = 0.0;
        for (world, p) in wt.enumerate_worlds(100).unwrap() {
            if a.satisfied_by(&world) && b.satisfied_by(&world) {
                truth += p;
            }
        }
        let got = naive::probability(&both, &wt, 100).unwrap();
        assert!((got - truth).abs() < 1e-12);
    }

    #[test]
    fn bayes_on_independent_events_is_marginal() {
        let (wt, x, y) = setup();
        let event = Dnf::new(vec![clause(&[(x, 1)])]);
        let constraint = Dnf::new(vec![clause(&[(y, 1)])]);
        let p = conditional_probability(&event, &constraint, &wt, ConfMethod::Exact)
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12); // independence: conditioning is a no-op
    }

    #[test]
    fn bayes_on_dependent_events() {
        let (wt, x, y) = setup();
        // event: x=1; constraint: x=1 ∨ y=1.
        let event = Dnf::new(vec![clause(&[(x, 1)])]);
        let constraint = Dnf::new(vec![clause(&[(x, 1)]), clause(&[(y, 1)])]);
        // P(c) = 1 - 0.5·0.2 = 0.9; P(e ∧ c) = P(x=1) = 0.5.
        let p = conditional_probability(&event, &constraint, &wt, ConfMethod::Exact)
            .unwrap();
        assert!((p - 0.5 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn conditioning_on_impossible_errors() {
        let (wt, x, _) = setup();
        let event = Dnf::new(vec![clause(&[(x, 1)])]);
        let err = conditional_probability(&event, &Dnf::falsum(), &wt, ConfMethod::Exact);
        assert!(matches!(err, Err(UrelError::BadProbability { .. })));
    }

    #[test]
    fn posteriors_renormalise() {
        let mut wt = WorldTable::new();
        // One 3-way choice (a repair group) plus an observation variable.
        let choice = wt.new_var(&[0.5, 0.3, 0.2]).unwrap();
        let obs = wt.new_var(&[0.5, 0.5]).unwrap();
        let events: Vec<Dnf> = (0..3)
            .map(|i| Dnf::new(vec![clause(&[(choice, i)])]))
            .collect();
        // Constraint: the observation rules out alternative 2 entirely:
        // constraint = choice∈{0,1} (alternatives 0 or 1) ∧ obs=1 … keep it
        // simple: constraint = (choice=0) ∨ (choice=1).
        let constraint =
            Dnf::new(vec![clause(&[(choice, 0)]), clause(&[(choice, 1)])]);
        let _ = obs;
        let post = posteriors(&events, &constraint, &wt, ConfMethod::Exact).unwrap();
        assert!((post[0] - 0.5 / 0.8).abs() < 1e-12);
        assert!((post[1] - 0.3 / 0.8).abs() < 1e-12);
        assert!(post[2].abs() < 1e-12);
        let total: f64 = post.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_with_approx_method_close_to_exact() {
        let (wt, x, y) = setup();
        let event = Dnf::new(vec![clause(&[(x, 1), (y, 1)])]);
        let constraint = Dnf::new(vec![clause(&[(y, 1)])]);
        let exact =
            conditional_probability(&event, &constraint, &wt, ConfMethod::Exact).unwrap();
        let approx = conditional_probability(
            &event,
            &constraint,
            &wt,
            ConfMethod::Approx { epsilon: 0.05, delta: 0.05, seed: 9 },
        )
        .unwrap();
        assert!(((approx - exact) / exact).abs() < 0.12, "{approx} vs {exact}");
    }
}
