//! # maybms-conf — confidence computation for MayBMS
//!
//! "MayBMS uses several state-of-the-art exact and approximate confidence
//! computation techniques" (§2). This crate implements all of them:
//!
//! * [`dnf`] — DNF lineage events (clauses are the tuples' world-set
//!   descriptors);
//! * [`exact`] — the Koch–Olteanu decomposition-tree algorithm:
//!   independence partitioning + variable elimination with pluggable
//!   heuristics (§2.3, "Exact confidence computation");
//! * [`karp_luby`] — the Karp–Luby unbiased DNF estimator adapted to
//!   multi-valued variable assignments (§2.3, "Approximate confidence
//!   computation");
//! * [`dklr`] — the Dagum–Karp–Luby–Ross optimal Monte Carlo driver
//!   (stopping rule + 𝒜𝒜 algorithm) providing the `(ε, δ)` guarantee of
//!   `aconf`;
//! * [`sprout`] — the SPROUT safe-plan machinery for tractable
//!   (hierarchical) queries on tuple-independent databases, with eager and
//!   lazy plans (§2.3, "For tractable queries…");
//! * [`condition`] — conditioning on constraints (reference \[3\],
//!   "Conditioning Probabilistic Databases"): `P(event | constraint)` and
//!   renormalised posteriors;
//! * [`naive`] — enumeration oracle for testing.
//!
//! The [`ConfMethod`]/[`confidence`] pair is the dispatcher used by the
//! `conf()` / `aconf(ε,δ)` SQL aggregates in `maybms-core`.
//!
//! # Parallel confidence computation
//!
//! Both engines parallelise on the vendored `maybms-par` pool while
//! staying **bit-identical to their sequential runs** at any thread
//! count: the d-tree recursion fans out independent-partition children
//! (var-disjoint subproblems whose probabilities multiply in a fixed
//! order — [`exact::probability_par`]), and the Monte Carlo drivers draw
//! from a seeded batch stream whose per-batch RNGs derive from SplitMix64
//! of `(seed, batch index)` ([`karp_luby::SAMPLE_BATCH`],
//! [`dklr::approximate_seeded`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod condition;
pub mod dklr;
pub mod dnf;
pub mod exact;
pub mod karp_luby;
pub mod naive;
pub mod sprout;

use maybms_urel::{Result, WorldTable};

pub use dnf::Dnf;

/// Which algorithm `confidence` should use.
#[derive(Debug, Clone, Copy)]
pub enum ConfMethod {
    /// Exact d-tree computation with the standard options (`conf()`).
    Exact,
    /// Exact with explicit options (ablations).
    ExactWith(exact::ExactOptions),
    /// `aconf(ε, δ)`: Karp–Luby + DKLR 𝒜𝒜, seeded for reproducibility.
    Approx {
        /// Relative error bound.
        epsilon: f64,
        /// Failure probability.
        delta: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Enumeration oracle with a world-count limit (tests only).
    Naive {
        /// Max assignment-space size.
        limit: u128,
    },
}

/// Per-call effort and accuracy report from [`confidence_with_effort`].
///
/// Every field is deterministic for a given `(DNF, method)` at any
/// thread count: the exact engine's d-tree shape is thread-invariant and
/// the seeded Monte Carlo drivers report *consumed* samples/batches, not
/// speculatively computed ones.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConfEffort {
    /// Clauses in the lineage DNF handed to the engine.
    pub dnf_clauses: u64,
    /// D-tree nodes expanded (decompositions + eliminations + leaves);
    /// `0` for Monte Carlo and naive runs.
    pub dtree_nodes: u64,
    /// Karp–Luby samples drawn across all DKLR phases; `0` for exact runs.
    pub samples: u64,
    /// Seeded sample batches consumed; `0` for exact runs.
    pub batches: u64,
    /// Achieved relative standard error of the Monte Carlo estimate
    /// (see [`dklr::Approximation::rel_stderr`]); `0` for exact runs.
    pub rel_stderr: f64,
    /// `Some(b)` when a governor deadline cut the seeded Monte Carlo run
    /// at consumed-batch index `b` and the estimate is the degraded
    /// partial mean (see [`dklr::Approximation::cut_batch`]); `None` for
    /// exact runs and for approximations that ran to completion.
    pub cut_batch: Option<u64>,
}

/// Compute the probability of a DNF lineage event with the chosen method.
///
/// `Exact` and `Approx` run batch-parallel on the process-wide
/// `maybms-par` pool; both are deterministic — `Approx` draws from the
/// seeded batch stream, so the same `(ε, δ, seed)` returns the same
/// estimate at any thread count.
pub fn confidence(dnf: &Dnf, wt: &WorldTable, method: ConfMethod) -> Result<f64> {
    confidence_with_effort(dnf, wt, method).map(|(p, _)| p)
}

/// [`confidence`] plus the per-call [`ConfEffort`] report. Also feeds the
/// process-wide `maybms-obs` metrics registry (DNF clause counts, d-tree
/// nodes, Monte Carlo samples/batches).
pub fn confidence_with_effort(
    dnf: &Dnf,
    wt: &WorldTable,
    method: ConfMethod,
) -> Result<(f64, ConfEffort)> {
    let mut span = maybms_obs::trace::span("conf");
    span.attr(
        "method",
        match method {
            ConfMethod::Exact | ConfMethod::ExactWith(_) => "exact",
            ConfMethod::Approx { .. } => "approx",
            ConfMethod::Naive { .. } => "naive",
        },
    );
    let mut effort = ConfEffort { dnf_clauses: dnf.len() as u64, ..ConfEffort::default() };
    let p = match method {
        ConfMethod::Exact => {
            let opts = exact::ExactOptions::standard();
            let pool = maybms_par::pool();
            let (p, stats) = if pool.threads() > 1 {
                exact::probability_par(dnf, wt, &opts, &pool, exact::PAR_MIN_CLAUSES)?
            } else {
                exact::probability_with(dnf, wt, &opts)?
            };
            effort.dtree_nodes =
                (stats.decompositions + stats.eliminations + stats.leaves) as u64;
            p
        }
        ConfMethod::ExactWith(opts) => {
            let (p, stats) = exact::probability_with(dnf, wt, &opts)?;
            effort.dtree_nodes =
                (stats.decompositions + stats.eliminations + stats.leaves) as u64;
            p
        }
        ConfMethod::Approx { epsilon, delta, seed } => {
            let a = dklr::aconf_seeded_report(
                dnf,
                wt,
                epsilon,
                delta,
                seed,
                &maybms_par::pool(),
            )?;
            effort.samples = a.samples;
            effort.batches = a.batches;
            effort.rel_stderr = a.rel_stderr;
            effort.cut_batch = a.cut_batch;
            a.estimate
        }
        ConfMethod::Naive { limit } => naive::probability(dnf, wt, limit)?,
    };
    let m = maybms_obs::metrics();
    m.dnf_clauses.add(effort.dnf_clauses);
    m.dtree_nodes.add(effort.dtree_nodes);
    m.mc_samples.add(effort.samples);
    m.mc_batches.add(effort.batches);
    if effort.cut_batch.is_some() {
        m.gov_degraded_conf.inc();
    }
    if span.is_active() {
        span.attr("dnf_clauses", effort.dnf_clauses);
        span.attr("dtree_nodes", effort.dtree_nodes);
        span.attr("samples", effort.samples);
        span.attr("batches", effort.batches);
        if effort.rel_stderr > 0.0 {
            span.attr("rel_stderr", effort.rel_stderr);
        }
        if let Some(b) = effort.cut_batch {
            span.attr("cut_batch", b);
        }
    }
    Ok((p, effort))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_urel::{Assignment, Var, Wsd};

    #[test]
    fn dispatcher_agrees_across_methods() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let y = wt.new_var(&[0.3, 0.7]).unwrap();
        let clause = |pairs: &[(Var, u16)]| {
            Wsd::from_assignments(
                pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect(),
            )
            .unwrap()
        };
        let d = Dnf::new(vec![clause(&[(x, 1), (y, 1)]), clause(&[(x, 0)])]);
        let e = confidence(&d, &wt, ConfMethod::Exact).unwrap();
        let n = confidence(&d, &wt, ConfMethod::Naive { limit: 100 }).unwrap();
        let a = confidence(
            &d,
            &wt,
            ConfMethod::Approx { epsilon: 0.05, delta: 0.05, seed: 42 },
        )
        .unwrap();
        assert!((e - n).abs() < 1e-12);
        assert!(((a - e) / e).abs() < 0.05, "approx {a} exact {e}");
    }
}
