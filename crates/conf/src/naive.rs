//! Naive exact confidence by enumeration — the testing oracle.
//!
//! Enumerates every joint assignment of the variables appearing in the DNF
//! (not the whole database) and sums the probabilities of satisfying
//! assignments. Exponential in the number of DNF variables; used to
//! validate the real algorithms on small inputs.

use maybms_urel::{Result, UrelError, WorldTable};

use crate::dnf::Dnf;

/// Probability of `dnf` by enumeration over its own variables.
///
/// Errors with [`UrelError::WorldLimitExceeded`] when the assignment space
/// exceeds `limit`.
pub fn probability(dnf: &Dnf, wt: &WorldTable, limit: u128) -> Result<f64> {
    if dnf.is_empty() {
        return Ok(0.0);
    }
    if dnf.is_true() {
        return Ok(1.0);
    }
    let vars = dnf.vars();
    let mut space: u128 = 1;
    for &v in &vars {
        space = space
            .checked_mul(wt.domain_size(v)? as u128)
            .ok_or(UrelError::WorldLimitExceeded { count: u128::MAX, limit })?;
    }
    if space > limit {
        return Err(UrelError::WorldLimitExceeded { count: space, limit });
    }
    // Odometer over the DNF's variables only; build a sparse world big
    // enough for satisfied_by (positions of unmentioned vars don't matter).
    let max_var = vars.iter().map(|v| v.0).max().unwrap_or(0) as usize;
    let mut world = vec![0u16; max_var + 1];
    let domains: Vec<usize> =
        vars.iter().map(|&v| wt.domain_size(v)).collect::<Result<_>>()?;
    let mut counters = vec![0usize; vars.len()];
    let mut total = 0.0;
    loop {
        // Write current counters into the sparse world and compute its prob.
        let mut p = 1.0;
        for (i, &v) in vars.iter().enumerate() {
            world[v.0 as usize] = counters[i] as u16;
            p *= wt.prob(maybms_urel::Assignment::new(v, counters[i] as u16))?;
        }
        if p > 0.0 && dnf.satisfied_by(&world) {
            total += p;
        }
        // Advance odometer.
        let mut i = vars.len();
        loop {
            if i == 0 {
                return Ok(total);
            }
            i -= 1;
            counters[i] += 1;
            if counters[i] < domains[i] {
                break;
            }
            counters[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_urel::{Assignment, Var, Wsd};

    fn clause(pairs: &[(Var, u16)]) -> Wsd {
        Wsd::from_assignments(pairs.iter().map(|&(v, a)| Assignment::new(v, a)).collect())
            .unwrap()
    }

    #[test]
    fn falsum_is_zero_verum_is_one() {
        let wt = WorldTable::new();
        assert_eq!(probability(&Dnf::falsum(), &wt, 10).unwrap(), 0.0);
        let t = Dnf::new(vec![Wsd::tautology()]);
        assert_eq!(probability(&t, &wt, 10).unwrap(), 1.0);
    }

    #[test]
    fn single_clause_is_product() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 1), (y, 0)])]);
        let p = probability(&d, &wt, 100).unwrap();
        assert!((p - 0.1).abs() < 1e-12);
    }

    #[test]
    fn independent_union() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.7, 0.3]).unwrap();
        let y = wt.new_var(&[0.4, 0.6]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 1)]), clause(&[(y, 1)])]);
        // P = 1 - (1-0.3)(1-0.6) = 0.72
        let p = probability(&d, &wt, 100).unwrap();
        assert!((p - 0.72).abs() < 1e-12);
    }

    #[test]
    fn mutually_exclusive_alternatives_add() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.2, 0.3, 0.5]).unwrap();
        let d = Dnf::new(vec![clause(&[(x, 0)]), clause(&[(x, 2)])]);
        let p = probability(&d, &wt, 100).unwrap();
        assert!((p - 0.7).abs() < 1e-12);
    }

    #[test]
    fn limit_enforced() {
        let mut wt = WorldTable::new();
        let vars: Vec<Var> = (0..20).map(|_| wt.new_var(&[0.5, 0.5]).unwrap()).collect();
        let d = Dnf::new(vars.iter().map(|&v| clause(&[(v, 1)])).collect());
        assert!(matches!(
            probability(&d, &wt, 1000),
            Err(UrelError::WorldLimitExceeded { .. })
        ));
    }

    #[test]
    fn enumeration_scoped_to_dnf_vars_only() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        // 30 extra variables that the DNF never mentions must not blow up
        // the enumeration space.
        for _ in 0..30 {
            wt.new_var(&[0.5, 0.5]).unwrap();
        }
        let d = Dnf::new(vec![clause(&[(x, 1)])]);
        let p = probability(&d, &wt, 4).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}
