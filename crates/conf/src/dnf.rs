//! DNF lineage events.
//!
//! Confidence computation in MayBMS reduces to computing the probability
//! of a DNF "of which each clause is a conjunctive local condition" (§2.3):
//! the tuples contributing to one result tuple each carry a WSD, and the
//! result's confidence is the probability that *at least one* of those
//! conditions holds.

use std::collections::HashSet;

use maybms_urel::{Var, Wsd};

/// A DNF over variable assignments: the disjunction of its clauses.
///
/// * no clauses — `false` (probability 0);
/// * a tautology clause — `true` (probability 1).
///
/// **Invariant:** the clause list is always sorted (by the `Wsd` total
/// order). Every constructor establishes it and every transformation
/// preserves it, so canonical comparisons — in particular the exact
/// algorithm's memoization key — never need to re-sort.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    clauses: Vec<Wsd>,
}

impl Dnf {
    /// The empty (false) DNF.
    pub fn falsum() -> Dnf {
        Dnf { clauses: Vec::new() }
    }

    /// Build from clauses (sorted here; duplicates are kept — use
    /// [`Dnf::simplify`] to drop them).
    pub fn new(mut clauses: Vec<Wsd>) -> Dnf {
        clauses.sort_unstable();
        Dnf { clauses }
    }

    /// Build from the WSDs of a group of tuples (the `conf()` aggregate's
    /// input).
    pub fn from_wsds<'a>(wsds: impl IntoIterator<Item = &'a Wsd>) -> Dnf {
        Dnf::new(wsds.into_iter().cloned().collect())
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Wsd] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True iff there are no clauses (the `false` event).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// True iff some clause is the tautology (the `true` event).
    pub fn is_true(&self) -> bool {
        self.clauses.iter().any(Wsd::is_tautology)
    }

    /// The set of variables mentioned.
    pub fn vars(&self) -> Vec<Var> {
        let mut set = HashSet::new();
        for c in &self.clauses {
            set.extend(c.vars());
        }
        let mut v: Vec<Var> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Whether a world satisfies the disjunction.
    pub fn satisfied_by(&self, world: &[u16]) -> bool {
        self.clauses.iter().any(|c| c.satisfied_by(world))
    }

    /// Logical simplification: deduplicate clauses and apply absorption
    /// (drop any clause that is a superset of another clause — the subset
    /// clause subsumes it). Detecting a tautology clause short-circuits to
    /// the `true` DNF. O(n² · clause length); intended for the exact
    /// algorithm's inputs, which are small after decomposition.
    pub fn simplify(&self) -> Dnf {
        if self.is_true() {
            return Dnf { clauses: vec![Wsd::tautology()] };
        }
        // Clauses are sorted by construction invariant; dedup directly.
        debug_assert!(self.clauses.windows(2).all(|w| w[0] <= w[1]));
        let mut clauses = self.clauses.clone();
        clauses.dedup();
        // Absorption: keep clause c unless some other kept clause d ⊆ c.
        // Sorting by length first makes subset checks one-directional.
        clauses.sort_by_key(Wsd::len);
        let mut kept: Vec<Wsd> = Vec::with_capacity(clauses.len());
        'outer: for c in clauses {
            for d in &kept {
                if subset(d, &c) {
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        kept.sort();
        Dnf { clauses: kept }
    }

    /// Condition every clause on `var = alt`, dropping clauses that become
    /// unsatisfiable (Shannon expansion step of variable elimination).
    /// Removing a binding can reorder clauses, so the sorted invariant is
    /// re-established here.
    pub fn condition(&self, var: Var, alt: u16) -> Dnf {
        Dnf::new(
            self.clauses
                .iter()
                .filter_map(|c| c.condition(var, alt))
                .collect(),
        )
    }
}

/// Is `a` a sub-conjunction of `b`? (Both sorted by variable.)
fn subset(a: &Wsd, b: &Wsd) -> bool {
    if a.len() > b.len() {
        return false;
    }
    a.assignments().iter().all(|x| b.get(x.var) == Some(x.alt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_urel::Assignment;

    fn clause(pairs: &[(u32, u16)]) -> Wsd {
        Wsd::from_assignments(
            pairs.iter().map(|&(v, a)| Assignment::new(Var(v), a)).collect(),
        )
        .expect("consistent clause")
    }

    #[test]
    fn falsum_and_verum() {
        assert!(Dnf::falsum().is_empty());
        assert!(!Dnf::falsum().is_true());
        let t = Dnf::new(vec![Wsd::tautology(), clause(&[(0, 1)])]);
        assert!(t.is_true());
    }

    #[test]
    fn vars_sorted_unique() {
        let d = Dnf::new(vec![clause(&[(3, 0), (1, 1)]), clause(&[(1, 1), (2, 0)])]);
        assert_eq!(d.vars(), vec![Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn simplify_dedups() {
        let d = Dnf::new(vec![clause(&[(0, 1)]), clause(&[(0, 1)])]);
        assert_eq!(d.simplify().len(), 1);
    }

    #[test]
    fn simplify_absorbs_supersets() {
        // (x0=1) ∨ (x0=1 ∧ x1=0)  ≡  x0=1
        let d = Dnf::new(vec![clause(&[(0, 1)]), clause(&[(0, 1), (1, 0)])]);
        let s = d.simplify();
        assert_eq!(s.len(), 1);
        assert_eq!(s.clauses()[0], clause(&[(0, 1)]));
    }

    #[test]
    fn simplify_keeps_incomparable_clauses() {
        let d = Dnf::new(vec![clause(&[(0, 1)]), clause(&[(1, 0)])]);
        assert_eq!(d.simplify().len(), 2);
    }

    #[test]
    fn simplify_true_dnf_collapses() {
        let d = Dnf::new(vec![Wsd::tautology(), clause(&[(0, 1)])]);
        let s = d.simplify();
        assert_eq!(s.len(), 1);
        assert!(s.is_true());
    }

    #[test]
    fn condition_drops_conflicts_and_reduces() {
        let d = Dnf::new(vec![clause(&[(0, 1), (1, 0)]), clause(&[(0, 2)])]);
        let c = d.condition(Var(0), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.clauses()[0], clause(&[(1, 0)]));
    }

    #[test]
    fn condition_can_make_true() {
        let d = Dnf::new(vec![clause(&[(0, 1)])]);
        let c = d.condition(Var(0), 1);
        assert!(c.is_true());
    }

    #[test]
    fn satisfied_by_any_clause() {
        let d = Dnf::new(vec![clause(&[(0, 1)]), clause(&[(1, 2)])]);
        assert!(d.satisfied_by(&[1, 0]));
        assert!(d.satisfied_by(&[0, 2]));
        assert!(!d.satisfied_by(&[0, 0]));
        assert!(!Dnf::falsum().satisfied_by(&[0, 0]));
    }
}
