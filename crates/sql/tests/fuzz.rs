//! Robustness: the lexer and parser must never panic — they return
//! `Ok`/`Err` on *any* input, including adversarial near-SQL.

use maybms_sql::{parse_expr, parse_statement, parse_statements};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally arbitrary unicode input.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC{0,60}") {
        let _ = parse_statement(&s);
        let _ = parse_statements(&s);
        let _ = parse_expr(&s);
    }

    /// Near-SQL: random token soup from the language's own vocabulary —
    /// much better at hitting deep parser states than raw unicode.
    #[test]
    fn parser_total_on_token_soup(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "select", "from", "where", "group", "by", "order", "limit",
            "repair", "key", "in", "weight", "pick", "tuples", "with",
            "probability", "independently", "conf()", "aconf(0.1,0.1)",
            "tconf()", "possible", "esum(x)", "ecount()", "argmax(a,b)",
            "union", "all", "distinct", "create", "table", "as", "insert",
            "into", "values", "update", "set", "delete", "drop", "if",
            "exists", "and", "or", "not", "is", "null", "case", "when",
            "then", "else", "end", "cast", "join", "on",
            "t", "r1", "x", "y", "p", "(", ")", ",", ";", "*", "=", "<",
            ">", "<=", ">=", "<>", "+", "-", "/", "%", "||", ".",
            "1", "2.5", "'str'", "\"q id\"", "--c\n", "/*b*/",
        ]),
        0..24,
    )) {
        let sql = tokens.join(" ");
        let _ = parse_statement(&sql);
        let _ = parse_statements(&sql);
    }

    /// Anything that parses must print, and the printed form must parse
    /// again (printer totality on parser output).
    #[test]
    fn printer_total_on_parsed_output(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "select", "from", "where", "conf()", "possible", "x", "y",
            "t", "1", "'s'", "(", ")", ",", "*", "=", "and", "repair",
            "key", "in", "weight", "by", "group",
        ]),
        0..16,
    )) {
        let sql = tokens.join(" ");
        if let Ok(stmt) = parse_statement(&sql) {
            let printed = stmt.to_string();
            let reparsed = parse_statement(&printed);
            prop_assert!(
                reparsed.is_ok(),
                "printed form failed to reparse: {} -> {}", sql, printed
            );
            prop_assert_eq!(stmt, reparsed.unwrap());
        }
    }
}
