//! Round-trip property: for randomly generated ASTs, `parse(print(ast)) ==
//! ast`; and for a corpus of realistic MayBMS statements,
//! `parse(print(parse(s))) == parse(s)`.

use maybms_sql::ast::*;
use maybms_sql::{parse_expr, parse_statement};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        maybms_sql::token::Keyword::from_ident(s).is_none()
    })
}

fn arb_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        Just(Lit::Null),
        any::<bool>().prop_map(Lit::Bool),
        (-1000i64..1000).prop_map(Lit::Int),
        // Finite floats that print exactly (halves) keep == comparable.
        (-100i64..100).prop_map(|i| Lit::Float(i as f64 / 2.0)),
        "[a-zA-Z '!]{0,8}".prop_map(Lit::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_lit().prop_map(Expr::Lit),
        arb_ident().prop_map(Expr::ident),
        (arb_ident(), arb_ident()).prop_map(|(q, n)| Expr::qident(q, n)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Eq),
                    Just(BinOp::Lt),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Concat),
                ],
                inner.clone()
            )
                .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, n)| Expr::IsNull { expr: Box::new(e), negated: n }),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..3), any::<bool>())
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (prop::collection::vec((inner.clone(), inner.clone()), 1..3),
             prop::option::of(inner.clone()))
                .prop_map(|(branches, else_expr)| Expr::Case {
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (arb_ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Func { name, args, star: false }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed, "printed: {}", printed);
    }
}

/// A corpus of realistic statements covering every construct; checks the
/// weaker (but normalisation-robust) property parse∘print∘parse = parse.
#[test]
fn corpus_roundtrip() {
    let corpus = [
        "select * from t",
        "select distinct a, b from t where a > 1",
        "select possible Player from R",
        "select conf() as p from r1, r2 where r1.k = r2.k group by r1.k",
        "select aconf(0.1, 0.05) from r group by x having x > 0",
        "select tconf() from r",
        "select esum(v), ecount() from r group by g",
        "select argmax(player, score) from r group by team",
        "select * from (repair key a, b in T weight by w) R1",
        "select * from (repair key a in (select a, w from T) weight by w)",
        "repair key a in T",
        "pick tuples from T independently with probability 0.5",
        "select * from (pick tuples from T) X",
        "select a from r union select a from s union all select a from t",
        "select a from t order by a desc, b limit 10",
        "select a from t where a in (select b from s)",
        "select a from t where a in (1, 2) and b not in (3)",
        "select case when a > 0 then 1 else 0 end from t",
        "select cast(a as double precision) from t",
        "select a.x, b.* from a join b on a.k = b.k",
        "create table t (a bigint, b double precision, c text)",
        "create table ft2 as select conf() from r group by x",
        "insert into t values (1, 'x''y', null, true)",
        "insert into t (a, b) select a, b from s",
        "update t set a = a + 1, b = 'z' where c is not null",
        "delete from t where a = 1 or b < 2",
        "drop table if exists t",
    ];
    for sql in corpus {
        let a = parse_statement(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let printed = a.to_string();
        let b = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(a, b, "sql: {sql}\nprinted: {printed}");
    }
}
