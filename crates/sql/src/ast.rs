//! Abstract syntax tree for the MayBMS query language (§2.2).
//!
//! The AST covers the SQL subset the paper's system exposes plus all
//! uncertainty constructs: `repair key … in … weight by …`,
//! `pick tuples from … [independently] [with probability …]`, the
//! confidence aggregates `conf`/`aconf`/`tconf`, `possible`, the
//! expectation aggregates `esum`/`ecount`, and `argmax`.
//!
//! Every node implements [`std::fmt::Display`], printing valid SQL that
//! re-parses to the same tree (checked by round-trip property tests).

use std::fmt;

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// NULL.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Null => f.write_str("NULL"),
            Lit::Bool(true) => f.write_str("TRUE"),
            Lit::Bool(false) => f.write_str("FALSE"),
            Lit::Int(i) => write!(f, "{i}"),
            Lit::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Lit::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Binary operators (SQL surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the operators they name
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        };
        f.write_str(s)
    }
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`r1.player`).
    Ident {
        /// Relation alias, when written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal.
    Lit(Lit),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Neg(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// Candidates.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IN (SELECT …)` — the paper allows uncertain subqueries in
    /// IN-conditions that occur *positively*, so there is no `NOT` form.
    InSelect {
        /// Probe expression.
        expr: Box<Expr>,
        /// Subquery (must produce one column).
        query: Box<Query>,
    },
    /// `CASE WHEN … THEN … [ELSE …] END`.
    Case {
        /// `(condition, result)` branches.
        branches: Vec<(Expr, Expr)>,
        /// Optional ELSE result.
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Type name as written (`bigint`, `double precision`, `text`, …).
        type_name: String,
    },
    /// Function or aggregate call: `conf()`, `aconf(0.05, 0.05)`,
    /// `esum(x)`, `sum(x)`, `argmax(a, v)`, `count(*)`, …
    Func {
        /// Function name (case-insensitive).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// True for `f(*)` (only `count(*)`).
        star: bool,
    },
}

impl Expr {
    /// Unqualified identifier.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident { qualifier: None, name: name.into() }
    }

    /// Qualified identifier.
    pub fn qident(q: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Ident { qualifier: Some(q.into()), name: name.into() }
    }

    /// `left op right`.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Walk the tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Ident { .. } | Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Not(e) | Expr::Neg(e) => e.walk(f),
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSelect { expr, .. } => expr.walk(f),
            Expr::Case { branches, else_expr } => {
                for (c, r) in branches {
                    c.walk(f);
                    r.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ident { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            Expr::Ident { qualifier: None, name } => write!(f, "{name}"),
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::IsNull { expr, negated: false } => write!(f, "({expr} IS NULL)"),
            Expr::IsNull { expr, negated: true } => write!(f, "({expr} IS NOT NULL)"),
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::InSelect { expr, query } => write!(f, "({expr} IN ({query}))"),
            Expr::Case { branches, else_expr } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, type_name } => write!(f, "CAST({expr} AS {type_name})"),
            Expr::Func { name, args, star } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
        }
    }
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// Expression with optional output alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`, when written.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

/// The input of `repair key` / `pick tuples`: a bare table name or a
/// parenthesised subquery (the paper's `<t-certain-query>`).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryInput {
    /// Named table.
    Table(String),
    /// Subquery.
    Select(Box<Query>),
}

impl fmt::Display for QueryInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryInput::Table(t) => write!(f, "{t}"),
            QueryInput::Select(q) => write!(f, "({q})"),
        }
    }
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `name [alias]`
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `(SELECT …) alias`
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
    /// `(REPAIR KEY k1, k2 IN input [WEIGHT BY e]) [alias]` — §2.2(2).
    RepairKey {
        /// Key attributes.
        key: Vec<String>,
        /// Input query (must be t-certain).
        input: QueryInput,
        /// Optional weight expression.
        weight: Option<Expr>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `(PICK TUPLES FROM input [INDEPENDENTLY] [WITH PROBABILITY e]) [alias]`
    /// — §2.2(2).
    PickTuples {
        /// Input query (must be t-certain).
        input: QueryInput,
        /// `INDEPENDENTLY` flag.
        independently: bool,
        /// Optional per-tuple probability expression.
        probability: Option<Expr>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `left JOIN right ON condition` (sugar over cross join + filter).
    Join {
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// Join condition.
        on: Expr,
    },
}

impl FromItem {
    /// The alias under which this item's columns are visible, if any.
    pub fn alias(&self) -> Option<&str> {
        match self {
            FromItem::Table { alias, name } => alias.as_deref().or(Some(name)),
            FromItem::Subquery { alias, .. } => Some(alias),
            FromItem::RepairKey { alias, .. } | FromItem::PickTuples { alias, .. } => {
                alias.as_deref()
            }
            FromItem::Join { .. } => None,
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias: Some(a) } => write!(f, "{name} {a}"),
            FromItem::Table { name, alias: None } => write!(f, "{name}"),
            FromItem::Subquery { query, alias } => write!(f, "({query}) {alias}"),
            FromItem::RepairKey { key, input, weight, alias } => {
                write!(f, "(REPAIR KEY {} IN {input}", key.join(", "))?;
                if let Some(w) = weight {
                    write!(f, " WEIGHT BY {w}")?;
                }
                write!(f, ")")?;
                if let Some(a) = alias {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            FromItem::PickTuples { input, independently, probability, alias } => {
                write!(f, "(PICK TUPLES FROM {input}")?;
                if *independently {
                    write!(f, " INDEPENDENTLY")?;
                }
                if let Some(p) = probability {
                    write!(f, " WITH PROBABILITY {p}")?;
                }
                write!(f, ")")?;
                if let Some(a) = alias {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            FromItem::Join { left, right, on } => {
                write!(f, "{left} JOIN {right} ON {on}")
            }
        }
    }
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression.
    pub expr: Expr,
    /// Ascending?
    pub ascending: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.expr, if self.ascending { "" } else { " DESC" })
    }
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT` (rejected on uncertain inputs by the planner).
    pub distinct: bool,
    /// `SELECT POSSIBLE` — §2.2(1): filters zero-probability tuples and
    /// deduplicates, mapping uncertain to t-certain.
    pub possible: bool,
    /// Output columns.
    pub items: Vec<SelectItem>,
    /// FROM items (comma = cross join).
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (over a t-certain aggregate result).
    pub having: Option<Expr>,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.possible {
            write!(f, "POSSIBLE ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, item) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

/// A full query: a UNION chain of SELECT blocks with optional ORDER BY and
/// LIMIT. Per §2.2, `union` on uncertain relations is *multiset* union.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The first SELECT block.
    pub first: Select,
    /// Further blocks: `(is_union_all, select)`.
    pub rest: Vec<(bool, Select)>,
    /// ORDER BY keys (applied to the union result).
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<u64>,
}

impl Query {
    /// A query that is a single SELECT block.
    pub fn single(select: Select) -> Query {
        Query { first: select, rest: Vec::new(), order_by: Vec::new(), limit: None }
    }

    /// All SELECT blocks in order.
    pub fn selects(&self) -> impl Iterator<Item = &Select> {
        std::iter::once(&self.first).chain(self.rest.iter().map(|(_, s)| s))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.first)?;
        for (all, s) in &self.rest {
            write!(f, " UNION {}{s}", if *all { "ALL " } else { "" })?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type name as written.
    pub type_name: String,
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.type_name)
    }
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Query),
    /// `EXPLAIN [ANALYZE] query` — runs the query and reports the
    /// optimized evaluation structure: the pipelines the morsel-driven
    /// executor fused, their stages, and the breakers between them (the
    /// substrate is in-memory, so running is the cheapest way to an
    /// honest plan). With `ANALYZE`, each pipeline additionally reports
    /// measured per-stage row counts, morsels, wall time, and the
    /// confidence-estimator effort.
    Explain {
        /// The explained query.
        query: Query,
        /// `EXPLAIN ANALYZE`: attach the per-query stats collector and
        /// print measured execution statistics.
        analyze: bool,
    },
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE TABLE name AS query` — how Figure 1 materialises `FT2`.
    CreateTableAs {
        /// Table name.
        name: String,
        /// Defining query.
        query: Query,
    },
    /// `INSERT INTO name [(cols)] VALUES (…), … | query`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Rows or a source query.
        source: InsertSource,
    },
    /// `UPDATE name SET col = e, … [WHERE p]`.
    Update {
        /// Target table.
        table: String,
        /// `col = expr` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM name [WHERE p]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional row filter.
        filter: Option<Expr>,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    Drop {
        /// Target table.
        table: String,
        /// Suppress the missing-table error.
        if_exists: bool,
    },
}

/// The data source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // statements are transient parse products
pub enum InsertSource {
    /// `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t query`.
    Query(Query),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Explain { query, analyze: false } => write!(f, "EXPLAIN {query}"),
            Statement::Explain { query, analyze: true } => {
                write!(f, "EXPLAIN ANALYZE {query}")
            }
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Statement::CreateTableAs { name, query } => {
                write!(f, "CREATE TABLE {name} AS {query}")
            }
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        write!(f, " VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "(")?;
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    write!(f, ", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            write!(f, ")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Query(q) => write!(f, " {q}"),
                }
            }
            Statement::Update { table, assignments, filter } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Drop { table, if_exists } => {
                write!(f, "DROP TABLE {}{table}", if *if_exists { "IF EXISTS " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_select_item_variants() {
        assert_eq!(SelectItem::Wildcard.to_string(), "*");
        assert_eq!(SelectItem::QualifiedWildcard("r1".into()).to_string(), "r1.*");
        assert_eq!(
            SelectItem::Expr { expr: Expr::ident("x"), alias: Some("y".into()) }.to_string(),
            "x AS y"
        );
    }

    #[test]
    fn display_repair_key_matches_paper_shape() {
        let item = FromItem::RepairKey {
            key: vec!["Player".into(), "Init".into()],
            input: QueryInput::Table("FT".into()),
            weight: Some(Expr::ident("p")),
            alias: Some("R1".into()),
        };
        assert_eq!(item.to_string(), "(REPAIR KEY Player, Init IN FT WEIGHT BY p) R1");
    }

    #[test]
    fn display_pick_tuples() {
        let item = FromItem::PickTuples {
            input: QueryInput::Table("R".into()),
            independently: true,
            probability: Some(Expr::Lit(Lit::Float(0.5))),
            alias: None,
        };
        assert_eq!(item.to_string(), "(PICK TUPLES FROM R INDEPENDENTLY WITH PROBABILITY 0.5)");
    }

    #[test]
    fn string_literal_escaping_in_display() {
        assert_eq!(Lit::Str("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn from_item_alias_fallback() {
        let t = FromItem::Table { name: "FT".into(), alias: None };
        assert_eq!(t.alias(), Some("FT"));
        let t = FromItem::Table { name: "FT".into(), alias: Some("r1".into()) };
        assert_eq!(t.alias(), Some("r1"));
    }

    #[test]
    fn expr_walk_visits_all_nodes() {
        let e = Expr::binary(
            Expr::ident("a"),
            BinOp::And,
            Expr::Not(Box::new(Expr::ident("b"))),
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4); // And, a, Not, b
    }
}
