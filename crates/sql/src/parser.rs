//! Recursive-descent parser for the MayBMS query language.
//!
//! Entry points: [`parse_statement`], [`parse_statements`], [`parse_query`],
//! [`parse_expr`]. The grammar is the SQL subset of §2.2 plus the
//! uncertainty constructs; the two Figure-1 programs parse verbatim (see
//! tests).

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::token::{Keyword as K, Spanned, Token};

/// Parse a single statement (optionally `;`-terminated).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&Token::Semi);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat(&Token::Semi) {
            break;
        }
    }
    p.expect_end()?;
    Ok(out)
}

/// Parse a query (SELECT/UNION chain).
pub fn parse_query(sql: &str) -> Result<Query> {
    let mut p = Parser::new(sql)?;
    let q = p.query()?;
    p.eat(&Token::Semi);
    p.expect_end()?;
    Ok(q)
}

/// Parse a standalone scalar expression.
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser { tokens: lex(sql)?, pos: 0 })
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|s| &s.token)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: K) -> bool {
        self.eat(&Token::Kw(k))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        match self.tokens.get(self.pos) {
            Some(s) => ParseError::Syntax {
                message: format!("{}, found `{}`", message.into(), s.token),
                line: s.line,
                col: s.col,
            },
            None => ParseError::Syntax { message: message.into(), line: 0, col: 0 },
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{t}`")))
        }
    }

    fn expect_kw(&mut self, k: K) -> Result<()> {
        self.expect(&Token::Kw(k))
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.error("expected end of input"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.bump() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            // Permit non-reserved keywords as identifiers where harmless
            // (e.g. a column named `key` or `probability`).
            Some(Token::Kw(k))
                if matches!(k, K::Key | K::Probability | K::Weight | K::Values | K::Set) =>
            {
                let k = *k;
                self.pos += 1;
                Ok(k.to_string().to_ascii_lowercase())
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    // ---- statements ----------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Token::Kw(K::Select)) | Some(Token::LParen) | Some(Token::Kw(K::Repair))
            | Some(Token::Kw(K::Pick)) => Ok(Statement::Select(self.query()?)),
            Some(Token::Kw(K::Explain)) => {
                self.expect_kw(K::Explain)?;
                let analyze = self.eat_kw(K::Analyze);
                Ok(Statement::Explain { query: self.query()?, analyze })
            }
            Some(Token::Kw(K::Create)) => self.create(),
            Some(Token::Kw(K::Insert)) => self.insert(),
            Some(Token::Kw(K::Update)) => self.update(),
            Some(Token::Kw(K::Delete)) => self.delete(),
            Some(Token::Kw(K::Drop)) => self.drop_stmt(),
            _ => Err(self.error("expected a statement")),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw(K::Create)?;
        self.expect_kw(K::Table)?;
        let name = self.ident()?;
        if self.eat_kw(K::As) {
            let query = self.query()?;
            return Ok(Statement::CreateTableAs { name, query });
        }
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let mut type_name = self.ident()?;
            // multi-word types: `double precision`
            while let Some(Token::Ident(_)) = self.peek() {
                type_name.push(' ');
                type_name.push_str(&self.ident()?);
            }
            columns.push(ColumnDef { name: col, type_name });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(K::Insert)?;
        self.expect_kw(K::Into)?;
        let table = self.ident()?;
        // Optional column list: `(a, b, c)` — only when followed by VALUES
        // or a query; distinguished by lookahead for `ident , | ident )`.
        let mut columns = None;
        if self.peek() == Some(&Token::LParen) {
            let is_col_list = matches!(self.peek_at(1), Some(Token::Ident(_)))
                && matches!(self.peek_at(2), Some(Token::Comma) | Some(Token::RParen));
            if is_col_list {
                self.expect(&Token::LParen)?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                columns = Some(cols);
            }
        }
        let source = if self.eat_kw(K::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(self.query()?)
        };
        Ok(Statement::Insert { table, columns, source })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw(K::Update)?;
        let table = self.ident()?;
        self.expect_kw(K::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(K::Where) { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw(K::Delete)?;
        self.expect_kw(K::From)?;
        let table = self.ident()?;
        let filter = if self.eat_kw(K::Where) { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn drop_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Drop)?;
        self.expect_kw(K::Table)?;
        let if_exists = if self.eat_kw(K::If) {
            self.expect_kw(K::Exists)?;
            true
        } else {
            false
        };
        let table = self.ident()?;
        Ok(Statement::Drop { table, if_exists })
    }

    // ---- queries ---------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        // Allow a bare `repair key …` / `pick tuples …` / parenthesised
        // construct as a whole query: sugar for `SELECT * FROM (…)`.
        let first = if matches!(self.peek(), Some(Token::Kw(K::Repair)) | Some(Token::Kw(K::Pick)))
        {
            let item = self.repair_or_pick()?;
            Select {
                distinct: false,
                possible: false,
                items: vec![SelectItem::Wildcard],
                from: vec![item],
                where_clause: None,
                group_by: Vec::new(),
                having: None,
            }
        } else {
            self.select_block()?
        };
        let mut rest = Vec::new();
        while self.eat_kw(K::Union) {
            let all = self.eat_kw(K::All);
            rest.push((all, self.select_block()?));
        }
        let mut order_by = Vec::new();
        if self.eat_kw(K::Order) {
            self.expect_kw(K::By)?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw(K::Desc) {
                    false
                } else {
                    self.eat_kw(K::Asc);
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(K::Limit) {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.error("expected a non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query { first, rest, order_by, limit })
    }

    fn select_block(&mut self) -> Result<Select> {
        // Allow a parenthesised select block.
        if self.peek() == Some(&Token::LParen) {
            // Only treat as parenthesised select if it starts a SELECT.
            if matches!(self.peek_at(1), Some(Token::Kw(K::Select))) {
                self.expect(&Token::LParen)?;
                let s = self.select_block()?;
                self.expect(&Token::RParen)?;
                return Ok(s);
            }
        }
        self.expect_kw(K::Select)?;
        let distinct = self.eat_kw(K::Distinct);
        let possible = self.eat_kw(K::Possible);
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw(K::From) {
            loop {
                from.push(self.from_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw(K::Where) { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw(K::Group) {
            self.expect_kw(K::By)?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(K::Having) { Some(self.expr()?) } else { None };
        Ok(Select { distinct, possible, items, from, where_clause, group_by, having })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Ident(_)), Some(Token::Dot), Some(Token::Star)) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let q = self.ident()?;
            self.expect(&Token::Dot)?;
            self.expect(&Token::Star)?;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(K::As) {
            Some(self.ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            // bare alias (`conf() p`)
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    #[allow(clippy::wrong_self_convention)] // parses the SQL FROM clause
    fn from_item(&mut self) -> Result<FromItem> {
        let mut item = self.from_item_primary()?;
        // JOIN … ON … chains (left-associative).
        while self.eat_kw(K::Join) {
            let right = self.from_item_primary()?;
            self.expect_kw(K::On)?;
            let on = self.expr()?;
            item = FromItem::Join { left: Box::new(item), right: Box::new(right), on };
        }
        Ok(item)
    }

    #[allow(clippy::wrong_self_convention)] // parses the SQL FROM clause
    fn from_item_primary(&mut self) -> Result<FromItem> {
        if self.peek() == Some(&Token::LParen) {
            // (SELECT …) alias | (REPAIR KEY …) [alias] | (PICK TUPLES …) [alias]
            match self.peek_at(1) {
                Some(Token::Kw(K::Select)) => {
                    self.expect(&Token::LParen)?;
                    let query = self.query()?;
                    self.expect(&Token::RParen)?;
                    self.eat_kw(K::As);
                    let alias = self.ident().map_err(|_| {
                        self.error("subquery in FROM requires an alias")
                    })?;
                    return Ok(FromItem::Subquery { query: Box::new(query), alias });
                }
                Some(Token::Kw(K::Repair)) | Some(Token::Kw(K::Pick)) => {
                    self.expect(&Token::LParen)?;
                    let mut item = self.repair_or_pick()?;
                    self.expect(&Token::RParen)?;
                    self.eat_kw(K::As);
                    let alias = match self.peek() {
                        Some(Token::Ident(_)) => Some(self.ident()?),
                        _ => None,
                    };
                    match &mut item {
                        FromItem::RepairKey { alias: a, .. }
                        | FromItem::PickTuples { alias: a, .. } => *a = alias,
                        _ => unreachable!("repair_or_pick returns RepairKey/PickTuples"),
                    }
                    return Ok(item);
                }
                _ => {
                    // Parenthesised from-item: `(t alias)` — rare; support
                    // by recursing.
                    self.expect(&Token::LParen)?;
                    let item = self.from_item()?;
                    self.expect(&Token::RParen)?;
                    return Ok(item);
                }
            }
        }
        // Bare REPAIR KEY / PICK TUPLES without parens (paper §2.2 syntax).
        if matches!(self.peek(), Some(Token::Kw(K::Repair)) | Some(Token::Kw(K::Pick))) {
            return self.repair_or_pick();
        }
        let name = self.ident()?;
        self.eat_kw(K::As);
        let alias = match self.peek() {
            Some(Token::Ident(_)) => Some(self.ident()?),
            _ => None,
        };
        Ok(FromItem::Table { name, alias })
    }

    /// Parses `REPAIR KEY k1, … IN input [WEIGHT BY e]` or
    /// `PICK TUPLES FROM input [INDEPENDENTLY] [WITH PROBABILITY e]`
    /// (without surrounding parens or alias).
    fn repair_or_pick(&mut self) -> Result<FromItem> {
        if self.eat_kw(K::Repair) {
            self.expect_kw(K::Key)?;
            // `repair key in R` repairs the empty key: exactly one tuple
            // survives per world.
            let mut key = Vec::new();
            if self.peek() != Some(&Token::Kw(K::In)) {
                loop {
                    key.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect_kw(K::In)?;
            let input = self.query_input()?;
            let weight = if self.eat_kw(K::Weight) {
                self.expect_kw(K::By)?;
                Some(self.expr()?)
            } else {
                None
            };
            Ok(FromItem::RepairKey { key, input, weight, alias: None })
        } else {
            self.expect_kw(K::Pick)?;
            self.expect_kw(K::Tuples)?;
            self.expect_kw(K::From)?;
            let input = self.query_input()?;
            let independently = self.eat_kw(K::Independently);
            let probability = if self.eat_kw(K::With) {
                self.expect_kw(K::Probability)?;
                Some(self.expr()?)
            } else {
                None
            };
            Ok(FromItem::PickTuples { input, independently, probability, alias: None })
        }
    }

    fn query_input(&mut self) -> Result<QueryInput> {
        if self.peek() == Some(&Token::LParen)
            && matches!(self.peek_at(1), Some(Token::Kw(K::Select)))
        {
            self.expect(&Token::LParen)?;
            let q = self.query()?;
            self.expect(&Token::RParen)?;
            Ok(QueryInput::Select(Box::new(q)))
        } else {
            Ok(QueryInput::Table(self.ident()?))
        }
    }

    // ---- expressions -----------------------------------------------------
    //
    // Precedence (loosest to tightest):
    //   OR < AND < NOT < (comparison | IS | IN) < additive (+ - ||)
    //   < multiplicative (* / %) < unary - < postfix/primary

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(K::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(K::And) {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(K::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw(K::Is) {
            let negated = self.eat_kw(K::Not);
            self.expect_kw(K::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN (…)
        let (has_in, negated_in) = if self.eat_kw(K::Not) {
            self.expect_kw(K::In)?;
            (true, true)
        } else if self.eat_kw(K::In) {
            (true, false)
        } else {
            (false, false)
        };
        if has_in {
            self.expect(&Token::LParen)?;
            if matches!(self.peek(), Some(Token::Kw(K::Select))) {
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                if negated_in {
                    return Err(self.error(
                        "NOT IN with a subquery is not supported (IN-subqueries must occur positively, §2.2)",
                    ));
                }
                return Ok(Expr::InSelect { expr: Box::new(left), query: Box::new(q) });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated: negated_in });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Neq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Concat) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            // Fold into a literal when possible, keeping `-0.5` a literal.
            match self.peek() {
                Some(Token::Int(_)) | Some(Token::Float(_)) => {
                    match self.bump() {
                        Some(Token::Int(i)) => return Ok(Expr::Lit(Lit::Int(-i))),
                        Some(Token::Float(x)) => return Ok(Expr::Lit(Lit::Float(-x))),
                        _ => unreachable!(),
                    }
                }
                _ => return Ok(Expr::Neg(Box::new(self.unary()?))),
            }
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Lit(Lit::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Lit(Lit::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Lit::Str(s)))
            }
            Some(Token::Kw(K::Null)) => {
                self.pos += 1;
                Ok(Expr::Lit(Lit::Null))
            }
            Some(Token::Kw(K::True)) => {
                self.pos += 1;
                Ok(Expr::Lit(Lit::Bool(true)))
            }
            Some(Token::Kw(K::False)) => {
                self.pos += 1;
                Ok(Expr::Lit(Lit::Bool(false)))
            }
            Some(Token::Kw(K::Case)) => self.case_expr(),
            Some(Token::Kw(K::Cast)) => self.cast_expr(),
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(_)) | Some(Token::Kw(_)) => {
                let name = self.ident()?;
                // function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    if self.eat(&Token::Star) {
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Func { name, args: Vec::new(), star: true });
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Func { name, args, star: false });
                }
                // qualified identifier?
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::qident(name, col));
                }
                Ok(Expr::ident(name))
            }
            _ => Err(self.error("expected an expression")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw(K::Case)?;
        let mut branches = Vec::new();
        while self.eat_kw(K::When) {
            let c = self.expr()?;
            self.expect_kw(K::Then)?;
            let r = self.expr()?;
            branches.push((c, r));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr =
            if self.eat_kw(K::Else) { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw(K::End)?;
        Ok(Expr::Case { branches, else_expr })
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        self.expect_kw(K::Cast)?;
        self.expect(&Token::LParen)?;
        let e = self.expr()?;
        self.expect_kw(K::As)?;
        let mut type_name = self.ident()?;
        while let Some(Token::Ident(_)) = self.peek() {
            type_name.push(' ');
            type_name.push_str(&self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Cast { expr: Box::new(e), type_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_statement_parses_and_roundtrips() {
        let stmt = parse_statement("explain select player from games where pts > 10").unwrap();
        let Statement::Explain { query, analyze: false } = &stmt else { panic!("{stmt:?}") };
        assert_eq!(query.first.from.len(), 1);
        let printed = stmt.to_string();
        assert!(printed.starts_with("EXPLAIN SELECT"), "{printed}");
        assert_eq!(parse_statement(&printed).unwrap(), stmt);
        // EXPLAIN ANALYZE parses, roundtrips, and sets the flag.
        let stmt = parse_statement("explain analyze select player from games").unwrap();
        let Statement::Explain { analyze: true, .. } = &stmt else { panic!("{stmt:?}") };
        let printed = stmt.to_string();
        assert!(printed.starts_with("EXPLAIN ANALYZE SELECT"), "{printed}");
        assert_eq!(parse_statement(&printed).unwrap(), stmt);
        // EXPLAIN wraps a full query, UNION/ORDER BY included.
        assert!(parse_statement(
            "explain select a from t union select a from s order by a limit 3"
        )
        .is_ok());
        // EXPLAIN of a non-query is rejected.
        assert!(parse_statement("explain drop table t").is_err());
    }

    /// The first Figure-1 statement, verbatim from the paper.
    const FIGURE1_FT2: &str = "\
create table FT2 as
select R1.Player, R1.Init, R2.Final, conf() as p from
(repair key Player, Init in FT weight by p) R1,
(repair key Player, Init in FT weight by p) R2, States S
where R1.Player = S.Player and R1.Init = S.State
and R1.Final = R2.Init and R1.Player = R2.Player
group by R1.Player, R1.Init, R2.Final;";

    /// The second Figure-1 statement, verbatim from the paper.
    const FIGURE1_WALK: &str = "\
select R1.Player, R2.Final as State, conf() as p from
(repair key Player, Init in FT2 weight by p) R1,
(repair key Player, Init in FT weight by p) R2
where R1.Final = R2.Init and R1.Player = R2.Player
group by R1.player, R2.Final;";

    #[test]
    fn parses_figure1_create_table_as() {
        let stmt = parse_statement(FIGURE1_FT2).unwrap();
        let Statement::CreateTableAs { name, query } = stmt else {
            panic!("expected CREATE TABLE AS");
        };
        assert_eq!(name, "FT2");
        let s = &query.first;
        assert_eq!(s.items.len(), 4);
        assert_eq!(s.from.len(), 3);
        assert!(matches!(&s.from[0], FromItem::RepairKey { key, alias, .. }
            if key == &["Player".to_string(), "Init".to_string()]
            && alias.as_deref() == Some("R1")));
        assert!(matches!(&s.from[2], FromItem::Table { name, alias }
            if name == "States" && alias.as_deref() == Some("S")));
        assert_eq!(s.group_by.len(), 3);
        // conf() parsed as a zero-argument function with alias p
        assert!(matches!(&s.items[3], SelectItem::Expr {
            expr: Expr::Func { name, args, star: false }, alias: Some(a)
        } if name == "conf" && args.is_empty() && a == "p"));
    }

    #[test]
    fn parses_figure1_walk_query() {
        let stmt = parse_statement(FIGURE1_WALK).unwrap();
        let Statement::Select(q) = stmt else { panic!("expected SELECT") };
        assert_eq!(q.first.from.len(), 2);
        assert!(q.first.where_clause.is_some());
        assert_eq!(q.first.group_by.len(), 2);
    }

    #[test]
    fn roundtrip_figure1() {
        for sql in [FIGURE1_FT2, FIGURE1_WALK] {
            let a = parse_statement(sql).unwrap();
            let printed = a.to_string();
            let b = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
            assert_eq!(a, b, "print→parse not identity for {printed}");
        }
    }

    #[test]
    fn parses_pick_tuples_variants() {
        let q = parse_query(
            "select * from (pick tuples from R independently with probability 0.3) S",
        )
        .unwrap();
        assert!(matches!(&q.first.from[0], FromItem::PickTuples {
            independently: true, probability: Some(_), alias: Some(a), ..
        } if a == "S"));

        let q = parse_query("select * from (pick tuples from R)").unwrap();
        assert!(matches!(&q.first.from[0], FromItem::PickTuples {
            independently: false, probability: None, alias: None, ..
        }));
    }

    #[test]
    fn repair_key_with_empty_attribute_list() {
        // `repair key in R` — repair of the empty key (§2.2): one surviving
        // tuple per world.
        let q = parse_query("select * from (repair key in T weight by w) R").unwrap();
        let FromItem::RepairKey { key, .. } = &q.first.from[0] else { panic!() };
        assert!(key.is_empty());
    }

    #[test]
    fn bare_repair_key_as_query() {
        let q = parse_query("repair key a in T weight by w").unwrap();
        assert!(matches!(&q.first.from[0], FromItem::RepairKey { .. }));
        assert_eq!(q.first.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn repair_key_over_subquery_input() {
        let q = parse_query(
            "select * from (repair key k in (select k, v from T where v > 0) weight by v) R",
        )
        .unwrap();
        let FromItem::RepairKey { input: QueryInput::Select(sub), .. } = &q.first.from[0]
        else {
            panic!("expected repair key over subquery");
        };
        assert!(sub.first.where_clause.is_some());
    }

    #[test]
    fn select_possible() {
        let q = parse_query("select possible Player from R").unwrap();
        assert!(q.first.possible);
        assert!(!q.first.distinct);
    }

    #[test]
    fn aconf_with_arguments() {
        let q = parse_query("select aconf(0.05, 0.01) as p from R group by x").unwrap();
        let SelectItem::Expr { expr: Expr::Func { name, args, .. }, .. } = &q.first.items[0]
        else {
            panic!()
        };
        assert_eq!(name, "aconf");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn esum_ecount_argmax_tconf() {
        let q = parse_query(
            "select esum(salary), ecount(), argmax(player, score), tconf() from R group by team",
        )
        .unwrap();
        let names: Vec<&str> = q.first.items.iter().map(|i| match i {
            SelectItem::Expr { expr: Expr::Func { name, .. }, .. } => name.as_str(),
            _ => panic!(),
        }).collect();
        assert_eq!(names, vec!["esum", "ecount", "argmax", "tconf"]);
    }

    #[test]
    fn union_all_chain_with_order_limit() {
        let q = parse_query(
            "select a from R union all select a from S union select a from T order by a desc limit 5",
        )
        .unwrap();
        assert_eq!(q.rest.len(), 2);
        assert!(q.rest[0].0); // union all
        assert!(!q.rest[1].0); // plain union
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn in_subquery_positive_only() {
        let q = parse_query("select a from R where a in (select b from S)").unwrap();
        assert!(matches!(q.first.where_clause, Some(Expr::InSelect { .. })));
        assert!(parse_query("select a from R where a not in (select b from S)").is_err());
    }

    #[test]
    fn in_list_and_not_in_list() {
        let e = parse_expr("x in (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = parse_expr("x not in (1)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("a + b * c = d and e or not f").unwrap();
        // ((((a + (b*c)) = d) AND e) OR (NOT f))
        assert_eq!(e.to_string(), "((((a + (b * c)) = d) AND e) OR (NOT f))");
    }

    #[test]
    fn unary_minus_folds_literals() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Lit(Lit::Int(-5)));
        assert_eq!(parse_expr("-0.5").unwrap(), Expr::Lit(Lit::Float(-0.5)));
        assert!(matches!(parse_expr("-x").unwrap(), Expr::Neg(_)));
    }

    #[test]
    fn case_and_cast() {
        let e = parse_expr("case when x > 0 then 'pos' else 'neg' end").unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expr("cast(x as double precision)").unwrap();
        assert!(matches!(e, Expr::Cast { type_name, .. } if type_name == "double precision"));
    }

    #[test]
    fn create_insert_update_delete_drop() {
        let s = parse_statement("create table t (a bigint, b double precision, c text)")
            .unwrap();
        assert!(matches!(s, Statement::CreateTable { ref columns, .. } if columns.len() == 3));

        let s = parse_statement("insert into t values (1, 2.5, 'x'), (2, 3.5, 'y')").unwrap();
        assert!(matches!(s, Statement::Insert { source: InsertSource::Values(ref v), .. }
            if v.len() == 2));

        let s = parse_statement("insert into t (a, b) select a, b from s").unwrap();
        assert!(matches!(s, Statement::Insert { columns: Some(ref c), .. } if c.len() == 2));

        let s = parse_statement("update t set a = a + 1 where b > 0").unwrap();
        assert!(matches!(s, Statement::Update { ref assignments, filter: Some(_), .. }
            if assignments.len() == 1));

        let s = parse_statement("delete from t where a = 1").unwrap();
        assert!(matches!(s, Statement::Delete { filter: Some(_), .. }));

        let s = parse_statement("drop table if exists t").unwrap();
        assert!(matches!(s, Statement::Drop { if_exists: true, .. }));
    }

    #[test]
    fn join_on_sugar() {
        let q = parse_query("select * from a join b on a.k = b.k join c on b.j = c.j").unwrap();
        let FromItem::Join { left, .. } = &q.first.from[0] else { panic!() };
        assert!(matches!(**left, FromItem::Join { .. }));
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_statements(
            "create table t (a bigint); insert into t values (1); select a from t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("select a from t xyzzy !").is_err());
        assert!(parse_query("select a from t) oops").is_err());
    }

    #[test]
    fn missing_from_alias_for_subquery_rejected() {
        assert!(parse_query("select x from (select a from t)").is_err());
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_query("select from").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("syntax error"), "{msg}");
    }

    #[test]
    fn non_reserved_keywords_usable_as_identifiers() {
        let q = parse_query("select key, probability, weight from t").unwrap();
        assert_eq!(q.first.items.len(), 3);
    }
}
