//! Hand-written SQL lexer.
//!
//! Handles: identifiers (bare and `"quoted"`), numeric literals (integer,
//! decimal, scientific), string literals with `''` escaping, `--` line
//! comments, `/* */` block comments, and all operator symbols used by the
//! MayBMS query language.

use crate::error::{ParseError, Result};
use crate::token::{Keyword, Spanned, Token};

/// Tokenise `input`, returning tokens with source positions.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1, src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::Lex {
            message: message.into(),
            line: self.line,
            col: self.col,
            snippet: snippet_at(self.src, self.line),
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let token = match c {
                '(' => {
                    self.bump();
                    Token::LParen
                }
                ')' => {
                    self.bump();
                    Token::RParen
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                ';' => {
                    self.bump();
                    Token::Semi
                }
                '.' if !self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                    Token::Dot
                }
                '*' => {
                    self.bump();
                    Token::Star
                }
                '+' => {
                    self.bump();
                    Token::Plus
                }
                '-' => {
                    self.bump();
                    Token::Minus
                }
                '/' => {
                    self.bump();
                    Token::Slash
                }
                '%' => {
                    self.bump();
                    Token::Percent
                }
                '=' => {
                    self.bump();
                    Token::Eq
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            Token::LtEq
                        }
                        Some('>') => {
                            self.bump();
                            Token::Neq
                        }
                        _ => Token::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::GtEq
                    } else {
                        Token::Gt
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Neq
                    } else {
                        return Err(self.error("expected `=` after `!`"));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        Token::Concat
                    } else {
                        return Err(self.error("expected `|` after `|`"));
                    }
                }
                '\'' => self.string_literal()?,
                '"' => self.quoted_ident()?,
                c if c.is_ascii_digit() || c == '.' => self.number()?,
                c if c.is_alphabetic() || c == '_' => self.ident(),
                other => return Err(self.error(format!("unexpected character `{other}`"))),
            };
            out.push(Spanned { token, line, col });
        }
        Ok(out)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string_literal(&mut self) -> Result<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(Token::Str(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn quoted_ident(&mut self) -> Result<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => {
                    if self.peek() == Some('"') {
                        self.bump();
                        s.push('"');
                    } else {
                        return Ok(Token::Ident(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated quoted identifier")),
            }
        }
    }

    fn number(&mut self) -> Result<Token> {
        let mut s = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float {
                is_float = true;
                s.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E') && !s.is_empty() {
                // scientific notation
                is_float = true;
                s.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    s.push(self.bump().expect("peeked"));
                }
            } else {
                break;
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| self.error(format!("invalid numeric literal `{s}`")))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| self.error(format!("integer literal `{s}` out of range")))
        }
    }

    fn ident(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_ident(&s) {
            Some(kw) => Token::Kw(kw),
            None => Token::Ident(s),
        }
    }
}

/// The source line at `line` (1-based), for error snippets.
fn snippet_at(src: &str, line: u32) -> String {
    src.lines().nth(line.saturating_sub(1) as usize).unwrap_or("").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Keyword as K, Token as T};

    fn toks(s: &str) -> Vec<T> {
        lex(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_paper_repair_key_clause() {
        let ts = toks("repair key Player, Init in FT weight by p");
        assert_eq!(
            ts,
            vec![
                T::Kw(K::Repair),
                T::Kw(K::Key),
                T::Ident("Player".into()),
                T::Comma,
                T::Ident("Init".into()),
                T::Kw(K::In),
                T::Ident("FT".into()),
                T::Kw(K::Weight),
                T::Kw(K::By),
                T::Ident("p".into()),
            ]
        );
    }

    #[test]
    fn numbers_int_float_scientific() {
        assert_eq!(toks("42"), vec![T::Int(42)]);
        assert_eq!(toks("0.8"), vec![T::Float(0.8)]);
        assert_eq!(toks(".5"), vec![T::Float(0.5)]);
        assert_eq!(toks("1e-3"), vec![T::Float(1e-3)]);
        assert_eq!(toks("2.5E2"), vec![T::Float(250.0)]);
    }

    #[test]
    fn dot_vs_decimal() {
        assert_eq!(
            toks("R1.Player"),
            vec![T::Ident("R1".into()), T::Dot, T::Ident("Player".into())]
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(toks("'it''s'"), vec![T::Str("it's".into())]);
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(toks(r#""Weird Name""#), vec![T::Ident("Weird Name".into())]);
        assert_eq!(toks(r#""a""b""#), vec![T::Ident("a\"b".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("1 -- comment\n2"), vec![T::Int(1), T::Int(2)]);
        assert_eq!(toks("1 /* multi\nline */ 2"), vec![T::Int(1), T::Int(2)]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= <> != = || %"),
            vec![T::LtEq, T::GtEq, T::Neq, T::Neq, T::Eq, T::Concat, T::Percent]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn stray_bang_is_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn positions_reported() {
        let ts = lex("select\n  x").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn conf_is_identifier_not_keyword() {
        assert_eq!(toks("conf"), vec![T::Ident("conf".into())]);
    }
}
