//! Parser and lexer errors.

use std::fmt;

/// Error from lexing or parsing MayBMS SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Lexical error.
    Lex {
        /// What went wrong.
        message: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
        /// The offending source line.
        snippet: String,
    },
    /// Syntax error.
    Syntax {
        /// What went wrong (usually "expected X, found Y").
        message: String,
        /// 1-based source line (0 when at end of input).
        line: u32,
        /// 1-based source column (0 when at end of input).
        col: u32,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex { message, line, col, snippet } => {
                writeln!(f, "lex error at {line}:{col}: {message}")?;
                write!(f, "  | {snippet}")
            }
            ParseError::Syntax { message, line: 0, col: 0 } => {
                write!(f, "syntax error at end of input: {message}")
            }
            ParseError::Syntax { message, line, col } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for the SQL frontend.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_snippet() {
        let e = ParseError::Lex {
            message: "bad char".into(),
            line: 2,
            col: 7,
            snippet: "select $x".into(),
        };
        let s = e.to_string();
        assert!(s.contains("2:7"));
        assert!(s.contains("select $x"));
    }

    #[test]
    fn end_of_input_formatting() {
        let e = ParseError::Syntax { message: "expected FROM".into(), line: 0, col: 0 };
        assert!(e.to_string().contains("end of input"));
    }
}
