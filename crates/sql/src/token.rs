//! Token types produced by the lexer.

use std::fmt;

/// SQL keywords, including the MayBMS uncertainty extensions (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is the keyword it names
pub enum Keyword {
    All,
    Analyze,
    And,
    As,
    Asc,
    By,
    Case,
    Cast,
    Create,
    Delete,
    Desc,
    Distinct,
    Drop,
    Else,
    End,
    Exists,
    Explain,
    False,
    From,
    Group,
    Having,
    If,
    In,
    Independently,
    Insert,
    Into,
    Is,
    Join,
    Key,
    Limit,
    Not,
    Null,
    On,
    Or,
    Order,
    Pick,
    Possible,
    Probability,
    Repair,
    Select,
    Set,
    Table,
    Then,
    True,
    Tuples,
    Union,
    Update,
    Values,
    Weight,
    When,
    Where,
    With,
}

impl Keyword {
    /// Parse an identifier into a keyword, case-insensitively.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        let kw = match s.to_ascii_uppercase().as_str() {
            "ALL" => All,
            "ANALYZE" => Analyze,
            "AND" => And,
            "AS" => As,
            "ASC" => Asc,
            "BY" => By,
            "CASE" => Case,
            "CAST" => Cast,
            "CREATE" => Create,
            "DELETE" => Delete,
            "DESC" => Desc,
            "DISTINCT" => Distinct,
            "DROP" => Drop,
            "ELSE" => Else,
            "END" => End,
            "EXISTS" => Exists,
            "EXPLAIN" => Explain,
            "FALSE" => False,
            "FROM" => From,
            "GROUP" => Group,
            "HAVING" => Having,
            "IF" => If,
            "IN" => In,
            "INDEPENDENTLY" => Independently,
            "INSERT" => Insert,
            "INTO" => Into,
            "IS" => Is,
            "JOIN" => Join,
            "KEY" => Key,
            "LIMIT" => Limit,
            "NOT" => Not,
            "NULL" => Null,
            "ON" => On,
            "OR" => Or,
            "ORDER" => Order,
            "PICK" => Pick,
            "POSSIBLE" => Possible,
            "PROBABILITY" => Probability,
            "REPAIR" => Repair,
            "SELECT" => Select,
            "SET" => Set,
            "TABLE" => Table,
            "THEN" => Then,
            "TRUE" => True,
            "TUPLES" => Tuples,
            "UNION" => Union,
            "UPDATE" => Update,
            "VALUES" => Values,
            "WEIGHT" => Weight,
            "WHEN" => When,
            "WHERE" => Where,
            "WITH" => With,
            _ => return None,
        };
        Some(kw)
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:?}").to_ascii_uppercase())
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword.
    Kw(Keyword),
    /// Identifier (unquoted, case-preserved; or quoted with `"`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||`
    Concat,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Kw(k) => write!(f, "{k}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Semi => f.write_str(";"),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Concat => f.write_str("||"),
        }
    }
}

/// A token with its source position (1-based line/column) for errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_case_insensitive() {
        assert_eq!(Keyword::from_ident("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("RePaIr"), Some(Keyword::Repair));
        assert_eq!(Keyword::from_ident("conf"), None); // conf is a function, not keyword
        assert_eq!(Keyword::from_ident("player"), None);
    }

    #[test]
    fn keyword_display_uppercase() {
        assert_eq!(Keyword::Select.to_string(), "SELECT");
        assert_eq!(Keyword::Independently.to_string(), "INDEPENDENTLY");
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Str("a'b".into()).to_string(), "'a'b'");
        assert_eq!(Token::Neq.to_string(), "<>");
    }
}
