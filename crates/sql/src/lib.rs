//! # maybms-sql — the MayBMS query language frontend
//!
//! The MayBMS query language "extends SQL with uncertainty-aware
//! constructs" (§2.2). This crate provides the lexer, AST, and
//! recursive-descent parser for that language:
//!
//! * `repair key <attrs> in <t-certain-query> [weight by <expr>]`
//! * `pick tuples from <t-certain-query> [independently] [with probability <expr>]`
//! * confidence aggregates `conf()`, `aconf(ε, δ)`, `tconf()`
//! * `select possible …`
//! * expectation aggregates `esum(e)`, `ecount([e])`
//! * `argmax(arg, value)`
//! * plus the standard SQL subset MayBMS inherits: select/from/where/
//!   group by/having/union/order by/limit, create table (as), insert,
//!   update, delete, drop.
//!
//! The two query programs in the paper's Figure 1 parse verbatim.
//!
//! ```
//! use maybms_sql::parse_statement;
//!
//! let stmt = parse_statement(
//!     "select R1.Player, R2.Final as State, conf() as p from \
//!      (repair key Player, Init in FT2 weight by p) R1, \
//!      (repair key Player, Init in FT weight by p) R2 \
//!      where R1.Final = R2.Init and R1.Player = R2.Player \
//!      group by R1.player, R2.Final;",
//! )
//! .unwrap();
//! // Every AST node prints back to valid SQL:
//! assert!(stmt.to_string().starts_with("SELECT R1.Player"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    BinOp, ColumnDef, Expr, FromItem, InsertSource, Lit, OrderKey, Query, QueryInput, Select,
    SelectItem, Statement,
};
pub use error::{ParseError, Result};
pub use parser::{parse_expr, parse_query, parse_statement, parse_statements};
