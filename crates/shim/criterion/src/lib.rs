//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! No network access in the build environment, so this workspace vendors
//! the subset of criterion it uses: `criterion_group!` / `criterion_main!`,
//! benchmark groups with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_with_input` with a [`BenchmarkId`], and
//! [`Bencher::iter`]. Timing is a plain median-of-samples wall-clock
//! measurement printed to stdout — no statistics engine, no HTML reports —
//! which is enough for the `exp_*` experiment binaries and for CI smoke
//! runs that only need the benches to build and execute.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver (holds global defaults).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }
}

/// Identifier of one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter (anything printable).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: name.into(), parameter: parameter.to_string() }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling here is count-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; one untimed warm-up run is used.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        let label = format!("{}/{}/{}", self.name, id.name, id.parameter);
        match median(&mut bencher.samples) {
            Some(m) => println!("{label:<60} {:>12.3} ms", m * 1e3),
            None => println!("{label:<60} {:>12}", "no samples"),
        }
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn median(samples: &mut [f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    Some(samples[samples.len() / 2])
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// Declare a benchmark group function from `fn(&mut Criterion)` items.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_expand() {
        benches();
    }
}
