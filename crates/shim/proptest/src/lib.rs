//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of proptest its test suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_filter` /
//! `prop_recursive`, [`prop_oneof!`], [`strategy::Just`], integer-range and
//! regex-literal strategies, `prop::collection::vec`, `prop::sample`,
//! `prop::option`, [`arbitrary::any`], and `prop_assert!` /
//! [`prop_assert_eq!`].
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case panics with the formatted assertion
//!   message; inputs are deterministic per test name, so failures
//!   reproduce exactly on re-run.
//! * **Regex strategies** support the subset appearing in this repo:
//!   literal characters, `[...]` classes with ranges, `\PC` (printable),
//!   and `{m,n}` counted repetition.
//! * Generation is depth-bounded instead of size-driven; `prop_recursive`
//!   halves the recursion probability per level.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG, and failure plumbing used by the [`crate::proptest!`]
    //! macro.

    use std::fmt;

    /// Per-`proptest!` configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => f.write_str(m),
            }
        }
    }

    /// Deterministic generator driving all strategies (xorshift*,
    /// seeded from the test name so each property gets its own stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (stable across runs).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "TestRng::below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use std::marker::PhantomData;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing the predicate (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        /// Recursive strategies: `f` receives the strategy for the inner
        /// level and returns the strategy for one level up; recursion
        /// probability halves per level and stops at `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.boxed();
            for _ in 0..depth.max(1) {
                let leaf = current.clone();
                let deeper = f(current).boxed();
                current = Union::new(vec![leaf, deeper]).boxed();
            }
            current
        }

        /// Type-erase (cheap to clone; strategies are shared by `Rc`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: gave up after 1000 rejections ({})", self.whence);
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from alternatives (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof of zero strategies");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let x = rng.next_u64() as u128 % span;
                    (self.start as i128 + x as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let x = rng.next_u64() as u128 % span;
                    (lo as i128 + x as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// String strategy from a regex-subset pattern (see crate docs).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    /// Marker so `any::<T>()` can be written generically.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the default strategy per type.

    use std::marker::PhantomData;

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical random generator.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index { raw: rng.next_u64() as usize }
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-lo / exclusive-hi element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let n = self.size.lo + rng.below(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample` — choosing among known values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    /// Output of [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// A length-agnostic random index (`any::<Index>()` then
    /// `idx.index(len)`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: usize,
    }

    impl Index {
        /// Project onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            self.raw % len
        }
    }
}

pub mod option {
    //! `prop::option` — optional values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Regex-subset string generation for `&str` strategies.
    //!
    //! Supports exactly the constructs used by this repo's tests:
    //! literals, `[...]` classes (with `a-z` ranges), `\PC` (any printable
    //! character), and `{m,n}` / `{m}` counted repetition.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().expect("unterminated [class]");
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let hi = chars.next().unwrap();
                                let lo = prev.take().unwrap();
                                ranges.pop();
                                ranges.push((lo, hi));
                            }
                            _ => {
                                prev = Some(c);
                                ranges.push((c, c));
                            }
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next().expect("dangling backslash") {
                    'P' => {
                        // `\PC` — any non-control character.
                        let tag = chars.next().expect("\\P needs a category");
                        assert_eq!(tag, 'C', "only \\PC is supported");
                        Atom::Printable
                    }
                    escaped => Atom::Literal(escaped),
                },
                _ => Atom::Literal(c),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n}"),
                        hi.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {m}");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    const PRINTABLE_EXTRA: &[char] =
        &['é', 'λ', '中', '↦', '⊤', '∧', '😀', '\u{00A0}', 'Ω', 'ß'];

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + (rng.next_u64() % u64::from(span)) as u32)
                    .expect("class range within valid chars")
            }
            Atom::Printable => {
                // Mostly ASCII printable, occasionally wider unicode.
                if rng.below(8) == 0 {
                    PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len())]
                } else {
                    char::from_u32(0x20 + (rng.next_u64() % 0x5f) as u32).unwrap()
                }
            }
        }
    }

    /// Generate a string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let span = piece.max - piece.min + 1;
            let n = piece.min + rng.below(span.max(1));
            for _ in 0..n {
                out.push(gen_char(&piece.atom, rng));
            }
        }
        out
    }
}

/// Everything test files import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a property; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)*)
                );
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut rng,
                        );)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e,
                    );
                }
            }
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` runs
/// `cases` times over fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 0i64..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuple_and_map(p in arb_pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((0..19).contains(&p));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u16..3, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in v {
                prop_assert!(x < 3);
            }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1i64), Just(2i64), 10i64..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        #[test]
        fn filter_works(x in (0i64..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn regex_class(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn regex_printable(s in "\\PC{0,60}", idx in any::<prop::sample::Index>()) {
            prop_assert!(s.chars().count() <= 60);
            prop_assert!(s.chars().all(|c| !c.is_control()));
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn select_and_option(
            w in prop::sample::select(vec!["a", "b"]),
            o in prop::option::of(0i64..3),
        ) {
            prop_assert!(w == "a" || w == "b");
            if let Some(x) = o {
                prop_assert!((0..3).contains(&x));
            }
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4, "depth {}", depth(&t));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0i64..10) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
