//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *exact* API surface it consumes from `rand 0.8`: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen` / `gen_range` over the integer and float ranges the workloads
//! draw from. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic in the seed, which is all the workload generators and
//! Monte Carlo tests require.
//!
//! Not a cryptographic RNG; not a statistics-grade uniform sampler
//! (`gen_range` uses modulo reduction). Both are fine for seeded test
//! workloads and are documented here so nobody mistakes this for the real
//! crate.

#![forbid(unsafe_code)]

/// Core source of randomness: 64 random bits at a time (object-safe).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`].
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange<T>`, so integer literals
/// infer their type from the call site).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = rng.next_u64() as u128 % span;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::from_rng(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform `[0, 1)` for `f64`).
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; same name so call sites compile unchanged).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
