//! # maybms-gov — statement lifecycle control (the query governor)
//!
//! A single misbehaving statement must not take the engine with it: this
//! crate provides per-statement **cancellation**, **deadlines**, and
//! **memory budgets**, checked cooperatively at the engine's natural
//! yield points (every morsel boundary in `maybms-pipe`, every Monte
//! Carlo sample batch and d-tree node in `maybms-conf`) and surfaced as
//! typed [`GovError`]s that unwind cleanly through the ordinary error
//! channels.
//!
//! ## Design
//!
//! Statements on a database execute serially (`&mut self`), so the
//! governor keeps its state in **process-wide atomics** — the same
//! pattern as the `maybms-obs` metrics registry — instead of threading a
//! context handle through every operator signature. A
//! [`StatementGuard`] (created by [`begin_statement`] in `core::db`)
//! installs the session's armed limits on entry and clears them on drop,
//! panic included.
//!
//! The cost contract when no limit is armed is **one relaxed atomic
//! load per checkpoint** ([`check`] fast-path) — enforced by the CI
//! `--assert-overhead` gates, which run with the governor compiled in
//! and limits disabled. Memory accounting is a relaxed-atomic byte
//! tally charged/credited at *allocation events* (chunk seals, hash
//! table builds, group opens), never per row; it tracks operator
//! working memory (batch builders, join build tables, group tables),
//! not retained query results.
//!
//! ## Abort safety
//!
//! A governor abort leaves the catalog bit-identical to the
//! pre-statement state: mutations go through the WAL commit protocol
//! (log, then apply), and `core::db` checks the governor immediately
//! before logging — an abort always happens *before* the commit point,
//! never between log and apply. The cancellation-point matrix test
//! (`tests/cancel_matrix.rs`) injects aborts at every checkpoint and
//! asserts the store fingerprint is unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Sentinel for "no limit" in the nanosecond/byte atomics.
const OFF: u64 = u64::MAX;

/// Typed governor abort, raised at a cooperative checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GovError {
    /// The statement's cancel token was fired (`\cancel` watchdog or a
    /// programmatic [`CancelToken::cancel`]).
    Cancelled,
    /// The statement ran past its deadline (`\timeout N`,
    /// `MAYBMS_STATEMENT_TIMEOUT_MS`).
    DeadlineExceeded {
        /// The armed limit, for the message.
        limit_ms: u64,
    },
    /// The tracked working-memory tally exceeded the budget
    /// (`\memlimit N`, `MAYBMS_MEM_BUDGET_MB`).
    MemBudgetExceeded {
        /// Tally at the failing checkpoint, in bytes.
        used_bytes: u64,
        /// The armed budget, in bytes.
        budget_bytes: u64,
    },
}

impl fmt::Display for GovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovError::Cancelled => write!(f, "statement cancelled"),
            GovError::DeadlineExceeded { limit_ms } => {
                write!(f, "statement deadline exceeded ({limit_ms} ms)")
            }
            GovError::MemBudgetExceeded { used_bytes, budget_bytes } => write!(
                f,
                "statement memory budget exceeded ({used_bytes} bytes charged, \
                 budget {budget_bytes} bytes)"
            ),
        }
    }
}

impl std::error::Error for GovError {}

/// Which abort the test-hook injection should raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// Inject [`GovError::Cancelled`].
    Cancel,
    /// Inject [`GovError::DeadlineExceeded`].
    Deadline,
    /// Inject [`GovError::MemBudgetExceeded`].
    MemBudget,
}

// ---------------------------------------------------------------------
// Process-wide governor state
// ---------------------------------------------------------------------

/// Fast-path gate: true iff a statement is live AND at least one limit
/// (or the test injection hook) is armed. The *only* load on the
/// disabled path.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Cancellation flag of the live statement.
static CANCEL: AtomicBool = AtomicBool::new(false);

/// Absolute deadline in [`maybms_obs::monotonic_nanos`] time (OFF = none).
static DEADLINE_NANOS: AtomicU64 = AtomicU64::new(OFF);
/// The armed limit in ms, for the error message and EXPLAIN slack line.
static DEADLINE_LIMIT_MS: AtomicU64 = AtomicU64::new(0);

/// Armed budget in bytes for the live statement (OFF = none).
static MEM_BUDGET: AtomicU64 = AtomicU64::new(OFF);
/// Live working-memory tally in bytes (always on; see module docs).
static MEM_USED: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `MEM_USED` since the last [`begin_statement`].
static MEM_PEAK: AtomicU64 = AtomicU64::new(0);
/// `MEM_USED` at [`begin_statement`], so the peak can be reported
/// relative to the statement's own start.
static MEM_BASE: AtomicU64 = AtomicU64::new(0);

/// Statement generation: bumped on every install and drop so a stale
/// `\cancel` watchdog (or token) cannot cancel a *later* statement.
static STMT_EPOCH: AtomicU64 = AtomicU64::new(0);

// Session-level settings (apply to every subsequent statement).
static TIMEOUT_MS: AtomicU64 = AtomicU64::new(OFF);
static BUDGET_BYTES: AtomicU64 = AtomicU64::new(OFF);
/// One-shot `\cancel` delay for the *next* statement (OFF = not armed).
static ARMED_CANCEL_MS: AtomicU64 = AtomicU64::new(OFF);

// Test hook: fail the Nth checkpoint with `INJECT_KIND`.
static INJECT_AFTER: AtomicU64 = AtomicU64::new(OFF);
static INJECT_KIND: AtomicU64 = AtomicU64::new(0);
static INJECT_FIRED: AtomicBool = AtomicBool::new(false);

static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Load `MAYBMS_STATEMENT_TIMEOUT_MS` / `MAYBMS_MEM_BUDGET_MB` into the
/// session settings, once per process (`0` or unparsable = off).
/// Explicit setters below override.
fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.trim().parse::<u64>().ok()).filter(|&n| n > 0)
        };
        if let Some(ms) = parse("MAYBMS_STATEMENT_TIMEOUT_MS") {
            TIMEOUT_MS.store(ms, Ordering::Relaxed);
        }
        if let Some(mb) = parse("MAYBMS_MEM_BUDGET_MB") {
            BUDGET_BYTES.store(mb.saturating_mul(1 << 20), Ordering::Relaxed);
        }
    });
}

// ---------------------------------------------------------------------
// Session settings (shell knobs / env)
// ---------------------------------------------------------------------

/// Set or clear the per-statement deadline applied to every subsequent
/// statement (the shell's `\timeout N|off`).
pub fn set_statement_timeout_ms(ms: Option<u64>) {
    init_from_env();
    TIMEOUT_MS.store(ms.filter(|&n| n > 0).unwrap_or(OFF), Ordering::Relaxed);
}

/// The session statement deadline, if armed.
pub fn statement_timeout_ms() -> Option<u64> {
    init_from_env();
    match TIMEOUT_MS.load(Ordering::Relaxed) {
        OFF => None,
        ms => Some(ms),
    }
}

/// Set or clear the session memory budget in mebibytes (the shell's
/// `\memlimit N|off`).
pub fn set_mem_budget_mb(mb: Option<u64>) {
    init_from_env();
    BUDGET_BYTES
        .store(mb.filter(|&n| n > 0).map(|n| n.saturating_mul(1 << 20)).unwrap_or(OFF), Ordering::Relaxed);
}

/// The session memory budget in bytes, if armed.
pub fn mem_budget_bytes() -> Option<u64> {
    init_from_env();
    match BUDGET_BYTES.load(Ordering::Relaxed) {
        OFF => None,
        b => Some(b),
    }
}

/// Arm a one-shot cancellation of the **next** statement, fired by a
/// watchdog thread `delay_ms` after the statement begins (the shell's
/// `\cancel [N]`).
pub fn arm_cancel(delay_ms: u64) {
    ARMED_CANCEL_MS.store(delay_ms, Ordering::Relaxed);
}

/// The armed one-shot cancel delay, if any (for the banner/`\help`).
pub fn armed_cancel_ms() -> Option<u64> {
    match ARMED_CANCEL_MS.load(Ordering::Relaxed) {
        OFF => None,
        ms => Some(ms),
    }
}

// ---------------------------------------------------------------------
// Statement lifecycle
// ---------------------------------------------------------------------

/// The limits a [`StatementGuard`] installed — what `core::db` reports
/// in EXPLAIN ANALYZE and classification.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecLimits {
    /// Armed deadline, ms.
    pub deadline_ms: Option<u64>,
    /// Armed budget, bytes.
    pub mem_budget_bytes: Option<u64>,
    /// One-shot cancel watchdog delay armed for this statement, ms.
    pub cancel_after_ms: Option<u64>,
}

/// A handle that can cancel the statement it was issued for (and only
/// that statement — a fired token for a finished statement is a no-op).
#[derive(Debug, Clone)]
pub struct CancelToken {
    epoch: u64,
}

impl CancelToken {
    /// Cancel the statement this token belongs to, if it is still live.
    pub fn cancel(&self) {
        if STMT_EPOCH.load(Ordering::Acquire) == self.epoch {
            CANCEL.store(true, Ordering::Relaxed);
            // Make the checkpoints look: a mid-statement cancel must be
            // seen even when no other limit was armed at install time.
            ACTIVE.store(true, Ordering::Release);
        }
    }
}

/// RAII scope of one statement's governor state. Created by
/// [`begin_statement`]; drop (normal return, error, or panic unwind)
/// clears every per-statement limit.
#[derive(Debug)]
pub struct StatementGuard {
    limits: ExecLimits,
    epoch: u64,
}

/// Install the session's armed limits for one statement. Resets the
/// statement-peak tally, consumes a pending `\cancel` arming (spawning
/// its watchdog thread), and returns the RAII guard.
pub fn begin_statement() -> StatementGuard {
    init_from_env();
    let epoch = STMT_EPOCH.fetch_add(1, Ordering::AcqRel) + 1;
    CANCEL.store(false, Ordering::Relaxed);
    INJECT_FIRED.store(false, Ordering::Relaxed);
    let base = MEM_USED.load(Ordering::Relaxed);
    MEM_BASE.store(base, Ordering::Relaxed);
    MEM_PEAK.store(base, Ordering::Relaxed);

    let timeout = TIMEOUT_MS.load(Ordering::Relaxed);
    let budget = BUDGET_BYTES.load(Ordering::Relaxed);
    let armed_cancel = ARMED_CANCEL_MS.swap(OFF, Ordering::Relaxed);

    let mut limits = ExecLimits::default();
    if timeout != OFF {
        limits.deadline_ms = Some(timeout);
        DEADLINE_LIMIT_MS.store(timeout, Ordering::Relaxed);
        DEADLINE_NANOS.store(
            maybms_obs::monotonic_nanos().saturating_add(timeout.saturating_mul(1_000_000)),
            Ordering::Relaxed,
        );
    } else {
        DEADLINE_NANOS.store(OFF, Ordering::Relaxed);
    }
    MEM_BUDGET.store(budget, Ordering::Relaxed);
    if budget != OFF {
        limits.mem_budget_bytes = Some(budget);
    }
    if armed_cancel != OFF {
        limits.cancel_after_ms = Some(armed_cancel);
        let token = CancelToken { epoch };
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(armed_cancel));
            token.cancel();
        });
    }
    let armed = limits.deadline_ms.is_some()
        || limits.mem_budget_bytes.is_some()
        || limits.cancel_after_ms.is_some()
        || INJECT_AFTER.load(Ordering::Relaxed) != OFF;
    ACTIVE.store(armed, Ordering::Release);
    StatementGuard { limits, epoch }
}

impl StatementGuard {
    /// The limits this guard installed.
    pub fn limits(&self) -> ExecLimits {
        self.limits
    }

    /// A token that cancels this statement (and no other).
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken { epoch: self.epoch }
    }

    /// Nanoseconds left until this statement's deadline (negative when
    /// already past it); `None` when no deadline is armed.
    pub fn deadline_slack_nanos(&self) -> Option<i64> {
        match DEADLINE_NANOS.load(Ordering::Relaxed) {
            OFF => None,
            dl => Some(dl as i64 - maybms_obs::monotonic_nanos() as i64),
        }
    }
}

impl Drop for StatementGuard {
    fn drop(&mut self) {
        // Disarm everything statement-scoped. Epoch bump first so a
        // racing watchdog observes the statement as finished.
        STMT_EPOCH.fetch_add(1, Ordering::AcqRel);
        ACTIVE.store(false, Ordering::Release);
        CANCEL.store(false, Ordering::Relaxed);
        DEADLINE_NANOS.store(OFF, Ordering::Relaxed);
        MEM_BUDGET.store(OFF, Ordering::Relaxed);
        INJECT_FIRED.store(false, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Cooperative checkpoints
// ---------------------------------------------------------------------

/// The cooperative checkpoint, called at every morsel boundary, sample
/// batch, and d-tree node. With no limit armed this is one relaxed
/// atomic load (the CI overhead gates hold the governor to that).
#[inline]
pub fn check() -> Result<(), GovError> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    check_armed()
}

/// Amortised cooperative checkpoint for per-output-row loops.
///
/// Boundary checks (morsel, sample batch, d-tree node) are not enough
/// for loops whose output is unbounded in their *input* sizes — a cross
/// product expands two in-RAM relations into something that may never
/// fit, all inside one boundary. Embed a `Ticker` in such a loop and
/// call [`Ticker::tick`] once per output row: every
/// [`Ticker::EVERY`]th call runs a real [`check`], the rest are a
/// branch-predictable counter bump.
#[derive(Default)]
pub struct Ticker(u32);

impl Ticker {
    /// Output rows between real [`check`]s.
    pub const EVERY: u32 = 1024;

    /// A fresh ticker (first real check after [`Ticker::EVERY`] ticks).
    pub fn new() -> Ticker {
        Ticker(0)
    }

    /// Count one output row; run [`check`] on every `EVERY`th call.
    #[inline]
    pub fn tick(&mut self) -> Result<(), GovError> {
        self.0 += 1;
        if self.0 >= Ticker::EVERY {
            self.0 = 0;
            check()?;
        }
        Ok(())
    }
}

/// True iff the live statement's deadline has passed — the degraded-mode
/// probe `aconf` uses to cut its sample stream without erroring. One
/// relaxed load when no deadline is armed.
#[inline]
pub fn deadline_exceeded() -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    // The injection hook maps Deadline aborts onto this probe too, so
    // the cancellation matrix exercises the degraded path.
    if inject_tick() == Some(AbortKind::Deadline) {
        return true;
    }
    match DEADLINE_NANOS.load(Ordering::Relaxed) {
        OFF => false,
        dl => maybms_obs::monotonic_nanos() >= dl,
    }
}

#[cold]
fn check_armed() -> Result<(), GovError> {
    if let Some(kind) = inject_tick() {
        return Err(match kind {
            AbortKind::Cancel => GovError::Cancelled,
            AbortKind::Deadline => {
                GovError::DeadlineExceeded { limit_ms: DEADLINE_LIMIT_MS.load(Ordering::Relaxed) }
            }
            AbortKind::MemBudget => GovError::MemBudgetExceeded {
                used_bytes: MEM_USED.load(Ordering::Relaxed),
                budget_bytes: MEM_BUDGET.load(Ordering::Relaxed),
            },
        });
    }
    if CANCEL.load(Ordering::Relaxed) {
        return Err(GovError::Cancelled);
    }
    let dl = DEADLINE_NANOS.load(Ordering::Relaxed);
    if dl != OFF && maybms_obs::monotonic_nanos() >= dl {
        return Err(GovError::DeadlineExceeded {
            limit_ms: DEADLINE_LIMIT_MS.load(Ordering::Relaxed),
        });
    }
    let budget = MEM_BUDGET.load(Ordering::Relaxed);
    if budget != OFF {
        let used = MEM_USED.load(Ordering::Relaxed).saturating_sub(MEM_BASE.load(Ordering::Relaxed));
        if used > budget {
            return Err(GovError::MemBudgetExceeded { used_bytes: used, budget_bytes: budget });
        }
    }
    Ok(())
}

/// Advance the injection countdown by one checkpoint; returns the kind
/// to raise once the Nth checkpoint has been reached (sticky until the
/// statement ends, like a real cancellation).
fn inject_tick() -> Option<AbortKind> {
    let armed = INJECT_AFTER.load(Ordering::Relaxed);
    if armed == OFF {
        return None;
    }
    let kind = match INJECT_KIND.load(Ordering::Relaxed) {
        0 => AbortKind::Cancel,
        1 => AbortKind::Deadline,
        _ => AbortKind::MemBudget,
    };
    if INJECT_FIRED.load(Ordering::Relaxed) {
        return Some(kind);
    }
    let fired = INJECT_AFTER
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            if v == OFF || v == 0 {
                None
            } else {
                Some(v - 1)
            }
        })
        .map(|prev| prev == 1)
        .unwrap_or(false);
    if fired {
        INJECT_FIRED.store(true, Ordering::Relaxed);
        return Some(kind);
    }
    None
}

// ---------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------

/// Charge `bytes` of operator working memory to the tally.
#[inline]
pub fn charge(bytes: usize) {
    let used = MEM_USED.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    MEM_PEAK.fetch_max(used, Ordering::Relaxed);
}

/// Credit `bytes` back (the charging allocation was dropped).
#[inline]
pub fn credit(bytes: usize) {
    MEM_USED.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Live tracked working memory, bytes.
pub fn mem_used_bytes() -> u64 {
    MEM_USED.load(Ordering::Relaxed)
}

/// Peak tracked working memory charged since the current statement
/// began, relative to its start (bytes).
pub fn statement_peak_bytes() -> u64 {
    MEM_PEAK.load(Ordering::Relaxed).saturating_sub(MEM_BASE.load(Ordering::Relaxed))
}

/// Nanoseconds left until the live statement's deadline (negative when
/// already past it); `None` when no deadline is armed. The free-function
/// twin of [`StatementGuard::deadline_slack_nanos`] for reporting code
/// that runs under the guard without holding it (`EXPLAIN ANALYZE`).
pub fn deadline_slack_nanos() -> Option<i64> {
    match DEADLINE_NANOS.load(Ordering::Relaxed) {
        OFF => None,
        dl => Some(dl as i64 - maybms_obs::monotonic_nanos() as i64),
    }
}

/// An RAII tally of working memory: [`MemCharge::add`] charges, drop
/// credits everything charged. Embed one per tracked structure
/// (`TupleBatch`, `ColumnBuilder`, `BuildTable`, `GroupTable`).
#[derive(Debug, Default)]
pub struct MemCharge {
    bytes: u64,
}

impl MemCharge {
    /// An empty tally.
    pub fn new() -> MemCharge {
        MemCharge::default()
    }

    /// Charge `bytes` more against the budget.
    #[inline]
    pub fn add(&mut self, bytes: usize) {
        charge(bytes);
        self.bytes += bytes as u64;
    }

    /// Bytes this tally currently holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        if self.bytes > 0 {
            MEM_USED.fetch_sub(self.bytes, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Test hooks
// ---------------------------------------------------------------------

/// Fault-injection hooks for the cancellation-point matrix: arm an abort
/// at the Nth cooperative checkpoint of the next statement.
pub mod testing {
    use super::*;

    /// Arm the injection: the `nth` checkpoint (1-based) of the next
    /// statement raises `kind`, and every later checkpoint of that
    /// statement keeps raising it (sticky, like a real cancel).
    pub fn abort_at_checkpoint(nth: u64, kind: AbortKind) {
        INJECT_KIND.store(
            match kind {
                AbortKind::Cancel => 0,
                AbortKind::Deadline => 1,
                AbortKind::MemBudget => 2,
            },
            Ordering::Relaxed,
        );
        INJECT_FIRED.store(false, Ordering::Relaxed);
        INJECT_AFTER.store(nth.max(1), Ordering::Relaxed);
    }

    /// Disarm the injection hook.
    pub fn clear() {
        INJECT_AFTER.store(OFF, Ordering::Relaxed);
        INJECT_FIRED.store(false, Ordering::Relaxed);
    }

    /// Checkpoints left before the armed injection fires (`None` when
    /// disarmed). A full statement run that leaves this above zero
    /// means the sweep has passed the statement's last checkpoint.
    pub fn remaining() -> Option<u64> {
        match INJECT_AFTER.load(Ordering::Relaxed) {
            OFF => None,
            n => Some(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Governor state is process-global; tests in this module serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_checkpoints_are_free_and_ok() {
        let _l = LOCK.lock().unwrap();
        set_statement_timeout_ms(None);
        set_mem_budget_mb(None);
        let g = begin_statement();
        assert!(g.limits().deadline_ms.is_none());
        assert!(check().is_ok());
        assert!(!deadline_exceeded());
        drop(g);
        assert!(check().is_ok());
    }

    #[test]
    fn deadline_fires_and_clears_on_drop() {
        let _l = LOCK.lock().unwrap();
        set_statement_timeout_ms(Some(1));
        let g = begin_statement();
        assert_eq!(g.limits().deadline_ms, Some(1));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(matches!(check(), Err(GovError::DeadlineExceeded { limit_ms: 1 })));
        assert!(deadline_exceeded());
        assert!(g.deadline_slack_nanos().unwrap() < 0);
        drop(g);
        assert!(check().is_ok());
        set_statement_timeout_ms(None);
    }

    #[test]
    fn cancel_token_is_epoch_scoped() {
        let _l = LOCK.lock().unwrap();
        set_statement_timeout_ms(None);
        set_mem_budget_mb(None);
        let g = begin_statement();
        let token = g.cancel_token();
        token.cancel();
        assert_eq!(check(), Err(GovError::Cancelled));
        drop(g);
        // A stale token must not touch the next statement.
        let g2 = begin_statement();
        token.cancel();
        assert!(check().is_ok());
        drop(g2);
    }

    #[test]
    fn mem_budget_counts_statement_relative_charges() {
        let _l = LOCK.lock().unwrap();
        set_mem_budget_mb(Some(1));
        let g = begin_statement();
        assert!(check().is_ok());
        let mut c = MemCharge::new();
        c.add(2 << 20);
        let err = check().unwrap_err();
        assert!(matches!(err, GovError::MemBudgetExceeded { .. }));
        assert!(statement_peak_bytes() >= 2 << 20);
        drop(c);
        assert!(check().is_ok(), "credit on drop clears the overage");
        drop(g);
        set_mem_budget_mb(None);
    }

    #[test]
    fn injection_fires_at_the_nth_checkpoint_and_is_sticky() {
        let _l = LOCK.lock().unwrap();
        testing::abort_at_checkpoint(3, AbortKind::Cancel);
        let g = begin_statement();
        assert!(check().is_ok());
        assert!(check().is_ok());
        assert_eq!(check(), Err(GovError::Cancelled));
        assert_eq!(check(), Err(GovError::Cancelled), "sticky until statement end");
        drop(g);
        testing::clear();
        let g = begin_statement();
        assert!(check().is_ok());
        drop(g);
    }

    #[test]
    fn armed_cancel_watchdog_cancels_only_its_statement() {
        let _l = LOCK.lock().unwrap();
        arm_cancel(1);
        assert_eq!(armed_cancel_ms(), Some(1));
        let g = begin_statement();
        assert_eq!(g.limits().cancel_after_ms, Some(1));
        assert_eq!(armed_cancel_ms(), None, "arming is one-shot");
        let t0 = std::time::Instant::now();
        loop {
            if check().is_err() {
                break;
            }
            assert!(t0.elapsed().as_secs() < 5, "watchdog never fired");
            std::thread::yield_now();
        }
        drop(g);
        let g2 = begin_statement();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(check().is_ok(), "watchdog does not leak into the next statement");
        drop(g2);
    }
}
