//! # maybms-par — a vendored threadpool for deterministic parallel execution
//!
//! The build environment has no network access, so rayon cannot be a
//! crates.io dependency; this crate is the workspace's std-only stand-in,
//! sized to what the engine actually needs (a few hundred lines, one
//! `unsafe` block).
//!
//! ## Scheduler design
//!
//! A [`ThreadPool`] owns `threads − 1` background workers plus the calling
//! thread. Tasks go through a **chunked global queue** (a mutex-protected
//! deque with condvar parking) rather than per-worker chase–lev deques:
//! callers split their work into chunks *before* enqueueing, so the queue
//! sees a handful of coarse tasks per operator call and the single lock is
//! never contended enough to matter at engine chunk sizes (thousands of
//! rows per task). Work "stealing" happens at two points:
//!
//! * idle workers pop the next queued chunk (self-scheduling — chunks are
//!   claimed dynamically, so an uneven chunk does not stall the rest);
//! * a thread *waiting* for its scope to finish (see [`ThreadPool::scope`])
//!   runs queued tasks instead of blocking — including tasks of *other*
//!   scopes — which keeps nested fan-out (the d-tree recursion) deadlock
//!   free on a bounded pool.
//!
//! A pool of one thread executes everything inline on the caller; no
//! workers, no queue traffic, no behavioural difference from sequential
//! code.
//!
//! ## Determinism contract
//!
//! Parallel callers in this workspace must produce **bit-identical**
//! results at any thread count. The pool supports that discipline rather
//! than enforcing it:
//!
//! * [`ThreadPool::par_map`] returns results **in input order**, however
//!   the tasks interleaved, so order-sensitive merges (float reductions,
//!   output concatenation) see a fixed order;
//! * chunk *boundaries* are the caller's, so callers whose merge is
//!   boundary-sensitive (Monte Carlo batch sums) fix the chunk size to a
//!   constant independent of the thread count — see [`derive_seed`] and
//!   the seeded estimators in `maybms-conf`, which give every fixed-size
//!   sample batch its own SplitMix64-derived RNG seed;
//! * nothing in the API exposes completion order, a thread id, or any
//!   other source of scheduling nondeterminism.
//!
//! ## Configuration
//!
//! The process-wide pool ([`pool`]) sizes itself from `MAYBMS_THREADS`
//! (unset or `0` → all available cores) and can be resized at runtime with
//! [`set_threads`] (the shell's `\threads N`). Every parallel entry point
//! also accepts an explicit `&ThreadPool` handle, which is what the
//! determinism property tests use to pin 1/2/8-thread pools.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A queued task. Tasks are type-erased closures; scope tasks are
/// lifetime-erased too (see the `SAFETY` note in [`Scope::spawn`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when a job is pushed or shutdown begins.
    work: Condvar,
}

struct Inner {
    queue: VecDeque<Job>,
    shutdown: bool,
}

impl Shared {
    fn push(&self, job: Job) {
        let depth = {
            let mut inner = self.inner.lock().expect("pool lock");
            inner.queue.push_back(job);
            inner.queue.len()
        };
        // Observability: tasks enqueued + queue-depth high-water mark,
        // sampled while the push lock is held so the depth is exact.
        let m = maybms_obs::metrics();
        m.par_tasks.inc();
        m.par_queue_depth_hwm.set_max(depth as u64);
        self.work.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.inner.lock().expect("pool lock").queue.pop_front()
    }
}

/// A fixed-size pool of worker threads (see the module docs for the
/// scheduler design). Dropping the pool drains the queue and joins the
/// workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

impl ThreadPool {
    /// A pool with `threads` total parallelism — the calling thread plus
    /// `threads − 1` background workers. `threads` is clamped to at
    /// least 1; a one-thread pool runs everything inline.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), shutdown: false }),
            work: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("maybms-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers, threads }
    }

    /// Total parallelism (background workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`] on which tasks borrowing the caller's
    /// stack can be spawned. Returns only after every spawned task has
    /// finished; while waiting, the calling thread executes queued tasks
    /// (its own or other scopes') instead of blocking. A panic in `f` or
    /// in any task is propagated after all tasks have completed, so
    /// borrows never dangle.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: FnOnce(&Scope<'env>) -> T,
    {
        let scope = Scope {
            state: Arc::new(ScopeState {
                shared: self.shared.clone(),
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        // Catch a panic from the scope body so already-spawned tasks are
        // still awaited before unwinding past the borrowed environment.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.state.wait_all();
        if let Some(payload) = scope.state.panic.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }
        match result {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Run two closures, potentially in parallel, and return both results
    /// (à la `rayon::join`). `a` runs on the calling thread; `b` is
    /// offered to the pool.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        if self.threads == 1 {
            return (a(), b());
        }
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join task completed before scope returned"))
    }

    /// Map `f` over `items` with one task per item, collecting results
    /// **in input order** regardless of execution interleaving. With one
    /// thread (or one item) this degenerates to an inline sequential map.
    pub fn par_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        self.scope(|s| {
            for (slot, item) in slots.iter_mut().zip(items) {
                let f = &f;
                s.spawn(move || *slot = Some(f(item)));
            }
        });
        slots.into_iter().map(|r| r.expect("par_map task completed")).collect()
    }

    /// [`ThreadPool::par_map`] over the contiguous index chunks of
    /// `0..len` produced by [`chunk_ranges`]. The workhorse of the
    /// chunked operators: each chunk maps to a partial result and the
    /// caller merges partials in chunk order.
    pub fn par_map_chunks<T, F>(&self, len: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        self.par_map(chunk_ranges(len, chunk), f)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.inner.lock().expect("pool lock").shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("pool lock");
            loop {
                if let Some(job) = inner.queue.pop_front() {
                    break Some(job);
                }
                if inner.shutdown {
                    break None;
                }
                inner = shared.work.wait(inner).expect("pool lock");
            }
        };
        match job {
            // Task wrappers are panic-isolated by `Scope::spawn`.
            Some(job) => job(),
            None => return,
        }
    }
}

/// Book-keeping for one [`ThreadPool::scope`] invocation.
struct ScopeState {
    shared: Arc<Shared>,
    /// Spawned-but-unfinished task count.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First captured task panic, re-thrown by `scope`.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    /// Block until every spawned task finished, running queued tasks
    /// (helping) instead of idling while the queue is non-empty.
    fn wait_all(&self) {
        loop {
            if let Some(job) = self.shared.try_pop() {
                job();
                continue;
            }
            let pending = self.pending.lock().expect("scope lock");
            if *pending == 0 {
                return;
            }
            // Our remaining tasks are running on other threads (the queue
            // was just empty). Park until one completes. The short timeout
            // is defensive: a task we could help with may have been queued
            // between the pop above and this wait.
            let _ = self
                .done
                .wait_timeout(pending, Duration::from_millis(2))
                .expect("scope lock");
        }
    }
}

/// Handle passed to the closure of [`ThreadPool::scope`]; spawns tasks
/// that may borrow from the enclosing environment (`'env`).
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn a task onto the pool. The task may borrow from the
    /// environment of the `scope` call; `scope` does not return until the
    /// task has run, so the borrow outlives the task.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().expect("scope lock") += 1;
        let state = self.state.clone();
        // Capture the spawning thread's trace context so spans created
        // inside the task (conf calls, nested pipelines) parent to the
        // span that was live at the spawn site, not to whatever happens
        // to be current on the worker. Keeps span-tree *shape*
        // independent of the thread count.
        let trace_ctx = maybms_obs::trace::current_context();
        let task = move || {
            let _trace = maybms_obs::trace::enter_context(trace_ctx);
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                state.panic.lock().expect("panic slot").get_or_insert(payload);
            }
            let mut pending = state.pending.lock().expect("scope lock");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the queue requires 'static jobs, but this job borrows
        // 'env data. `ThreadPool::scope` always calls `wait_all` before
        // returning — including when the scope body panics — so the job
        // has finished (and dropped) before any 'env borrow can end.
        // Trait-object lifetime erasure does not change the layout.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
        };
        self.state.shared.push(job);
    }
}

// ---------------------------------------------------------------------
// Chunking and seeding helpers
// ---------------------------------------------------------------------

/// Split `0..len` into contiguous ranges of `chunk` indices (the last may
/// be shorter). `chunk` is clamped to at least 1. An empty `len` yields no
/// ranges.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..len.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(len))
        .collect()
}

/// A chunk size for `len` items on `threads` threads: enough chunks for
/// dynamic load balancing (≈4 per thread), but never below `min_chunk`
/// (so per-chunk overhead stays amortised).
pub fn auto_chunk(len: usize, threads: usize, min_chunk: usize) -> usize {
    let target = len.div_ceil(threads.max(1) * 4);
    target.max(min_chunk).max(1)
}

/// SplitMix64 output for stream position `index` of a stream named by
/// `seed` — the deterministic per-batch seed derivation used by the
/// seeded Monte Carlo estimators. Batch `i`'s RNG depends only on
/// `(seed, i)`, never on the thread count or interleaving, which is what
/// makes the parallel estimates bit-identical to the one-thread run.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    // SplitMix64: state advances by the golden-ratio increment; the mix
    // finalizer decorrelates consecutive states.
    let state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Process-wide pool
// ---------------------------------------------------------------------

static GLOBAL: OnceLock<Mutex<Arc<ThreadPool>>> = OnceLock::new();

fn global() -> &'static Mutex<Arc<ThreadPool>> {
    GLOBAL.get_or_init(|| Mutex::new(Arc::new(ThreadPool::new(default_threads()))))
}

/// The pool size the environment asks for: `MAYBMS_THREADS` if set to a
/// positive integer, otherwise (or when `0`) all available cores.
pub fn default_threads() -> usize {
    match std::env::var("MAYBMS_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// The process-wide pool used by operators when no explicit handle is
/// passed. First use sizes it from [`default_threads`].
pub fn pool() -> Arc<ThreadPool> {
    global().lock().expect("global pool lock").clone()
}

/// Replace the process-wide pool with one of `threads` threads (the
/// shell's `\threads N`). In-flight users keep their `Arc` to the old
/// pool, which shuts down when the last handle drops.
pub fn set_threads(threads: usize) -> Arc<ThreadPool> {
    let fresh = Arc::new(ThreadPool::new(threads.max(1)));
    *global().lock().expect("global pool lock") = fresh.clone();
    fresh
}

/// Convenience: the current process-wide pool size.
pub fn current_threads() -> usize {
    pool().threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static TASKS_RUN: AtomicUsize = AtomicUsize::new(0);

    #[test]
    fn one_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.par_map(vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let n = 200;
        let out = pool.par_map((0..n).collect::<Vec<_>>(), |i| {
            // Vary the work so completion order scrambles.
            let mut acc = i as u64;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }

    #[test]
    fn scope_tasks_borrow_environment() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut partials = [0u64; 4];
        pool.scope(|s| {
            for (slot, chunk) in partials.iter_mut().zip(data.chunks(2)) {
                s.spawn(move || *slot = chunk.iter().sum());
            }
        });
        assert_eq!(partials.iter().sum::<u64>(), 36);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| (0..100).sum::<u64>(), || "right".to_string());
        assert_eq!(a, 4950);
        assert_eq!(b, "right");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Recursive fan-out deeper than the worker count: waiting threads
        // must help run queued tasks.
        fn tree_sum(pool: &ThreadPool, depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) =
                pool.join(|| tree_sum(pool, depth - 1), || tree_sum(pool, depth - 1));
            a + b
        }
        let pool = ThreadPool::new(2);
        assert_eq!(tree_sum(&pool, 8), 256);
    }

    #[test]
    fn panics_propagate_after_all_tasks_finish() {
        let pool = ThreadPool::new(4);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                        if i == 3 {
                            panic!("task failure");
                        }
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must rethrow the task panic");
        assert_eq!(ran.load(Ordering::SeqCst), 8, "all tasks ran to completion");
        // The pool survives a panicked scope.
        assert_eq!(pool.par_map(vec![1, 2], |x| x + 1), vec![2, 3]);
    }

    #[test]
    fn many_small_tasks_stress() {
        let pool = ThreadPool::new(4);
        for round in 0..50 {
            let out = pool.par_map((0..64usize).collect::<Vec<_>>(), |i| {
                TASKS_RUN.fetch_add(1, Ordering::Relaxed);
                i + round
            });
            assert_eq!(out.len(), 64);
            assert_eq!(out[0], round);
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 0), vec![0..1, 1..2, 2..3]); // chunk clamped to 1
        let ranges = chunk_ranges(1000, 7);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 1000);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn auto_chunk_respects_minimum() {
        assert_eq!(auto_chunk(100, 4, 1024), 1024);
        assert!(auto_chunk(1_000_000, 4, 1024) >= 1024);
        assert_eq!(auto_chunk(0, 4, 16), 16);
        // 4 threads × ~4 chunks each.
        assert_eq!(auto_chunk(160_000, 4, 1000), 10_000);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
        // Consecutive indices decorrelate (no shared high bits pattern).
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn global_pool_and_set_threads() {
        let before = pool().threads();
        assert!(before >= 1);
        let p = set_threads(3);
        assert_eq!(p.threads(), 3);
        assert_eq!(pool().threads(), 3);
        assert_eq!(pool().par_map(vec![1, 2, 3], |x| x * 2), vec![2, 4, 6]);
        set_threads(before);
    }

    #[test]
    fn queued_tasks_and_depth_hwm_are_counted() {
        let before = maybms_obs::metrics().par_tasks.get();
        let pool = ThreadPool::new(2);
        let out = pool.par_map((0..16usize).collect::<Vec<_>>(), |i| i);
        assert_eq!(out.len(), 16);
        assert!(maybms_obs::metrics().par_tasks.get() >= before + 16);
        assert!(maybms_obs::metrics().par_queue_depth_hwm.get() >= 1);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The determinism contract at the pool level: order-preserving
        // collection makes the merged result independent of scheduling.
        let work = |r: Range<usize>| -> f64 { r.map(|i| (i as f64).sqrt()).sum() };
        let merge = |pool: &ThreadPool| -> f64 {
            pool.par_map_chunks(10_000, 128, work).iter().sum()
        };
        let p1 = ThreadPool::new(1);
        let p2 = ThreadPool::new(2);
        let p8 = ThreadPool::new(8);
        let a = merge(&p1);
        let b = merge(&p2);
        let c = merge(&p8);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), c.to_bits());
    }
}
