//! Property tests for the relational engine: operator algebra laws and
//! equivalence of alternative physical implementations.

use std::sync::Arc;

use maybms_engine::ops::{self, AggCall, AggFunc, ProjectItem, SortKey};
use maybms_engine::{BinaryOp, DataType, Expr, Relation, Schema, Tuple};
use proptest::prelude::*;

/// A small integer-pair relation with schema (k: Int, v: Int).
fn arb_relation(max_rows: usize, key_range: i64) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..key_range, -50i64..50), 0..max_rows).prop_map(|rows| {
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
        ]));
        let tuples = rows
            .into_iter()
            .map(|(k, v)| Tuple::new(vec![k.into(), v.into()]))
            .collect();
        Relation::new(schema, tuples).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash join and nested-loop join compute the same multiset on equi-keys.
    #[test]
    fn hash_join_equals_nested_loop(
        l in arb_relation(24, 8),
        r in arb_relation(24, 8),
    ) {
        let hj = ops::hash_join(&l, &r, &[0], &[0]).unwrap();
        // Nested loop needs distinct column names for an unambiguous predicate;
        // compare by index instead.
        let pred = Expr::ColumnIdx(0).eq(Expr::ColumnIdx(2));
        let nl = ops::nested_loop_join(&l, &r, Some(&pred)).unwrap();
        let mut a = hj.tuples().to_vec();
        let mut b = nl.tuples().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// σ_p(σ_p(R)) = σ_p(R) — filter is idempotent.
    #[test]
    fn filter_idempotent(r in arb_relation(32, 8), bound in -50i64..50) {
        let p = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(bound));
        let once = ops::filter(&r, &p).unwrap();
        let twice = ops::filter(&once, &p).unwrap();
        prop_assert_eq!(once.tuples(), twice.tuples());
    }

    /// distinct(distinct(R)) = distinct(R) and result has unique rows.
    #[test]
    fn distinct_idempotent(r in arb_relation(32, 4)) {
        let once = ops::distinct(&r);
        let twice = ops::distinct(&once);
        prop_assert_eq!(once.tuples(), twice.tuples());
        let mut seen = std::collections::HashSet::new();
        for t in once.tuples() {
            prop_assert!(seen.insert(t.clone()));
        }
    }

    /// Sorting is a permutation of the input and is ordered.
    #[test]
    fn sort_permutation_and_ordered(r in arb_relation(32, 16)) {
        let out = ops::sort(&r, &[SortKey::asc(Expr::col("k"))]).unwrap();
        prop_assert_eq!(out.len(), r.len());
        let mut a = r.tuples().to_vec();
        let mut b = out.tuples().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        for w in out.tuples().windows(2) {
            prop_assert!(w[0].value(0) <= w[1].value(0));
        }
    }

    /// UNION ALL cardinality is the sum of input cardinalities.
    #[test]
    fn union_all_cardinality(a in arb_relation(16, 4), b in arb_relation(16, 4)) {
        let out = ops::union_all(&[&a, &b]).unwrap();
        prop_assert_eq!(out.len(), a.len() + b.len());
    }

    /// Grouped sums add up to the global sum.
    #[test]
    fn group_sums_total(r in arb_relation(32, 5)) {
        let grouped = ops::aggregate(
            &r,
            &[Expr::col("k")],
            &["k".into()],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("v")), "s")],
        ).unwrap();
        let global = ops::aggregate(
            &r,
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("v")), "s")],
        ).unwrap();
        let total_grouped: i64 = grouped
            .tuples()
            .iter()
            .map(|t| t.value(1).as_int().unwrap_or(0))
            .sum();
        let total = global.tuples()[0].value(0).as_int().unwrap_or(0);
        prop_assert_eq!(total_grouped, total);
    }

    /// π over σ commutes with σ over π when the projection keeps the
    /// filtered column.
    #[test]
    fn filter_project_commute(r in arb_relation(32, 8), bound in -50i64..50) {
        let p = Expr::col("v").binary(BinaryOp::LtEq, Expr::lit(bound));
        let items = vec![ProjectItem::col("v")];
        let a = ops::project(&ops::filter(&r, &p).unwrap(), &items).unwrap();
        let b = ops::filter(&ops::project(&r, &items).unwrap(), &p).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
    }

    /// Cross join cardinality is the product.
    #[test]
    fn cross_join_cardinality(a in arb_relation(12, 4), b in arb_relation(12, 4)) {
        prop_assert_eq!(ops::cross_join(&a, &b).len(), a.len() * b.len());
    }
}
