//! Equivalence property: for random plans over random data, the optimized
//! plan computes the same bag of tuples as the original.

use std::sync::Arc;

use maybms_engine::catalog::Catalog;
use maybms_engine::ops::SortKey;
use maybms_engine::optimizer::optimize;
use maybms_engine::{
    BinaryOp, DataType, Expr, PhysicalPlan, Relation, Schema, Tuple,
};
use proptest::prelude::*;

fn arb_catalog() -> impl Strategy<Value = Catalog> {
    (
        prop::collection::vec((0i64..5, -20i64..20), 0..12),
        prop::collection::vec((0i64..5, -20i64..20), 0..12),
    )
        .prop_map(|(t_rows, s_rows)| {
            let mut c = Catalog::new();
            let mk = |names: [&str; 2], rows: Vec<(i64, i64)>| {
                let schema = Arc::new(Schema::from_pairs(&[
                    (names[0], DataType::Int),
                    (names[1], DataType::Int),
                ]));
                Relation::new(
                    schema,
                    rows.into_iter()
                        .map(|(a, b)| Tuple::new(vec![a.into(), b.into()]))
                        .collect(),
                )
                .unwrap()
            };
            c.create("t", mk(["k", "v"], t_rows)).unwrap();
            c.create("s", mk(["k2", "w"], s_rows)).unwrap();
            c
        })
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|n| Expr::col("k").binary(BinaryOp::Gt, Expr::lit(n))),
        (-20i64..20).prop_map(|n| Expr::col("v").binary(BinaryOp::LtEq, Expr::lit(n))),
        Just(Expr::lit(true)),
        Just(Expr::lit(false)),
        (-20i64..20).prop_map(|n| Expr::lit(n).eq(Expr::lit(n))), // foldable
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}

/// Random plans over table t (single-source shapes where every predicate
/// binds).
fn arb_plan() -> impl Strategy<Value = PhysicalPlan> {
    let scan = Just(PhysicalPlan::Scan { table: "t".into(), alias: None });
    (scan, prop::collection::vec(arb_predicate(), 0..4), any::<u8>()).prop_map(
        |(base, preds, shape)| {
            let mut plan = base;
            for (i, p) in preds.into_iter().enumerate() {
                plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: p };
                // Interleave other operators based on shape bits.
                match (shape >> (2 * i)) & 3 {
                    1 => {
                        plan = PhysicalPlan::Distinct { input: Box::new(plan) };
                    }
                    2 => {
                        plan = PhysicalPlan::Sort {
                            input: Box::new(plan),
                            keys: vec![SortKey::asc(Expr::col("v"))],
                        };
                    }
                    3 => {
                        plan = PhysicalPlan::UnionAll {
                            inputs: vec![plan.clone(), plan],
                        };
                    }
                    _ => {}
                }
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// optimize(p) ≡ p as bags.
    #[test]
    fn optimized_plan_equivalent(catalog in arb_catalog(), plan in arb_plan()) {
        let original = plan.execute(&catalog).unwrap();
        let optimized_plan = optimize(&plan, &catalog).unwrap();
        let optimized = optimized_plan.execute(&catalog).unwrap();
        let mut a = original.into_tuples();
        let mut b = optimized.into_tuples();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Join + filter plans keep their semantics under pushdown.
    #[test]
    fn join_pushdown_equivalent(
        catalog in arb_catalog(),
        filter in arb_predicate(),
        right_bound in -20i64..20,
    ) {
        let join = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::Scan { table: "t".into(), alias: None }),
            right: Box::new(PhysicalPlan::Scan { table: "s".into(), alias: None }),
            predicate: Some(Expr::col("k").eq(Expr::col("k2"))),
        };
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(join),
                predicate: Expr::col("w").binary(BinaryOp::Gt, Expr::lit(right_bound)),
            }),
            predicate: filter,
        };
        let original = plan.execute(&catalog).unwrap();
        let optimized = optimize(&plan, &catalog).unwrap().execute(&catalog).unwrap();
        let mut a = original.into_tuples();
        let mut b = optimized.into_tuples();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Folding preserves evaluation on literal-only expressions.
    #[test]
    fn fold_preserves_value(pred in arb_predicate()) {
        use maybms_engine::optimizer::fold;
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let row = Tuple::new(vec![1.into(), 2.into()]);
        let original = pred.bind(&schema).unwrap().eval(&row).unwrap();
        let folded = fold(pred).bind(&schema).unwrap().eval(&row).unwrap();
        prop_assert_eq!(original, folded);
    }
}
