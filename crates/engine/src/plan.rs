//! A composable physical plan tree for standalone engine use.
//!
//! `maybms-core` drives most execution through the free operator functions
//! directly (it has to interleave world-set bookkeeping), but the plan tree
//! is useful for t-certain subqueries, for tests, and as the engine's own
//! public face.

use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::ops::{self, AggCall, ProjectItem, SortKey};
use crate::schema::Schema;
use crate::tuple::{Relation, Tuple};

/// A physical query plan. Executed bottom-up, fully materialised.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Literal rows.
    Values {
        /// Output schema.
        schema: Arc<Schema>,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// Scan a catalog table, optionally re-qualifying columns with an alias.
    Scan {
        /// Table name.
        table: String,
        /// Optional alias; when set all columns are qualified with it.
        alias: Option<String>,
    },
    /// σ
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// π
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output columns.
        items: Vec<ProjectItem>,
    },
    /// Inner join with optional predicate (nested loop).
    NestedLoopJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated schema.
        predicate: Option<Expr>,
    },
    /// Hash equi-join on positional keys.
    HashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Key column indices in the left schema.
        left_keys: Vec<usize>,
        /// Key column indices in the right schema.
        right_keys: Vec<usize>,
    },
    /// Bag union.
    UnionAll {
        /// Inputs (all same arity).
        inputs: Vec<PhysicalPlan>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// ORDER BY.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// LIMIT.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// GROUP BY + aggregates.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group key expressions.
        group_exprs: Vec<Expr>,
        /// Output names for the group keys.
        group_names: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
}

impl PhysicalPlan {
    /// Execute against a catalog, materialising the result.
    pub fn execute(&self, catalog: &Catalog) -> Result<Relation> {
        match self {
            PhysicalPlan::Values { schema, rows } => {
                Relation::new(schema.clone(), rows.clone())
            }
            PhysicalPlan::Scan { table, alias } => {
                let r = catalog.get(table)?.clone();
                match alias {
                    None => Ok(r),
                    Some(a) => {
                        let qualified = Arc::new(r.schema().with_qualifier(a));
                        r.with_schema(qualified)
                    }
                }
            }
            PhysicalPlan::Filter { input, predicate } => {
                ops::filter(&input.execute(catalog)?, predicate)
            }
            PhysicalPlan::Project { input, items } => {
                ops::project(&input.execute(catalog)?, items)
            }
            PhysicalPlan::NestedLoopJoin { left, right, predicate } => ops::nested_loop_join(
                &left.execute(catalog)?,
                &right.execute(catalog)?,
                predicate.as_ref(),
            ),
            PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => ops::hash_join(
                &left.execute(catalog)?,
                &right.execute(catalog)?,
                left_keys,
                right_keys,
            ),
            PhysicalPlan::UnionAll { inputs } => {
                if inputs.is_empty() {
                    return Err(EngineError::InvalidOperator {
                        message: "UNION of zero inputs".into(),
                    });
                }
                let rels: Vec<Relation> =
                    inputs.iter().map(|p| p.execute(catalog)).collect::<Result<_>>()?;
                let refs: Vec<&Relation> = rels.iter().collect();
                ops::union_all(&refs)
            }
            PhysicalPlan::Distinct { input } => Ok(ops::distinct(&input.execute(catalog)?)),
            PhysicalPlan::Sort { input, keys } => ops::sort(&input.execute(catalog)?, keys),
            PhysicalPlan::Limit { input, n } => Ok(ops::limit(&input.execute(catalog)?, *n)),
            PhysicalPlan::Aggregate { input, group_exprs, group_names, aggs } => {
                ops::aggregate(&input.execute(catalog)?, group_exprs, group_names, aggs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::ops::AggFunc;
    use crate::tuple::rel;
    use crate::types::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "games",
            rel(
                &[("player", DataType::Text), ("pts", DataType::Int)],
                vec![
                    vec!["Bryant".into(), 30.into()],
                    vec!["Bryant".into(), 40.into()],
                    vec!["Duncan".into(), 20.into()],
                ],
            ),
        )
        .unwrap();
        c
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan { table: "games".into(), alias: None }),
                predicate: Expr::col("pts").binary(BinaryOp::GtEq, Expr::lit(30i64)),
            }),
            items: vec![ProjectItem::col("player")],
        };
        let out = plan.execute(&catalog()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().names(), vec!["player"]);
    }

    #[test]
    fn scan_with_alias_qualifies() {
        let plan = PhysicalPlan::Scan { table: "games".into(), alias: Some("g".into()) };
        let out = plan.execute(&catalog()).unwrap();
        assert_eq!(out.schema().field(0).qualified_name(), "g.player");
    }

    #[test]
    fn aggregate_plan() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Scan { table: "games".into(), alias: None }),
            group_exprs: vec![Expr::col("player")],
            group_names: vec!["player".into()],
            aggs: vec![AggCall::new(AggFunc::Sum, Some(Expr::col("pts")), "total")],
        };
        let out = plan.execute(&catalog()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].value(1), &Value::Int(70));
    }

    #[test]
    fn self_join_via_aliases() {
        let scan = |alias: &str| PhysicalPlan::Scan {
            table: "games".into(),
            alias: Some(alias.into()),
        };
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::NestedLoopJoin {
                left: Box::new(scan("a")),
                right: Box::new(scan("b")),
                predicate: Some(Expr::qcol("a", "player").eq(Expr::qcol("b", "player"))),
            }),
            predicate: Expr::qcol("a", "pts").binary(BinaryOp::Lt, Expr::qcol("b", "pts")),
        };
        let out = plan.execute(&catalog()).unwrap();
        assert_eq!(out.len(), 1); // Bryant 30 < Bryant 40
    }

    #[test]
    fn union_distinct_sort_limit() {
        let scan = PhysicalPlan::Scan { table: "games".into(), alias: None };
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Distinct {
                    input: Box::new(PhysicalPlan::UnionAll {
                        inputs: vec![scan.clone(), scan],
                    }),
                }),
                keys: vec![SortKey::desc(Expr::col("pts"))],
            }),
            n: 2,
        };
        let out = plan.execute(&catalog()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].value(1), &Value::Int(40));
    }

    #[test]
    fn missing_table_propagates() {
        let plan = PhysicalPlan::Scan { table: "nope".into(), alias: None };
        assert!(plan.execute(&Catalog::new()).is_err());
    }

    #[test]
    fn values_node_checks_arity() {
        let schema = Arc::new(crate::Schema::from_pairs(&[("a", DataType::Int)]));
        let good = PhysicalPlan::Values {
            schema: schema.clone(),
            rows: vec![crate::Tuple::new(vec![1.into()])],
        };
        assert_eq!(good.execute(&Catalog::new()).unwrap().len(), 1);
        let bad = PhysicalPlan::Values {
            schema,
            rows: vec![crate::Tuple::new(vec![1.into(), 2.into()])],
        };
        assert!(bad.execute(&Catalog::new()).is_err());
    }

    #[test]
    fn hash_join_plan_node() {
        let c = catalog();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::Scan { table: "games".into(), alias: None }),
            right: Box::new(PhysicalPlan::Scan { table: "games".into(), alias: None }),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let out = plan.execute(&c).unwrap();
        assert_eq!(out.len(), 5); // Bryant 2×2 + Duncan 1×1
    }

    #[test]
    fn empty_union_rejected() {
        let plan = PhysicalPlan::UnionAll { inputs: vec![] };
        assert!(plan.execute(&Catalog::new()).is_err());
    }
}
