//! Column-major morsels: typed column vectors with null bitmaps.
//!
//! The row-major execution core shuttles `Vec<Value>` rows through every
//! fused stage, paying the `Value` enum tag (and its match dispatch) per
//! cell per operator. Following MonetDB/X100-style vectorised execution,
//! a [`ColumnBatch`] stores one *morsel* of rows column-major: each
//! [`Column`] is a typed vector (`Vec<i64>`, `Vec<f64>`, …) plus a
//! [`NullMask`] bitmap, so the vectorised kernels in [`crate::vector`]
//! run tight monomorphic loops over primitive slices instead of matching
//! on `Value` per cell.
//!
//! # Representation invariants
//!
//! * A typed column ([`ColumnData::Int`] / `Float` / `Bool` / `Str`)
//!   holds **only values of that one variant**; NULL slots hold a
//!   placeholder and are marked in the mask. Columns whose rows mix
//!   variants (legal — `Value` is dynamically typed and `1 = 1.0`) fall
//!   back to [`ColumnData::Values`], where the per-row `Value` is
//!   authoritative. This keeps the row ↔ column pivot a *bijection*:
//!   `value_at` returns the exact `Value` that was pivoted in, variant
//!   included (an `Int(1)` never comes back as `Float(1.0)` — `Concat`
//!   and `CAST` observe the variant).
//! * [`ColumnData::Const`] broadcasts one value (vectorised literals,
//!   all-NULL columns) without materialising it per row.
//! * Float bits are preserved exactly (no normalisation on pivot), so
//!   columnar execution is bit-identical to the row path.
//! * [`ColumnData::Dict`] stores strings dictionary-encoded: a shared,
//!   insertion-ordered [`StrDict`] of distinct `Arc<str>` entries plus a
//!   `u32` code per row. Within one column, code equality ⇔ string
//!   equality, so hashing / comparing / grouping can run over codes.
//!   `value_at` decodes to the exact `Arc<str>` that was encoded (an
//!   `Arc` bump), keeping the bijection.
//!
//! Every call to [`ColumnBatch::pivot`] bumps the process-wide
//! `maybms_pipe_pivots_total` / `maybms_pipe_pivot_rows_total` counters,
//! so "zero pivots end-to-end" is an observable claim, not an intention.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::hash::FastMap;
use crate::tuple::TupleBatch;
use crate::types::Value;

/// A null bitmap: bit `i` set ⇔ row `i` is NULL. Empty (no words) means
/// "no nulls", the common fast path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullMask {
    bits: Vec<u64>,
}

impl NullMask {
    /// A mask with no nulls.
    pub fn none() -> NullMask {
        NullMask::default()
    }

    /// Is row `i` null?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.bits.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Mark row `i` null.
    #[inline]
    pub fn set_null(&mut self, i: usize) {
        let word = i / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << (i % 64);
    }

    /// True iff any row is null. O(words), with the empty-mask fast path.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|w| *w != 0)
    }

    /// Mask for the rows at `sel`, in that order.
    pub fn gather(&self, sel: &[u32]) -> NullMask {
        let mut out = NullMask::none();
        if self.any() {
            for (j, &i) in sel.iter().enumerate() {
                if self.is_null(i as usize) {
                    out.set_null(j);
                }
            }
        }
        out
    }

    /// Mask for the contiguous rows `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> NullMask {
        let mut out = NullMask::none();
        if self.any() {
            for j in 0..len {
                if self.is_null(start + j) {
                    out.set_null(j);
                }
            }
        }
        out
    }
}

/// An insertion-ordered dictionary of distinct strings, shared by every
/// slice of a dictionary-encoded column via `Arc`.
///
/// Codes are assigned in first-appearance order, so encoding is
/// deterministic for a given row order. Per-entry derived data (the
/// precomputed key hashes joins and grouping use) is cached once per
/// dictionary lifetime behind a [`OnceLock`].
#[derive(Debug, Default)]
pub struct StrDict {
    entries: Vec<Arc<str>>,
    lookup: FastMap<Arc<str>, u32>,
    hashes: OnceLock<Vec<u64>>,
}

impl PartialEq for StrDict {
    fn eq(&self, other: &StrDict) -> bool {
        self.entries == other.entries
    }
}

impl StrDict {
    /// An empty dictionary.
    pub fn new() -> StrDict {
        StrDict::default()
    }

    /// The code for `s`, interning it on first sight.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        let code = self.entries.len() as u32;
        self.entries.push(s.clone());
        self.lookup.insert(s.clone(), code);
        code
    }

    /// The code for `s`, if already interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// The string for `code`.
    #[inline]
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.entries[code as usize]
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in code order.
    pub fn entries(&self) -> &[Arc<str>] {
        &self.entries
    }

    /// Per-entry derived values (e.g. key hashes), computed once per
    /// dictionary by `f` and cached. `f` must be deterministic — every
    /// caller of the same dictionary sees the first computation.
    pub fn cached_hashes(&self, f: impl FnOnce(&[Arc<str>]) -> Vec<u64>) -> &[u64] {
        self.hashes.get_or_init(|| f(&self.entries))
    }
}

/// The physical storage of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-null rows are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null rows are `Value::Float` (bits preserved).
    Float(Vec<f64>),
    /// All non-null rows are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null rows are `Value::Str`.
    Str(Vec<Arc<str>>),
    /// All non-null rows are `Value::Str`, dictionary-encoded: row `i`
    /// holds `dict.get(codes[i])`. NULL rows carry code 0 as a
    /// placeholder and are marked in the column's mask.
    Dict {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The shared, insertion-ordered dictionary.
        dict: Arc<StrDict>,
    },
    /// Mixed-variant (or otherwise untypable) rows: the per-row `Value`
    /// is authoritative, including its nulls.
    Values(Vec<Value>),
    /// Every row is this same value (vectorised literal / all-NULL).
    Const(Value),
}

/// One typed column of a [`ColumnBatch`]: data plus null bitmap plus
/// logical length.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    nulls: NullMask,
    len: usize,
}

impl Column {
    /// A column repeating `v` for `len` rows.
    pub fn from_const(v: Value, len: usize) -> Column {
        Column { data: ColumnData::Const(v), nulls: NullMask::none(), len }
    }

    /// An `Int` column from raw parts.
    pub fn from_ints(v: Vec<i64>, nulls: NullMask) -> Column {
        let len = v.len();
        Column { data: ColumnData::Int(v), nulls, len }
    }

    /// A `Float` column from raw parts.
    pub fn from_floats(v: Vec<f64>, nulls: NullMask) -> Column {
        let len = v.len();
        Column { data: ColumnData::Float(v), nulls, len }
    }

    /// A `Bool` column from raw parts.
    pub fn from_bools(v: Vec<bool>, nulls: NullMask) -> Column {
        let len = v.len();
        Column { data: ColumnData::Bool(v), nulls, len }
    }

    /// A `Str` column from raw parts.
    pub fn from_strs(v: Vec<Arc<str>>, nulls: NullMask) -> Column {
        let len = v.len();
        Column { data: ColumnData::Str(v), nulls, len }
    }

    /// A dictionary-encoded column from raw parts (the store codec's
    /// decode path). Every non-null row's code must index into `dict`;
    /// the caller validates.
    pub fn from_dict(codes: Vec<u32>, dict: Arc<StrDict>, nulls: NullMask) -> Column {
        let len = codes.len();
        Column { data: ColumnData::Dict { codes, dict }, nulls, len }
    }

    /// Build from owned values, choosing the tightest representation
    /// (typed vector, `Const` for all-NULL, `Values` for mixed).
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::new();
        for v in &values {
            b.push(v);
        }
        b.finish()
    }

    /// A mixed-variant column from raw parts, keeping the
    /// [`ColumnData::Values`] representation as-is (the store codec's
    /// decode path, where re-encoding must be byte-identical).
    pub fn from_raw_values(values: Vec<Value>) -> Column {
        let len = values.len();
        Column { data: ColumnData::Values(values), nulls: NullMask::none(), len }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The physical storage.
    #[inline]
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap (not authoritative for `Values` / `Const` — use
    /// [`Column::is_null`]).
    #[inline]
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        match &self.data {
            ColumnData::Const(v) => v.is_null(),
            ColumnData::Values(v) => v[i].is_null(),
            _ => self.nulls.is_null(i),
        }
    }

    /// True iff any row is NULL.
    pub fn has_nulls(&self) -> bool {
        match &self.data {
            ColumnData::Const(v) => self.len > 0 && v.is_null(),
            ColumnData::Values(v) => v.iter().any(Value::is_null),
            _ => self.nulls.any(),
        }
    }

    /// The `Value` at row `i` — the exact value that was pivoted in
    /// (variant and float bits included). Cheap: `Str` is an `Arc` bump.
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        debug_assert!(i < self.len);
        match &self.data {
            ColumnData::Const(v) => v.clone(),
            ColumnData::Values(v) => v[i].clone(),
            ColumnData::Int(v) => {
                if self.nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(v[i])
                }
            }
            ColumnData::Float(v) => {
                if self.nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(v[i])
                }
            }
            ColumnData::Bool(v) => {
                if self.nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(v[i])
                }
            }
            ColumnData::Str(v) => {
                if self.nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(v[i].clone())
                }
            }
            ColumnData::Dict { codes, dict } => {
                if self.nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(dict.get(codes[i]).clone())
                }
            }
        }
    }

    /// The rows at `sel`, in that order (typed gather; indices may
    /// repeat and must be in range).
    pub fn gather(&self, sel: &[u32]) -> Column {
        let len = sel.len();
        let data = match &self.data {
            ColumnData::Const(v) => {
                return Column { data: ColumnData::Const(v.clone()), nulls: NullMask::none(), len }
            }
            ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => {
                ColumnData::Float(sel.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Bool(v) => {
                ColumnData::Bool(sel.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
            },
            ColumnData::Values(v) => {
                ColumnData::Values(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { data, nulls: self.nulls.gather(sel), len }
    }

    /// Shorten to the first `n` rows (no-op when already ≤ `n`).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        match &mut self.data {
            ColumnData::Const(_) => {}
            ColumnData::Int(v) => v.truncate(n),
            ColumnData::Float(v) => v.truncate(n),
            ColumnData::Bool(v) => v.truncate(n),
            ColumnData::Str(v) => v.truncate(n),
            ColumnData::Dict { codes, .. } => codes.truncate(n),
            ColumnData::Values(v) => v.truncate(n),
        }
        self.len = n;
    }

    /// The contiguous rows `[start, start + len)` as a new column. A
    /// typed copy of the subrange (primitive memcpy / code copy sharing
    /// the dictionary `Arc`) — **not** a pivot: no per-value dispatch,
    /// no row materialisation.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        debug_assert!(start + len <= self.len);
        let data = match &self.data {
            ColumnData::Const(v) => {
                return Column { data: ColumnData::Const(v.clone()), nulls: NullMask::none(), len }
            }
            ColumnData::Int(v) => ColumnData::Int(v[start..start + len].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..start + len].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..start + len].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..start + len].to_vec()),
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: codes[start..start + len].to_vec(),
                dict: dict.clone(),
            },
            ColumnData::Values(v) => ColumnData::Values(v[start..start + len].to_vec()),
        };
        Column { data, nulls: self.nulls.slice(start, len), len }
    }

    /// Dictionary-encode a `Str` column (first-appearance code order);
    /// every other representation is returned unchanged. The at-rest
    /// compaction path for string columns.
    pub fn dict_encode(&self) -> Column {
        match &self.data {
            ColumnData::Str(v) => {
                let mut dict = StrDict::new();
                let codes: Vec<u32> = v
                    .iter()
                    .enumerate()
                    .map(|(i, s)| if self.nulls.is_null(i) { 0 } else { dict.intern(s) })
                    .collect();
                Column {
                    data: ColumnData::Dict { codes, dict: Arc::new(dict) },
                    nulls: self.nulls.clone(),
                    len: self.len,
                }
            }
            _ => self.clone(),
        }
    }
}

/// Incremental [`Column`] builder: starts optimistic (typed on the first
/// non-null value) and degrades to [`ColumnData::Values`] on the first
/// variant mismatch, reconstructing the already-pushed values exactly.
#[derive(Debug)]
pub struct ColumnBuilder {
    state: BuilderState,
    nulls: NullMask,
    len: usize,
    /// Governor working-memory tally: charged once per
    /// [`CHARGE_STRIDE`](ColumnBuilder::CHARGE_STRIDE) pushed rows (never
    /// per row), credited on drop.
    charge: maybms_gov::MemCharge,
}

#[derive(Debug)]
enum BuilderState {
    /// Only NULLs seen so far.
    AllNull,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
    Values(Vec<Value>),
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

impl ColumnBuilder {
    /// Rows between governor memory charges.
    const CHARGE_STRIDE: usize = 1024;

    /// An empty builder.
    pub fn new() -> ColumnBuilder {
        ColumnBuilder {
            state: BuilderState::AllNull,
            nulls: NullMask::none(),
            len: 0,
            charge: maybms_gov::MemCharge::new(),
        }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one value.
    pub fn push(&mut self, v: &Value) {
        use BuilderState::*;
        let i = self.len;
        match (&mut self.state, v) {
            (_, Value::Null) => {
                self.nulls.set_null(i);
                match &mut self.state {
                    AllNull => {}
                    Int(xs) => xs.push(0),
                    Float(xs) => xs.push(0.0),
                    Bool(xs) => xs.push(false),
                    Str(xs) => xs.push(Arc::from("")),
                    Values(xs) => xs.push(Value::Null),
                }
            }
            (AllNull, _) => {
                // First non-null value decides the optimistic type.
                self.state = match v {
                    Value::Int(x) => Int(backfill(i, 0).chain([*x]).collect()),
                    Value::Float(x) => Float(backfill(i, 0.0).chain([*x]).collect()),
                    Value::Bool(x) => Bool(backfill(i, false).chain([*x]).collect()),
                    Value::Str(s) => {
                        Str(backfill(i, Arc::from("")).chain([s.clone()]).collect())
                    }
                    Value::Null => unreachable!("handled above"),
                };
            }
            (Int(xs), Value::Int(x)) => xs.push(*x),
            (Float(xs), Value::Float(x)) => xs.push(*x),
            (Bool(xs), Value::Bool(x)) => xs.push(*x),
            (Str(xs), Value::Str(s)) => xs.push(s.clone()),
            (Values(xs), _) => xs.push(v.clone()),
            // Variant mismatch: degrade to per-row values, rebuilding the
            // prefix exactly from the typed vector plus the null mask.
            (_, _) => {
                let col = std::mem::take(self).finish();
                let mut vals: Vec<Value> = (0..col.len()).map(|j| col.value_at(j)).collect();
                vals.push(v.clone());
                self.state = Values(vals);
                self.nulls = NullMask::none();
                self.len = i;
            }
        }
        self.len += 1;
        if self.len.is_multiple_of(Self::CHARGE_STRIDE) {
            self.charge.add(Self::CHARGE_STRIDE * std::mem::size_of::<Value>());
        }
    }

    /// Finish into a column. All-NULL input becomes `Const(NULL)`.
    pub fn finish(self) -> Column {
        let len = self.len;
        let (data, nulls) = match self.state {
            BuilderState::AllNull => (ColumnData::Const(Value::Null), NullMask::none()),
            BuilderState::Int(v) => (ColumnData::Int(v), self.nulls),
            BuilderState::Float(v) => (ColumnData::Float(v), self.nulls),
            BuilderState::Bool(v) => (ColumnData::Bool(v), self.nulls),
            BuilderState::Str(v) => (ColumnData::Str(v), self.nulls),
            BuilderState::Values(v) => (ColumnData::Values(v), NullMask::none()),
        };
        Column { data, nulls, len }
    }
}

/// `n` copies of a placeholder (backfills NULL-prefixed typed columns).
fn backfill<T: Clone>(n: usize, v: T) -> impl Iterator<Item = T> {
    std::iter::repeat_n(v, n)
}

/// A column-major morsel: parallel [`Column`]s of one common length.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnBatch {
    /// Pivot `rows` (each of one common arity) into columns, keeping
    /// only the source columns at `cols` (in that order). `n_rows` must
    /// equal the iterator length — kept explicit so a zero-column pivot
    /// still knows its row count.
    pub fn pivot<'a>(
        n_rows: usize,
        rows: impl Iterator<Item = &'a [Value]>,
        cols: &[usize],
    ) -> ColumnBatch {
        let m = maybms_obs::metrics();
        m.pivots.inc();
        m.pivot_rows.add(n_rows as u64);
        let mut builders: Vec<ColumnBuilder> =
            (0..cols.len()).map(|_| ColumnBuilder::new()).collect();
        let mut seen = 0usize;
        for row in rows {
            for (b, &c) in builders.iter_mut().zip(cols) {
                b.push(&row[c]);
            }
            seen += 1;
        }
        debug_assert_eq!(seen, n_rows, "pivot row count mismatch");
        ColumnBatch { columns: builders.into_iter().map(ColumnBuilder::finish).collect(), rows: n_rows }
    }

    /// Assemble from already-built columns, truncating each to `rows`
    /// (columns may be longer after a partial evaluation).
    pub fn from_columns(mut columns: Vec<Column>, rows: usize) -> ColumnBatch {
        for c in &mut columns {
            debug_assert!(c.len() >= rows, "column shorter than batch");
            c.truncate(rows);
        }
        ColumnBatch { columns, rows }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True iff the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `i`.
    #[inline]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The rows at `sel`, in that order.
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
            rows: sel.len(),
        }
    }

    /// The contiguous rows `[start, start + len)` of the columns at
    /// `cols` (in that order) — the zero-pivot morsel path: typed
    /// subrange copies, no row materialisation, no pivot counted.
    pub fn slice_cols(&self, start: usize, len: usize, cols: &[usize]) -> ColumnBatch {
        ColumnBatch {
            columns: cols.iter().map(|&c| self.columns[c].slice(start, len)).collect(),
            rows: len,
        }
    }

    /// Dictionary-encode every `Str` column (see [`Column::dict_encode`])
    /// — the at-rest compaction applied once at load/CTAS/INSERT.
    pub fn dict_encode(&self) -> ColumnBatch {
        ColumnBatch {
            columns: self.columns.iter().map(Column::dict_encode).collect(),
            rows: self.rows,
        }
    }

    /// Write row `i` into `out` (cleared first) — the row ↔ column
    /// pivot inverse, used by scalar fallbacks and the pivot back to
    /// shared-row tuples.
    pub fn write_row(&self, i: usize, out: &mut Vec<Value>) {
        out.clear();
        for c in &self.columns {
            out.push(c.value_at(i));
        }
    }

    /// Pivot back to row-major tuples sharing chunked buffers (the same
    /// [`TupleBatch`] machinery the row operators use).
    pub fn to_tuple_batch(&self) -> TupleBatch {
        let mut batch = TupleBatch::new();
        for i in 0..self.rows {
            batch.begin_row();
            for c in &self.columns {
                batch.push_value(c.value_at(i));
            }
        }
        batch
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.len.min(16) {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.value_at(i))?;
        }
        if self.len > 16 {
            write!(f, ", … ({} rows)", self.len)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<Value>) {
        let col = Column::from_values(values.clone());
        assert_eq!(col.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&col.value_at(i), v, "row {i}");
            assert_eq!(col.is_null(i), v.is_null(), "null flag row {i}");
        }
    }

    #[test]
    fn typed_columns_roundtrip_exactly() {
        roundtrip(vec![Value::Int(1), Value::Null, Value::Int(-3)]);
        roundtrip(vec![Value::Float(0.5), Value::Float(-0.0), Value::Null]);
        roundtrip(vec![Value::Bool(true), Value::Null, Value::Bool(false)]);
        roundtrip(vec![Value::str("a"), Value::Null, Value::str("")]);
    }

    #[test]
    fn mixed_variants_fall_back_to_values_preserving_variant() {
        // 1 and 1.0 compare equal but are distinct variants; the pivot
        // must not coerce (Concat/CAST observe the variant).
        let vals = vec![Value::Int(1), Value::Float(1.0), Value::Null, Value::str("x")];
        let col = Column::from_values(vals.clone());
        assert!(matches!(col.data(), ColumnData::Values(_)));
        for (i, v) in vals.iter().enumerate() {
            let got = col.value_at(i);
            assert_eq!(&got, v);
            assert_eq!(got.data_type(), v.data_type(), "variant preserved at {i}");
        }
    }

    #[test]
    fn all_null_becomes_const_null() {
        let col = Column::from_values(vec![Value::Null, Value::Null]);
        assert!(matches!(col.data(), ColumnData::Const(Value::Null)));
        assert_eq!(col.len(), 2);
        assert!(col.is_null(0) && col.is_null(1));
    }

    #[test]
    fn null_prefix_backfills_typed() {
        let col = Column::from_values(vec![Value::Null, Value::Null, Value::Int(7)]);
        assert!(matches!(col.data(), ColumnData::Int(_)));
        assert_eq!(col.value_at(0), Value::Null);
        assert_eq!(col.value_at(2), Value::Int(7));
    }

    #[test]
    fn degrade_after_nulls_and_values_is_exact() {
        let vals =
            vec![Value::Null, Value::Int(1), Value::Null, Value::str("s"), Value::Int(2)];
        roundtrip(vals);
    }

    #[test]
    fn gather_and_truncate() {
        let col = Column::from_values(vec![
            Value::Int(10),
            Value::Null,
            Value::Int(30),
            Value::Int(40),
        ]);
        let g = col.gather(&[3, 1, 1, 0]);
        assert_eq!(g.value_at(0), Value::Int(40));
        assert_eq!(g.value_at(1), Value::Null);
        assert_eq!(g.value_at(2), Value::Null);
        assert_eq!(g.value_at(3), Value::Int(10));
        let mut t = col.clone();
        t.truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_at(1), Value::Null);
    }

    #[test]
    fn const_column_broadcasts_and_gathers() {
        let c = Column::from_const(Value::str("k"), 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.value_at(4), Value::str("k"));
        let g = c.gather(&[0, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.value_at(1), Value::str("k"));
    }

    #[test]
    fn batch_pivot_projects_columns_and_inverts() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::str("a"), Value::Float(0.5)],
            vec![Value::Int(2), Value::Null, Value::Float(1.5)],
        ];
        let batch = ColumnBatch::pivot(2, rows.iter().map(|r| r.as_slice()), &[2, 0]);
        assert_eq!(batch.rows(), 2);
        assert_eq!(batch.arity(), 2);
        assert_eq!(batch.column(0).value_at(1), Value::Float(1.5));
        assert_eq!(batch.column(1).value_at(0), Value::Int(1));
        let mut row = Vec::new();
        batch.write_row(1, &mut row);
        assert_eq!(row, vec![Value::Float(1.5), Value::Int(2)]);
    }

    #[test]
    fn batch_to_tuple_batch_matches_rows() {
        let rows: Vec<Vec<Value>> =
            vec![vec![Value::Int(1), Value::Null], vec![Value::str("x"), Value::Bool(true)]];
        let batch = ColumnBatch::pivot(2, rows.iter().map(|r| r.as_slice()), &[0, 1]);
        let tuples = batch.to_tuple_batch().finish();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].values(), rows[0].as_slice());
        assert_eq!(tuples[1].values(), rows[1].as_slice());
    }

    #[test]
    fn zero_column_pivot_keeps_row_count() {
        let rows: Vec<Vec<Value>> = vec![vec![Value::Int(1)]; 3];
        let batch = ColumnBatch::pivot(3, rows.iter().map(|r| r.as_slice()), &[]);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.arity(), 0);
        let mut row = vec![Value::Int(9)];
        batch.write_row(2, &mut row);
        assert!(row.is_empty());
    }

    #[test]
    fn dict_encode_roundtrips_and_shares_dictionary() {
        let strs: Vec<Arc<str>> =
            vec![Arc::from("a"), Arc::from("b"), Arc::from("a"), Arc::from("")];
        let mut nulls = NullMask::none();
        nulls.set_null(2);
        let col = Column::from_strs(strs, nulls);
        let d = col.dict_encode();
        let ColumnData::Dict { codes, dict } = d.data() else {
            panic!("expected dict encoding, got {:?}", d.data());
        };
        // First-appearance code order; the NULL slot carries placeholder 0.
        assert_eq!(codes, &vec![0, 1, 0, 2]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.get(0).as_ref(), "a");
        assert_eq!(d.value_at(0), Value::str("a"));
        assert_eq!(d.value_at(2), Value::Null);
        assert_eq!(d.value_at(3), Value::str(""));
        // Gather and slice keep the same dictionary Arc.
        let g = d.gather(&[3, 0]);
        let ColumnData::Dict { dict: gd, .. } = g.data() else { panic!() };
        assert!(Arc::ptr_eq(dict, gd));
        assert_eq!(g.value_at(0), Value::str(""));
        let s = d.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(0), Value::str("b"));
        assert_eq!(s.value_at(1), Value::Null);
    }

    #[test]
    fn slice_matches_value_at_for_every_representation() {
        let cols = vec![
            Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3), Value::Int(4)]),
            Column::from_values(vec![
                Value::Float(0.5),
                Value::Float(-0.0),
                Value::Null,
                Value::Float(2.0),
            ]),
            Column::from_values(vec![
                Value::str("x"),
                Value::Null,
                Value::str("y"),
                Value::str("x"),
            ])
            .dict_encode(),
            Column::from_values(vec![
                Value::Int(1),
                Value::str("mixed"),
                Value::Null,
                Value::Bool(true),
            ]),
            Column::from_const(Value::str("k"), 4),
        ];
        for col in cols {
            for start in 0..col.len() {
                for len in 0..=(col.len() - start) {
                    let s = col.slice(start, len);
                    assert_eq!(s.len(), len);
                    for j in 0..len {
                        assert_eq!(s.value_at(j), col.value_at(start + j));
                        assert_eq!(s.is_null(j), col.is_null(start + j));
                    }
                }
            }
        }
    }

    #[test]
    fn pivot_bumps_pivot_counters() {
        let m = maybms_obs::metrics();
        let (p0, r0) = (m.pivots.get(), m.pivot_rows.get());
        let rows: Vec<Vec<Value>> = vec![vec![Value::Int(1)]; 5];
        let _ = ColumnBatch::pivot(5, rows.iter().map(|r| r.as_slice()), &[0]);
        assert_eq!(m.pivots.get(), p0 + 1);
        assert_eq!(m.pivot_rows.get(), r0 + 5);
        // slice_cols is the zero-pivot path: counters stay put.
        let batch = ColumnBatch::pivot(5, rows.iter().map(|r| r.as_slice()), &[0]);
        let (p1, r1) = (m.pivots.get(), m.pivot_rows.get());
        let s = batch.slice_cols(1, 3, &[0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(m.pivots.get(), p1);
        assert_eq!(m.pivot_rows.get(), r1);
    }

    #[test]
    fn float_bits_preserved_through_pivot() {
        // -0.0 and NaN are constructible Values; the pivot must not
        // normalise them (bit-identity with the row path).
        let neg_zero = Value::Float(-0.0);
        let col = Column::from_values(vec![neg_zero.clone(), Value::Float(1.0)]);
        match col.value_at(0) {
            Value::Float(f) => assert!(f.is_sign_negative()),
            other => panic!("expected float, got {other:?}"),
        }
    }
}
