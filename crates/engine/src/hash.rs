//! Fast non-cryptographic hashing for join keys, grouping, and dedup.
//!
//! The default `HashMap` hasher (SipHash) is keyed and DoS-resistant but
//! costs a full keyed permutation per row — measurable on the join/dedup
//! hot paths where millions of small keys are hashed. [`FastHasher`] is an
//! FxHash-style multiply-mix: one rotate/xor/multiply per word. It is used
//! for *internal* row-index tables whose keys derive from data the engine
//! already materialised; none of these tables outlive a single operator
//! call, which bounds any adversarial-collision blowup to one query.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from FxHash (a.k.a. Firefox's hash): odd, high-entropy.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-mix hasher.
#[derive(Debug, Clone, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // SplitMix64 finalizer. The multiply-mix accumulator concentrates
        // entropy in the high bits (a product inherits its operand's
        // trailing zeros, and float bit patterns of small integers have
        // dozens of them), while hashmaps index buckets with the LOW bits
        // — without this avalanche, integer keys collapse into a handful
        // of buckets and probes degenerate to linear scans.
        let mut z = self.hash;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized; deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

/// Hash one value with [`FastHasher`] (convenience for key pipelines).
#[inline]
pub fn fast_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FastHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishes() {
        assert_eq!(fast_hash_one(&42u64), fast_hash_one(&42u64));
        assert_ne!(fast_hash_one(&42u64), fast_hash_one(&43u64));
        assert_ne!(fast_hash_one(&"ab"), fast_hash_one(&"ab\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FastMap<u64, usize> = FastMap::default();
        m.insert(7, 1);
        m.insert(7, 2);
        assert_eq!(m.len(), 1);
        let mut s: FastSet<&str> = FastSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }

    #[test]
    fn hash_matches_value_equality_for_numerics() {
        use crate::types::Value;
        // Int(1) == Float(1.0) must collide under any Hasher.
        assert_eq!(
            fast_hash_one(&Value::Int(1)),
            fast_hash_one(&Value::Float(1.0)),
        );
    }
}
