//! Scalar expressions: construction, binding (name resolution), type
//! inference, and evaluation with SQL three-valued logic.
//!
//! Expressions are built unresolved (column references by name), then
//! [`Expr::bind`] resolves every reference against a [`Schema`] producing an
//! expression that evaluates by column index. Evaluation uses SQL semantics:
//! comparisons and arithmetic involving `NULL` yield `NULL`; `AND`/`OR`
//! use Kleene three-valued logic.

use std::fmt;

use crate::error::{EngineError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// Kleene `AND`
    And,
    /// Kleene `OR`
    Or,
    /// String concatenation `||`
    Concat,
}

impl BinaryOp {
    /// True for `= <> < <= > >=`.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | NotEq | Lt | LtEq | Gt | GtEq)
    }

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        use BinaryOp::*;
        matches!(self, Add | Sub | Mul | Div | Mod)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical NOT (three-valued).
    Not,
    /// Numeric negation.
    Neg,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unresolved column reference (`qualifier.name` or `name`).
    Column {
        /// Optional relation alias.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Resolved column reference (index into the bound schema).
    ColumnIdx(usize),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v1, v2, …)` over literal/scalar expressions.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `CASE WHEN c1 THEN r1 … [ELSE e] END`.
    Case {
        /// `(condition, result)` branches, tried in order.
        branches: Vec<(Expr, Expr)>,
        /// Result when no branch matches (`NULL` when absent).
        else_expr: Option<Box<Expr>>,
    },
    /// Cast to a target type.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        dtype: DataType,
    },
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: None, name: name.into() }
    }

    /// Qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: Some(qualifier.into()), name: name.into() }
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op, right: Box::new(other) }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)] // SQL-flavoured builder, consumes self
    pub fn not(self) -> Expr {
        Expr::Unary { op: UnaryOp::Not, expr: Box::new(self) }
    }

    /// Resolve all column references against `schema`, producing an
    /// expression that evaluates by index.
    pub fn bind(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            Expr::Column { qualifier, name } => {
                Expr::ColumnIdx(schema.index_of(qualifier.as_deref(), name)?)
            }
            Expr::ColumnIdx(i) => {
                if *i >= schema.len() {
                    return Err(EngineError::ColumnNotFound {
                        name: format!("#{i}"),
                        available: schema
                            .fields()
                            .iter()
                            .map(|f| f.qualified_name())
                            .collect(),
                    });
                }
                Expr::ColumnIdx(*i)
            }
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.bind(schema)?),
                op: *op,
                right: Box::new(right.bind(schema)?),
            },
            Expr::Unary { op, expr } => {
                Expr::Unary { op: *op, expr: Box::new(expr.bind(schema)?) }
            }
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(expr.bind(schema)?), negated: *negated }
            }
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.iter().map(|e| e.bind(schema)).collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Case { branches, else_expr } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((c.bind(schema)?, r.bind(schema)?)))
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(e.bind(schema)?)),
                    None => None,
                },
            },
            Expr::Cast { expr, dtype } => {
                Expr::Cast { expr: Box::new(expr.bind(schema)?), dtype: *dtype }
            }
        })
    }

    /// Infer the static result type against a schema (best effort; `Unknown`
    /// where the type depends on runtime values).
    pub fn data_type(&self, schema: &Schema) -> DataType {
        match self {
            Expr::Column { qualifier, name } => schema
                .index_of(qualifier.as_deref(), name)
                .map(|i| schema.field(i).dtype)
                .unwrap_or(DataType::Unknown),
            Expr::ColumnIdx(i) => {
                schema.fields().get(*i).map(|f| f.dtype).unwrap_or(DataType::Unknown)
            }
            Expr::Literal(v) => v.data_type(),
            Expr::Binary { left, op, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    DataType::Bool
                } else if matches!(op, BinaryOp::Concat) {
                    DataType::Text
                } else {
                    match (left.data_type(schema), right.data_type(schema)) {
                        (DataType::Int, DataType::Int) if !matches!(op, BinaryOp::Div) => {
                            DataType::Int
                        }
                        (a, b) if a.is_numeric() || b.is_numeric() => DataType::Float,
                        _ => DataType::Unknown,
                    }
                }
            }
            Expr::Unary { op: UnaryOp::Not, .. } => DataType::Bool,
            Expr::Unary { op: UnaryOp::Neg, expr } => expr.data_type(schema),
            Expr::IsNull { .. } => DataType::Bool,
            Expr::InList { .. } => DataType::Bool,
            Expr::Case { branches, else_expr } => {
                let mut t = match else_expr {
                    Some(e) => e.data_type(schema),
                    None => DataType::Unknown,
                };
                for (_, r) in branches {
                    t = t.unify(r.data_type(schema)).unwrap_or(DataType::Unknown);
                }
                t
            }
            Expr::Cast { dtype, .. } => *dtype,
        }
    }

    /// Evaluate against a tuple. The expression must be bound.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        self.eval_values(tuple.values())
    }

    /// Evaluate against a bare row slice (lets operators evaluate rows
    /// staged in a [`crate::tuple::TupleBatch`] before they become
    /// tuples). The expression must be bound.
    pub fn eval_values(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Column { qualifier, name } => Err(EngineError::UnboundExpression {
                expr: match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                },
            }),
            Expr::ColumnIdx(i) => Ok(row[*i].clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { left, op, right } => {
                // Short-circuiting three-valued AND/OR.
                if matches!(op, BinaryOp::And | BinaryOp::Or) {
                    return eval_logical(*op, left, right, row);
                }
                let l = left.eval_values(row)?;
                let r = right.eval_values(row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval_values(row)?;
                match op {
                    UnaryOp::Not => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(EngineError::TypeMismatch {
                                message: format!("NOT applied to {}", other.data_type()),
                            })
                        }
                    }),
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.checked_neg().ok_or_else(|| {
                            EngineError::Arithmetic { message: "integer overflow".into() }
                        })?)),
                        Value::Float(f) => Value::float(-f),
                        other => Err(EngineError::TypeMismatch {
                            message: format!("negation applied to {}", other.data_type()),
                        }),
                    },
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval_values(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList { expr, list, negated } => {
                let probe = expr.eval_values(row)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = item.eval_values(row)?;
                    match probe.sql_eq(&v) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Case { branches, else_expr } => {
                for (cond, result) in branches {
                    if cond.eval_values(row)?.as_bool() == Some(true) {
                        return result.eval_values(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval_values(row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Cast { expr, dtype } => cast_value(expr.eval_values(row)?, *dtype),
        }
    }

    /// Evaluate as a predicate: `NULL` counts as not-satisfied (SQL WHERE).
    pub fn eval_predicate(&self, tuple: &Tuple) -> Result<bool> {
        self.eval_predicate_values(tuple.values())
    }

    /// Predicate evaluation over a bare row slice.
    pub fn eval_predicate_values(&self, row: &[Value]) -> Result<bool> {
        match self.eval_values(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(EngineError::TypeMismatch {
                message: format!("predicate evaluated to {}", other.data_type()),
            }),
        }
    }

    /// Can evaluating this expression never raise a runtime error?
    ///
    /// Conservative and structural: column references and literals never
    /// raise; `IS NULL` raises iff its operand does; `||` never raises
    /// (any value renders); `CASE` only errors through its
    /// subexpressions (a non-boolean condition is simply "not taken");
    /// `IN` compares with `sql_eq`, which cannot fail. Everything else —
    /// arithmetic (overflow, division by zero), `NOT`/`AND`/`OR`
    /// (non-boolean operands), comparisons (incomparable types), casts,
    /// negation — counts as fallible.
    ///
    /// Used by the optimizer's projection-merge guard and by the
    /// bind-time `Filter(false)` shortcut: an infallible stage can be
    /// dropped without swallowing a runtime error.
    pub fn infallible(&self) -> bool {
        match self {
            Expr::Column { .. } | Expr::ColumnIdx(_) | Expr::Literal(_) => true,
            Expr::IsNull { expr, .. } => expr.infallible(),
            Expr::Binary { op: BinaryOp::Concat, left, right } => {
                left.infallible() && right.infallible()
            }
            Expr::InList { expr, list, .. } => {
                expr.infallible() && list.iter().all(Expr::infallible)
            }
            Expr::Case { branches, else_expr } => {
                branches.iter().all(|(c, r)| c.infallible() && r.infallible())
                    && else_expr.as_ref().is_none_or(|e| e.infallible())
            }
            _ => false,
        }
    }

    /// A copy with every bound column index `i` replaced by `map(i)`
    /// (used when evaluating against a batch that pivoted only a subset
    /// of the source columns).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::ColumnIdx(i) => Expr::ColumnIdx(map(*i)),
            Expr::Column { .. } | Expr::Literal(_) => self.clone(),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.remap_columns(map)),
                op: *op,
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Unary { op, expr } => {
                Expr::Unary { op: *op, expr: Box::new(expr.remap_columns(map)) }
            }
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(expr.remap_columns(map)), negated: *negated }
            }
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(expr.remap_columns(map)),
                list: list.iter().map(|e| e.remap_columns(map)).collect(),
                negated: *negated,
            },
            Expr::Case { branches, else_expr } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.remap_columns(map), r.remap_columns(map)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.remap_columns(map))),
            },
            Expr::Cast { expr, dtype } => {
                Expr::Cast { expr: Box::new(expr.remap_columns(map)), dtype: *dtype }
            }
        }
    }

    /// All column indices referenced by this (bound) expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::ColumnIdx(i) => out.push(*i),
            Expr::Column { .. } | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. } => expr.referenced_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Case { branches, else_expr } => {
                for (c, r) in branches {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
        }
    }
}

/// Kleene three-valued AND/OR with short-circuiting.
fn eval_logical(op: BinaryOp, left: &Expr, right: &Expr, row: &[Value]) -> Result<Value> {
    let to_tv = |v: Value| -> Result<Option<bool>> {
        match v {
            Value::Bool(b) => Ok(Some(b)),
            Value::Null => Ok(None),
            other => Err(EngineError::TypeMismatch {
                message: format!("{op} applied to {}", other.data_type()),
            }),
        }
    };
    let l = to_tv(left.eval_values(row)?)?;
    match (op, l) {
        (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = to_tv(right.eval_values(row)?)?;
    let out = match op {
        BinaryOp::And => match (l, r) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinaryOp::Or => match (l, r) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logical only handles AND/OR"),
    };
    Ok(out.map_or(Value::Null, Value::Bool))
}

/// Evaluate a non-logical binary operator on concrete values. Shared
/// with the vectorised kernels ([`crate::vector`]) so the per-value
/// fallback paths are the scalar evaluator, not a re-implementation.
pub(crate) fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_cmp(r).ok_or_else(|| EngineError::TypeMismatch {
            message: format!("cannot compare {} {} {}", l.data_type(), op, r.data_type()),
        })?;
        use std::cmp::Ordering::*;
        let b = match op {
            BinaryOp::Eq => ord == Equal,
            BinaryOp::NotEq => ord != Equal,
            BinaryOp::Lt => ord == Less,
            BinaryOp::LtEq => ord != Greater,
            BinaryOp::Gt => ord == Greater,
            BinaryOp::GtEq => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    if matches!(op, BinaryOp::Concat) {
        let (a, b) = (l.to_string(), r.to_string());
        return Ok(Value::str(format!("{a}{b}")));
    }
    // Arithmetic.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) if !matches!(op, BinaryOp::Div) => {
            let out = match op {
                BinaryOp::Add => a.checked_add(*b),
                BinaryOp::Sub => a.checked_sub(*b),
                BinaryOp::Mul => a.checked_mul(*b),
                BinaryOp::Mod => {
                    if *b == 0 {
                        return Err(EngineError::Arithmetic {
                            message: "modulo by zero".into(),
                        });
                    }
                    a.checked_rem(*b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int).ok_or_else(|| EngineError::Arithmetic {
                message: format!("integer overflow in {a} {op} {b}"),
            })
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EngineError::TypeMismatch {
                        message: format!(
                            "cannot apply {op} to {} and {}",
                            l.data_type(),
                            r.data_type()
                        ),
                    })
                }
            };
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(EngineError::Arithmetic {
                            message: "division by zero".into(),
                        });
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Err(EngineError::Arithmetic {
                            message: "modulo by zero".into(),
                        });
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Value::float(out)
        }
    }
}

/// Runtime CAST between scalar types. Shared with [`crate::vector`].
pub(crate) fn cast_value(v: Value, target: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let fail = |v: &Value| EngineError::TypeMismatch {
        message: format!("cannot cast {} ({v}) to {target}", v.data_type()),
    };
    Ok(match target {
        DataType::Unknown => v,
        DataType::Bool => match &v {
            Value::Bool(_) => v,
            Value::Str(s) if s.eq_ignore_ascii_case("true") => Value::Bool(true),
            Value::Str(s) if s.eq_ignore_ascii_case("false") => Value::Bool(false),
            _ => return Err(fail(&v)),
        },
        DataType::Int => match &v {
            Value::Int(_) => v,
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Value::Int(*f as i64),
            Value::Str(s) => Value::Int(s.trim().parse::<i64>().map_err(|_| fail(&v))?),
            Value::Bool(b) => Value::Int(i64::from(*b)),
            _ => return Err(fail(&v)),
        },
        DataType::Float => match &v {
            Value::Float(_) => v,
            Value::Int(i) => Value::Float(*i as f64),
            Value::Str(s) => Value::float(s.trim().parse::<f64>().map_err(|_| fail(&v))?)?,
            _ => return Err(fail(&v)),
        },
        DataType::Text => Value::str(v.to_string()),
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            Expr::Column { qualifier: None, name } => write!(f, "{name}"),
            Expr::ColumnIdx(i) => write!(f, "#{i}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(-{expr})"),
            Expr::IsNull { expr, negated: false } => write!(f, "({expr} IS NULL)"),
            Expr::IsNull { expr, negated: true } => write!(f, "({expr} IS NOT NULL)"),
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Case { branches, else_expr } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, dtype } => write!(f, "CAST({expr} AS {dtype})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Text),
        ])
    }

    fn row() -> Tuple {
        Tuple::new(vec![6.into(), Value::Float(0.5), "hi".into()])
    }

    fn eval(e: Expr) -> Value {
        e.bind(&schema()).unwrap().eval(&row()).unwrap()
    }

    #[test]
    fn column_resolution_and_eval() {
        assert_eq!(eval(Expr::col("a")), Value::Int(6));
        assert_eq!(eval(Expr::col("s")), Value::str("hi"));
    }

    #[test]
    fn unbound_column_errors_at_eval() {
        let e = Expr::col("a");
        assert!(matches!(e.eval(&row()), Err(EngineError::UnboundExpression { .. })));
    }

    #[test]
    fn bind_rejects_out_of_range_index() {
        assert!(Expr::ColumnIdx(9).bind(&schema()).is_err());
    }

    #[test]
    fn int_arithmetic_stays_int() {
        let e = Expr::col("a").binary(BinaryOp::Mul, Expr::lit(7i64));
        assert_eq!(eval(e), Value::Int(42));
    }

    #[test]
    fn division_always_floats() {
        let e = Expr::lit(7i64).binary(BinaryOp::Div, Expr::lit(2i64));
        assert_eq!(eval(e), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::lit(7i64).binary(BinaryOp::Div, Expr::lit(0i64));
        assert!(matches!(
            e.bind(&schema()).unwrap().eval(&row()),
            Err(EngineError::Arithmetic { .. })
        ));
    }

    #[test]
    fn integer_overflow_detected() {
        let e = Expr::lit(i64::MAX).binary(BinaryOp::Add, Expr::lit(1i64));
        assert!(e.bind(&schema()).unwrap().eval(&row()).is_err());
    }

    #[test]
    fn mixed_arithmetic_widens() {
        let e = Expr::col("a").binary(BinaryOp::Add, Expr::col("b"));
        assert_eq!(eval(e), Value::Float(6.5));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval(Expr::col("a").binary(BinaryOp::Gt, Expr::lit(5i64))), Value::Bool(true));
        assert_eq!(
            eval(Expr::col("s").binary(BinaryOp::LtEq, Expr::lit("hi"))),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let e = Expr::lit(Value::Null).binary(BinaryOp::Add, Expr::lit(1i64));
        assert_eq!(eval(e), Value::Null);
        let e = Expr::lit(Value::Null).eq(Expr::lit(1i64));
        assert_eq!(eval(e), Value::Null);
    }

    #[test]
    fn three_valued_and_or() {
        let null = || Expr::lit(Value::Null);
        let t = || Expr::lit(true);
        let f_ = || Expr::lit(false);
        assert_eq!(eval(f_().and(null())), Value::Bool(false));
        assert_eq!(eval(null().and(f_())), Value::Bool(false));
        assert_eq!(eval(t().and(null())), Value::Null);
        assert_eq!(eval(t().or(null())), Value::Bool(true));
        assert_eq!(eval(null().or(t())), Value::Bool(true));
        assert_eq!(eval(f_().or(null())), Value::Null);
    }

    #[test]
    fn and_short_circuits_errors_on_right() {
        // false AND (1/0 = 1) must not evaluate the division.
        let div = Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)).eq(Expr::lit(1i64));
        let e = Expr::lit(false).and(div);
        assert_eq!(eval(e), Value::Bool(false));
    }

    #[test]
    fn not_and_neg() {
        assert_eq!(eval(Expr::lit(true).not()), Value::Bool(false));
        let neg = Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::col("b")) };
        assert_eq!(eval(neg), Value::Float(-0.5));
    }

    #[test]
    fn is_null() {
        let e = Expr::IsNull { expr: Box::new(Expr::lit(Value::Null)), negated: false };
        assert_eq!(eval(e), Value::Bool(true));
        let e = Expr::IsNull { expr: Box::new(Expr::col("a")), negated: true };
        assert_eq!(eval(e), Value::Bool(true));
    }

    #[test]
    fn in_list_including_null_semantics() {
        let in_list = |probe: Expr, list: Vec<Expr>, negated| Expr::InList {
            expr: Box::new(probe),
            list,
            negated,
        };
        assert_eq!(
            eval(in_list(Expr::col("a"), vec![Expr::lit(5i64), Expr::lit(6i64)], false)),
            Value::Bool(true)
        );
        // 6 NOT IN (5) -> true
        assert_eq!(
            eval(in_list(Expr::col("a"), vec![Expr::lit(5i64)], true)),
            Value::Bool(true)
        );
        // 6 IN (5, NULL) -> NULL (unknown)
        assert_eq!(
            eval(in_list(Expr::col("a"), vec![Expr::lit(5i64), Expr::lit(Value::Null)], false)),
            Value::Null
        );
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            branches: vec![
                (Expr::col("a").binary(BinaryOp::Lt, Expr::lit(0i64)), Expr::lit("neg")),
                (Expr::col("a").binary(BinaryOp::Gt, Expr::lit(0i64)), Expr::lit("pos")),
            ],
            else_expr: Some(Box::new(Expr::lit("zero"))),
        };
        assert_eq!(eval(e), Value::str("pos"));
    }

    #[test]
    fn case_without_else_defaults_null() {
        let e = Expr::Case {
            branches: vec![(Expr::lit(false), Expr::lit(1i64))],
            else_expr: None,
        };
        assert_eq!(eval(e), Value::Null);
    }

    #[test]
    fn casts() {
        let c = |v: Value, t| cast_value(v, t).unwrap();
        assert_eq!(c(Value::str("42"), DataType::Int), Value::Int(42));
        assert_eq!(c(Value::Int(3), DataType::Float), Value::Float(3.0));
        assert_eq!(c(Value::Float(2.0), DataType::Int), Value::Int(2));
        assert_eq!(c(Value::str("0.25"), DataType::Float), Value::Float(0.25));
        assert_eq!(c(Value::Int(1), DataType::Text), Value::str("1"));
        assert_eq!(c(Value::str("true"), DataType::Bool), Value::Bool(true));
        assert!(cast_value(Value::Float(2.5), DataType::Int).is_err());
        assert!(cast_value(Value::str("xyz"), DataType::Int).is_err());
    }

    #[test]
    fn concat_operator() {
        let e = Expr::col("s").binary(BinaryOp::Concat, Expr::lit("!"));
        assert_eq!(eval(e), Value::str("hi!"));
    }

    #[test]
    fn predicate_treats_null_as_false() {
        let e = Expr::lit(Value::Null).bind(&schema()).unwrap();
        assert!(!e.eval_predicate(&row()).unwrap());
    }

    #[test]
    fn predicate_rejects_non_boolean() {
        let e = Expr::lit(3i64).bind(&schema()).unwrap();
        assert!(e.eval_predicate(&row()).is_err());
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(Expr::col("a").data_type(&s), DataType::Int);
        assert_eq!(
            Expr::col("a").binary(BinaryOp::Add, Expr::col("a")).data_type(&s),
            DataType::Int
        );
        assert_eq!(
            Expr::col("a").binary(BinaryOp::Div, Expr::col("a")).data_type(&s),
            DataType::Float
        );
        assert_eq!(Expr::col("a").eq(Expr::col("a")).data_type(&s), DataType::Bool);
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::col("a")
            .binary(BinaryOp::Add, Expr::col("b"))
            .eq(Expr::col("a"))
            .bind(&schema())
            .unwrap();
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols, vec![0, 1]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::qcol("r1", "player").eq(Expr::lit("Bryant"));
        assert_eq!(e.to_string(), "(r1.player = 'Bryant')");
    }
}
