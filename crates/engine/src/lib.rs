//! # maybms-engine — relational substrate for the MayBMS reproduction
//!
//! The original MayBMS (SIGMOD 2009) is "built entirely inside PostgreSQL"
//! (§2.4): U-relations are ordinary tables, uncertainty-aware queries are
//! rewritten to ordinary relational plans, and the confidence-computation
//! constructs are registered as executor aggregates. This crate is the
//! from-scratch stand-in for that relational backend:
//!
//! * [`types`] — dynamically-typed scalar [`types::Value`] with a total
//!   order and hash (join/group keys), NaN-free floats;
//! * [`schema`] — named, typed, qualifier-aware columns;
//! * [`mod@tuple`] — rows and materialised bag [`tuple::Relation`]s;
//! * [`expr`] — scalar expressions with SQL three-valued logic;
//! * [`column`] — column-major morsels: typed column vectors with null
//!   bitmaps (MonetDB/X100-style);
//! * [`vector`] — vectorised expression kernels over [`column`] batches,
//!   bit-identical to the scalar evaluator (scalar fallback on any
//!   divergence);
//! * [`ops`] — physical operators: σ, π, ⨯, ⋈ (nested-loop and hash),
//!   ∪, distinct, sort, limit, grouped aggregation;
//! * [`plan`] — a composable physical plan tree;
//! * [`optimizer`] — algebraic rewrites: constant folding, filter
//!   merging/pushdown, trivial-plan elimination;
//! * [`catalog`] — in-memory named tables.
//!
//! Everything is deterministic, matching the execution model the paper's
//! rewrites target: large batches run chunk-parallel on the vendored
//! `maybms-par` pool, but operator output (tuple order and values) is
//! identical to the sequential path at any thread count (see [`ops`]).
//!
//! ## Quick example
//!
//! ```
//! use maybms_engine::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .create(
//!         "ft",
//!         rel(
//!             &[("player", DataType::Text), ("p", DataType::Float)],
//!             vec![
//!                 vec!["Bryant".into(), Value::Float(0.8)],
//!                 vec!["Duncan".into(), Value::Float(0.6)],
//!             ],
//!         ),
//!     )
//!     .unwrap();
//! let plan = PhysicalPlan::Filter {
//!     input: Box::new(PhysicalPlan::Scan { table: "ft".into(), alias: None }),
//!     predicate: Expr::col("p").binary(BinaryOp::Gt, Expr::lit(Value::Float(0.7))),
//! };
//! let out = plan.execute(&catalog).unwrap();
//! assert_eq!(out.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod column;
pub mod error;
pub mod expr;
pub mod hash;
pub mod ops;
pub mod optimizer;
pub mod plan;
pub mod schema;
pub mod tuple;
pub mod types;
pub mod vector;

pub use catalog::{columnar_store_default, Catalog};
pub use column::{Column, ColumnBatch, ColumnBuilder, ColumnData, NullMask, StrDict};
pub use error::{EngineError, Result};
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use plan::PhysicalPlan;
pub use schema::{Field, Schema};
pub use tuple::{rel, Relation, Tuple};
pub use types::{DataType, Value};

/// Glob-import convenience: `use maybms_engine::prelude::*;`.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::error::{EngineError, Result};
    pub use crate::expr::{BinaryOp, Expr, UnaryOp};
    pub use crate::ops::{AggCall, AggFunc, ProjectItem, SortKey};
    pub use crate::plan::PhysicalPlan;
    pub use crate::schema::{Field, Schema};
    pub use crate::tuple::{rel, Relation, Tuple};
    pub use crate::types::{DataType, Value};
}
