//! In-memory table catalog.
//!
//! The original MayBMS extends PostgreSQL's system catalog so it "can
//! distinguish between U-relations and standard relational tables" (§2.4).
//! This engine-level catalog stores plain relations under case-insensitive
//! names; `maybms-core` layers the U-relation/t-certain distinction on top.

use std::collections::BTreeMap;

use crate::error::{EngineError, Result};
use crate::tuple::Relation;

/// Is columnar-at-rest catalog storage enabled by default?
///
/// On unless `MAYBMS_COLUMNAR_STORE=0` — table installs ([`Catalog`]
/// registration here, DDL/DML and recovery in `maybms-core`) compact
/// their relations to the column-major, dictionary-encoded at-rest form
/// when set. Read once per process. Orthogonal to `MAYBMS_COLUMNAR`
/// (vectorised *execution*): either can be toggled alone, and all four
/// combinations are bit-identical by the determinism contract.
pub fn columnar_store_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("MAYBMS_COLUMNAR_STORE").map_or(true, |v| v.trim() != "0")
    })
}

/// Compact `relation` to the at-rest representation when the
/// columnar-store gate is on; identity otherwise (and for
/// already-columnar input).
fn install(relation: Relation) -> Relation {
    if columnar_store_default() && !relation.is_columnar() {
        relation.compact()
    } else {
        relation
    }
}

/// A named collection of materialised relations.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Relation>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register a table; errors if the name is taken. Installs the
    /// at-rest (columnar) representation unless gated off — the *one*
    /// pivot a stored table pays.
    pub fn create(&mut self, name: &str, relation: Relation) -> Result<()> {
        let k = Self::key(name);
        if self.tables.contains_key(&k) {
            return Err(EngineError::TableExists { name: name.to_string() });
        }
        self.tables.insert(k, install(relation));
        Ok(())
    }

    /// Replace or register a table (compacted like [`Catalog::create`]).
    pub fn create_or_replace(&mut self, name: &str, relation: Relation) {
        self.tables.insert(Self::key(name), install(relation));
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| EngineError::TableNotFound { name: name.to_string() })
    }

    /// Mutable lookup (for updates).
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| EngineError::TableNotFound { name: name.to_string() })
    }

    /// Remove a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Relation> {
        self.tables
            .remove(&Self::key(name))
            .ok_or_else(|| EngineError::TableNotFound { name: name.to_string() })
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// All table names (lower-cased), sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;
    use crate::types::DataType;

    fn t() -> Relation {
        rel(&[("x", DataType::Int)], vec![vec![1.into()]])
    }

    #[test]
    fn create_get_drop_roundtrip() {
        let mut c = Catalog::new();
        c.create("FT", t()).unwrap();
        assert!(c.contains("ft"));
        assert_eq!(c.get("Ft").unwrap().len(), 1);
        c.drop_table("fT").unwrap();
        assert!(!c.contains("ft"));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut c = Catalog::new();
        c.create("t", t()).unwrap();
        assert!(matches!(c.create("T", t()), Err(EngineError::TableExists { .. })));
    }

    #[test]
    fn create_or_replace_overwrites() {
        let mut c = Catalog::new();
        c.create("t", t()).unwrap();
        c.create_or_replace("t", rel(&[("x", DataType::Int)], vec![]));
        assert_eq!(c.get("t").unwrap().len(), 0);
    }

    #[test]
    fn missing_table_error() {
        let c = Catalog::new();
        assert!(matches!(c.get("nope"), Err(EngineError::TableNotFound { .. })));
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create("b", t()).unwrap();
        c.create("A", t()).unwrap();
        assert_eq!(c.names(), vec!["a", "b"]);
    }
}
