//! In-memory table catalog.
//!
//! The original MayBMS extends PostgreSQL's system catalog so it "can
//! distinguish between U-relations and standard relational tables" (§2.4).
//! This engine-level catalog stores plain relations under case-insensitive
//! names; `maybms-core` layers the U-relation/t-certain distinction on top.

use std::collections::BTreeMap;

use crate::error::{EngineError, Result};
use crate::tuple::Relation;

/// A named collection of materialised relations.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Relation>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register a table; errors if the name is taken.
    pub fn create(&mut self, name: &str, relation: Relation) -> Result<()> {
        let k = Self::key(name);
        if self.tables.contains_key(&k) {
            return Err(EngineError::TableExists { name: name.to_string() });
        }
        self.tables.insert(k, relation);
        Ok(())
    }

    /// Replace or register a table.
    pub fn create_or_replace(&mut self, name: &str, relation: Relation) {
        self.tables.insert(Self::key(name), relation);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| EngineError::TableNotFound { name: name.to_string() })
    }

    /// Mutable lookup (for updates).
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| EngineError::TableNotFound { name: name.to_string() })
    }

    /// Remove a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Relation> {
        self.tables
            .remove(&Self::key(name))
            .ok_or_else(|| EngineError::TableNotFound { name: name.to_string() })
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// All table names (lower-cased), sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;
    use crate::types::DataType;

    fn t() -> Relation {
        rel(&[("x", DataType::Int)], vec![vec![1.into()]])
    }

    #[test]
    fn create_get_drop_roundtrip() {
        let mut c = Catalog::new();
        c.create("FT", t()).unwrap();
        assert!(c.contains("ft"));
        assert_eq!(c.get("Ft").unwrap().len(), 1);
        c.drop_table("fT").unwrap();
        assert!(!c.contains("ft"));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut c = Catalog::new();
        c.create("t", t()).unwrap();
        assert!(matches!(c.create("T", t()), Err(EngineError::TableExists { .. })));
    }

    #[test]
    fn create_or_replace_overwrites() {
        let mut c = Catalog::new();
        c.create("t", t()).unwrap();
        c.create_or_replace("t", rel(&[("x", DataType::Int)], vec![]));
        assert_eq!(c.get("t").unwrap().len(), 0);
    }

    #[test]
    fn missing_table_error() {
        let c = Catalog::new();
        assert!(matches!(c.get("nope"), Err(EngineError::TableNotFound { .. })));
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create("b", t()).unwrap();
        c.create("A", t()).unwrap();
        assert_eq!(c.names(), vec!["a", "b"]);
    }
}
