//! Error types for the relational engine.

use std::fmt;

/// Error raised by engine operations (schema resolution, expression
/// evaluation, operator execution, catalog lookups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced column does not exist in the input schema.
    ColumnNotFound {
        /// The column reference as written (possibly qualified).
        name: String,
        /// The columns that were available.
        available: Vec<String>,
    },
    /// A column reference matched more than one column.
    AmbiguousColumn {
        /// The column reference as written.
        name: String,
    },
    /// A referenced table does not exist in the catalog.
    TableNotFound {
        /// The missing table's name.
        name: String,
    },
    /// A table with this name already exists in the catalog.
    TableExists {
        /// The duplicate table's name.
        name: String,
    },
    /// An expression was applied to values of incompatible types.
    TypeMismatch {
        /// Human-readable description of the offending operation.
        message: String,
    },
    /// Arithmetic failure: division by zero, overflow, or a NaN result.
    Arithmetic {
        /// Human-readable description.
        message: String,
    },
    /// Rows with differing arity/type were supplied where a uniform
    /// schema was required.
    SchemaMismatch {
        /// Human-readable description.
        message: String,
    },
    /// An operator received an invalid configuration (e.g. empty key list
    /// for a hash join).
    InvalidOperator {
        /// Human-readable description.
        message: String,
    },
    /// An unbound column index reached the evaluator.
    UnboundExpression {
        /// The textual form of the unbound expression.
        expr: String,
    },
    /// The statement was aborted by the query governor (cancellation,
    /// deadline, or memory budget) at a cooperative checkpoint.
    Gov(maybms_gov::GovError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ColumnNotFound { name, available } => {
                write!(f, "column `{name}` not found; available: {}", available.join(", "))
            }
            EngineError::AmbiguousColumn { name } => {
                write!(f, "column reference `{name}` is ambiguous")
            }
            EngineError::TableNotFound { name } => write!(f, "table `{name}` not found"),
            EngineError::TableExists { name } => write!(f, "table `{name}` already exists"),
            EngineError::TypeMismatch { message } => write!(f, "type mismatch: {message}"),
            EngineError::Arithmetic { message } => write!(f, "arithmetic error: {message}"),
            EngineError::SchemaMismatch { message } => write!(f, "schema mismatch: {message}"),
            EngineError::InvalidOperator { message } => write!(f, "invalid operator: {message}"),
            EngineError::UnboundExpression { expr } => {
                write!(f, "expression `{expr}` was not bound to a schema before evaluation")
            }
            EngineError::Gov(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<maybms_gov::GovError> for EngineError {
    fn from(g: maybms_gov::GovError) -> EngineError {
        EngineError::Gov(g)
    }
}

/// Convenient result alias used across the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found_lists_alternatives() {
        let e = EngineError::ColumnNotFound {
            name: "player".into(),
            available: vec!["init".into(), "final".into()],
        };
        let s = e.to_string();
        assert!(s.contains("player"));
        assert!(s.contains("init, final"));
    }

    #[test]
    fn display_variants_are_distinct() {
        let errs = [
            EngineError::TableNotFound { name: "ft".into() }.to_string(),
            EngineError::TableExists { name: "ft".into() }.to_string(),
            EngineError::TypeMismatch { message: "int vs text".into() }.to_string(),
            EngineError::Arithmetic { message: "division by zero".into() }.to_string(),
        ];
        for (i, a) in errs.iter().enumerate() {
            for b in errs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&EngineError::AmbiguousColumn { name: "x".into() });
    }
}
