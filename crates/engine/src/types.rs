//! Scalar values and data types.
//!
//! MayBMS (§2.4) stores condition columns as pairs of integers and
//! probabilities as floating-point numbers; data columns carry ordinary SQL
//! values. This module provides the engine's dynamically-typed scalar
//! [`Value`] with a *total* order and hash so values can serve as join and
//! grouping keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EngineError, Result};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float (probabilities, weights).
    Float,
    /// UTF-8 text.
    Text,
    /// The type of `NULL` when nothing better is known.
    Unknown,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "boolean",
            DataType::Int => "bigint",
            DataType::Float => "double precision",
            DataType::Text => "text",
            DataType::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Whether values of this type can be used in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common supertype used when combining two expressions, if any.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Unknown, b) => Some(b),
            (a, Unknown) => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

/// A dynamically-typed scalar value.
///
/// `Value` implements [`Eq`], [`Ord`] and [`Hash`] so it can be used
/// directly as a join or grouping key. Floats are ordered with
/// [`f64::total_cmp`]; `-0.0` is normalised to `0.0` and NaN is rejected at
/// construction ([`Value::float`]) so the order restricted to engine-made
/// values is the familiar numeric one. `NULL` sorts first, as in
/// PostgreSQL's `NULLS FIRST`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text; reference-counted so tuple clones are cheap.
    Str(Arc<str>),
}

impl Value {
    /// Construct a text value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a float value, normalising `-0.0` and rejecting NaN.
    pub fn float(f: f64) -> Result<Value> {
        if f.is_nan() {
            return Err(EngineError::Arithmetic { message: "NaN is not a valid value".into() });
        }
        Ok(Value::Float(if f == 0.0 { 0.0 } else { f }))
    }

    /// The dynamic type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Unknown,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Text,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean, if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an integer, if possible (no float truncation).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: integers widen to floats; `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret as text, if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different variants.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // shares rank with Int: numeric comparison
            Value::Str(_) => 3,
        }
    }

    /// SQL equality: `NULL = x` is unknown, surfaced here as `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self == other)
    }

    /// SQL three-valued comparison; `None` when either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(x.total_cmp(&y))
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.variant_rank(), other.variant_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Numeric rank: compare as floats (exact for |i| < 2^53, which
            // covers every key the system generates).
            (a, b) => {
                let x = a.as_f64().expect("numeric rank implies numeric value");
                let y = b.as_f64().expect("numeric rank implies numeric value");
                x.total_cmp(&y)
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float hash identically when numerically equal, to
            // match `PartialEq` (1 == 1.0 must imply same hash).
            Value::Int(i) => {
                state.write_u8(2);
                canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

/// Bit pattern used for hashing floats: normalises `-0.0` to `0.0` so that
/// hash agrees with `total_cmp`-based equality for engine-made values.
fn canonical_f64_bits(f: f64) -> u64 {
    if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn float_constructor_rejects_nan() {
        assert!(Value::float(f64::NAN).is_err());
        assert!(Value::float(1.5).is_ok());
    }

    #[test]
    fn float_constructor_normalises_negative_zero() {
        let v = Value::float(-0.0).unwrap();
        match v {
            Value::Float(f) => assert!(f.is_sign_positive()),
            _ => panic!("expected float"),
        }
    }

    #[test]
    fn int_float_numeric_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::str("z"), Value::Bool(true)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }

    #[test]
    fn total_order_is_transitive_on_mixed_numerics() {
        let a = Value::Int(1);
        let b = Value::Float(1.5);
        let c = Value::Int(2);
        assert!(a < b && b < c && a < c);
    }

    #[test]
    fn sql_eq_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn sql_cmp_incomparable_types_is_none() {
        assert_eq!(Value::Bool(true).sql_cmp(&Value::str("x")), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("x")), None);
    }

    #[test]
    fn sql_cmp_numeric_across_types() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Some(Ordering::Less));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::str("Bryant").to_string(), "Bryant");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn data_types_unify() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Unknown.unify(DataType::Text), Some(DataType::Text));
        assert_eq!(DataType::Bool.unify(DataType::Int), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }
}
