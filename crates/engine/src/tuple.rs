//! Tuples and materialised relations.

use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::schema::Schema;
use crate::types::Value;

/// A single row of values.
///
/// Stored as a boxed slice: two words instead of three, and rows never grow
/// after construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values.into_boxed_slice())
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into_boxed_slice())
    }

    /// A tuple with only the columns at `indices`, in that order.
    pub fn take(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A fully materialised relation: a schema plus a bag of tuples.
///
/// Relations are *bags* (SQL multiset semantics); `distinct` is an explicit
/// operator.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Relation {
        Relation { schema, tuples: Vec::new() }
    }

    /// Build a relation, checking every tuple's arity against the schema.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Relation> {
        for t in &tuples {
            if t.arity() != schema.len() {
                return Err(EngineError::SchemaMismatch {
                    message: format!(
                        "tuple arity {} does not match schema arity {}",
                        t.arity(),
                        schema.len()
                    ),
                });
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Build without arity checks; caller guarantees uniformity. Used by
    /// operators that construct rows from a known schema.
    pub fn new_unchecked(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Relation {
        Relation { schema, tuples }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The tuples, in storage order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple (arity-checked).
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "tuple arity {} does not match schema arity {}",
                    tuple.arity(),
                    self.schema.len()
                ),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Consume into the tuple vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Replace the schema (e.g. re-qualifying after aliasing). The new
    /// schema must have the same arity.
    pub fn with_schema(self, schema: Arc<Schema>) -> Result<Relation> {
        if schema.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "cannot replace schema of arity {} with arity {}",
                    self.schema.len(),
                    schema.len()
                ),
            });
        }
        Ok(Relation { schema, tuples: self.tuples })
    }

    /// Render as an aligned ASCII table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> =
            self.schema.fields().iter().map(|f| f.qualified_name()).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rows {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("({} rows)\n", rows.len()));
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table_string())
    }
}

/// Build a relation from literal rows; panics on ragged input
/// (test/example helper).
///
/// ```
/// use maybms_engine::{rel, types::DataType};
/// let r = rel(
///     &[("player", DataType::Text), ("pts", DataType::Int)],
///     vec![vec!["Bryant".into(), 81i64.into()]],
/// );
/// assert_eq!(r.len(), 1);
/// ```
pub fn rel(pairs: &[(&str, crate::types::DataType)], rows: Vec<Vec<Value>>) -> Relation {
    let schema = Arc::new(Schema::from_pairs(pairs));
    Relation::new(schema, rows.into_iter().map(Tuple::new).collect())
        .expect("rel(): ragged literal rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample() -> Relation {
        rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 81.into()],
                vec!["James".into(), 56.into()],
            ],
        )
    }

    #[test]
    fn new_checks_arity() {
        let schema = Arc::new(Schema::from_pairs(&[("a", DataType::Int)]));
        let bad = Relation::new(schema, vec![Tuple::new(vec![1.into(), 2.into()])]);
        assert!(matches!(bad, Err(EngineError::SchemaMismatch { .. })));
    }

    #[test]
    fn push_checks_arity() {
        let mut r = sample();
        assert!(r.push(Tuple::new(vec!["X".into()])).is_err());
        assert!(r.push(Tuple::new(vec!["X".into(), 3.into()])).is_ok());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn tuple_concat_and_take() {
        let t1 = Tuple::new(vec![1.into(), 2.into()]);
        let t2 = Tuple::new(vec!["x".into()]);
        let t3 = t1.concat(&t2);
        assert_eq!(t3.arity(), 3);
        assert_eq!(t3.take(&[2, 0]), Tuple::new(vec!["x".into(), 1.into()]));
    }

    #[test]
    fn with_schema_requires_same_arity() {
        let r = sample();
        let narrow = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        assert!(r.clone().with_schema(narrow).is_err());
        let renamed =
            Arc::new(Schema::from_pairs(&[("p", DataType::Text), ("n", DataType::Int)]));
        assert!(r.with_schema(renamed).is_ok());
    }

    #[test]
    fn table_string_contains_headers_and_rows() {
        let s = sample().to_table_string();
        assert!(s.contains("player"));
        assert!(s.contains("Bryant"));
        assert!(s.contains("(2 rows)"));
    }

    #[test]
    fn tuple_display() {
        let t = Tuple::new(vec![1.into(), "x".into()]);
        assert_eq!(t.to_string(), "(1, x)");
    }
}
