//! Tuples and materialised relations.
//!
//! # Sharing invariants (zero-clone execution core)
//!
//! A [`Tuple`] is an immutable **view into a reference-counted value
//! buffer**: `(Arc<[Value]>, start, len)`. Cloning a tuple is a refcount
//! bump, never a copy of the values, so operators are free to route the
//! *same* physical row through filters, sorts, joins, and duplicate
//! elimination without duplicating data. Nothing may mutate a row after
//! construction — there is deliberately no `&mut` accessor. Equality,
//! ordering, and hashing are over the logical value slice, so tuples from
//! different buffers compare like plain rows.
//!
//! Operators that merely choose or reorder rows (σ, sort, limit,
//! distinct, ∪) work on **selection vectors**: they compute the indices
//! of the surviving input rows and materialise the output once via
//! [`Relation::gather`], which clones only `Arc` handles.
//!
//! Operators that construct genuinely new rows (π over expressions, ⋈
//! output concatenation) assemble them through a [`TupleBatch`], which
//! packs many rows into one shared buffer — one `Arc` allocation per
//! [`TupleBatch::CHUNK_VALUES`] values instead of one per row. Because
//! every row of a chunk keeps the whole chunk alive, batches seal their
//! buffer at a bounded chunk size: a selective operator downstream retains
//! at most one chunk per surviving row, not an unbounded ancestor buffer.
//!
//! # Columnar at rest
//!
//! A [`Relation`] is backed by one of two stores: a plain row vector, or
//! a column-major [`ColumnBatch`] with dictionary-encoded string columns
//! (the *at-rest* representation catalog installs produce via
//! [`Relation::compact`]). The row API is preserved as a **lazily
//! materialised view**: [`Relation::tuples`] pivots the columns back to
//! shared-buffer rows once, on first use, and caches them. Mutating
//! entry points decay the store to rows first, so the at-rest batch is
//! immutable for its whole lifetime and scans may borrow column slices
//! from it without re-pivoting per morsel. The two representations are
//! logically identical — `value_at` is the exact inverse of the pivot
//! (variant and float bits included) — which equality, ordering, and the
//! determinism contract all rely on.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::column::ColumnBatch;
use crate::error::{EngineError, Result};
use crate::schema::Schema;
use crate::types::Value;

/// A single row of values: a cheap-to-clone view into a shared buffer
/// (see the module docs for the sharing invariants).
#[derive(Debug, Clone)]
pub struct Tuple {
    buf: Arc<[Value]>,
    start: u32,
    len: u32,
}

impl Tuple {
    /// Build from values (the row owns its whole buffer).
    pub fn new(values: Vec<Value>) -> Tuple {
        let buf: Arc<[Value]> = values.into();
        Tuple { start: 0, len: buf.len() as u32, buf }
    }

    /// Build by copying a slice (one allocation, no intermediate `Vec`).
    pub fn from_slice(values: &[Value]) -> Tuple {
        let buf: Arc<[Value]> = Arc::from(values);
        Tuple { start: 0, len: buf.len() as u32, buf }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.buf[self.start as usize..(self.start + self.len) as usize]
    }

    /// Value at column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values()[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.len as usize
    }

    /// Concatenate two tuples. For bulk join output prefer
    /// [`TupleBatch::push_concat`], which shares one buffer across rows.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(self.values());
        v.extend_from_slice(other.values());
        Tuple::new(v)
    }

    /// A tuple with only the columns at `indices`, in that order.
    pub fn take(&self, indices: &[usize]) -> Tuple {
        let row = self.values();
        Tuple::new(indices.iter().map(|&i| row[i].clone()).collect())
    }
}

// Comparisons and hashing are over the logical slice, independent of which
// buffer backs the row.
impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.values().hash(state);
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Bulk row builder: packs many new rows into shared value buffers.
///
/// Joins and projections construct one fresh row per output tuple;
/// allocating an `Arc` per row dominated their runtime. A `TupleBatch`
/// appends row values into a growing buffer and *seals* it into one shared
/// `Arc<[Value]>` every [`TupleBatch::CHUNK_VALUES`] values; the emitted
/// [`Tuple`]s are views into the sealed chunks. See the module docs for
/// the retention trade-off that motivates chunking.
#[derive(Debug, Default)]
pub struct TupleBatch {
    values: Vec<Value>,
    /// `(start, len)` of each pending row within `values`.
    rows: Vec<(u32, u32)>,
    /// Rows already sealed into shared chunks.
    done: Vec<Tuple>,
    /// Governor working-memory tally: charged per sealed chunk, credited
    /// when the batch is dropped (enforced only at morsel boundaries).
    charge: maybms_gov::MemCharge,
}

impl TupleBatch {
    /// Values per sealed chunk (soft bound; a row never spans chunks).
    pub const CHUNK_VALUES: usize = 4096;

    /// Empty batch.
    pub fn new() -> TupleBatch {
        TupleBatch::default()
    }

    /// Start a new row; subsequent [`TupleBatch::push_value`] calls append
    /// to it. Seals the current chunk when it is full.
    pub fn begin_row(&mut self) {
        if self.values.len() >= Self::CHUNK_VALUES {
            self.seal();
        }
        let start = self.values.len() as u32;
        self.rows.push((start, 0));
    }

    /// Append one value to the row opened by [`TupleBatch::begin_row`].
    pub fn push_value(&mut self, v: Value) {
        self.values.push(v);
        self.rows.last_mut().expect("begin_row before push_value").1 += 1;
    }

    /// Append a full row that is the concatenation of two existing rows
    /// (the join output shape).
    pub fn push_concat(&mut self, left: &Tuple, right: &Tuple) {
        self.begin_row();
        self.values.extend_from_slice(left.values());
        self.values.extend_from_slice(right.values());
        self.rows.last_mut().expect("just begun").1 = left.len + right.len;
    }

    /// The values of the most recently pushed (still pending) row —
    /// lets callers evaluate a predicate on a staged row before deciding
    /// to keep it.
    pub fn last_row(&self) -> &[Value] {
        let &(start, len) = self.rows.last().expect("no pending row");
        &self.values[start as usize..(start + len) as usize]
    }

    /// Drop the most recently pushed row (it must still be pending, i.e.
    /// pushed since the last chunk seal — always true right after a push).
    pub fn abandon_last(&mut self) {
        let (start, _) = self.rows.pop().expect("no pending row");
        self.values.truncate(start as usize);
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.done.len() + self.rows.len()
    }

    /// True iff no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seal the pending chunk: move its values into one shared buffer and
    /// emit the pending rows as views.
    fn seal(&mut self) {
        if self.rows.is_empty() {
            self.values.clear();
            return;
        }
        let buf: Arc<[Value]> = std::mem::take(&mut self.values).into();
        self.charge.add(buf.len() * std::mem::size_of::<Value>());
        for &(start, len) in &self.rows {
            self.done.push(Tuple { buf: buf.clone(), start, len });
        }
        self.rows.clear();
    }

    /// Finish: seal the last chunk and return all rows.
    pub fn finish(mut self) -> Vec<Tuple> {
        self.seal();
        self.done
    }
}

/// The physical backing of a [`Relation`] (see the module docs on
/// columnar at rest).
#[derive(Debug, Clone)]
enum Store {
    /// Row-major: the working representation operators mutate.
    Rows(Vec<Tuple>),
    /// Column-major at rest, shared by cheap `Arc` clones.
    Columnar(Arc<ColumnarRel>),
}

/// An immutable columnar relation body plus its lazily materialised row
/// view. The row view is built at most once per body (all clones share
/// it through the `Arc`).
#[derive(Debug)]
struct ColumnarRel {
    batch: ColumnBatch,
    rows: OnceLock<Vec<Tuple>>,
}

impl ColumnarRel {
    fn new(batch: ColumnBatch) -> ColumnarRel {
        ColumnarRel { batch, rows: OnceLock::new() }
    }

    /// The rows, pivoting the columns back once on first use.
    fn rows(&self) -> &[Tuple] {
        self.rows.get_or_init(|| self.batch.to_tuple_batch().finish())
    }

    fn into_rows(self) -> Vec<Tuple> {
        match self.rows.into_inner() {
            Some(rows) => rows,
            None => self.batch.to_tuple_batch().finish(),
        }
    }
}

// Two bodies are equal iff their batches are (the row cache is derived
// state).
impl PartialEq for ColumnarRel {
    fn eq(&self, other: &ColumnarRel) -> bool {
        self.batch == other.batch
    }
}

/// A fully materialised relation: a schema plus a bag of tuples.
///
/// Relations are *bags* (SQL multiset semantics); `distinct` is an explicit
/// operator.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    store: Store,
}

// Equality is logical — a columnar-at-rest relation equals its row-major
// twin (the pivot is a bijection, so comparing materialised rows is
// exact).
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.tuples() == other.tuples()
    }
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Relation {
        Relation { schema, store: Store::Rows(Vec::new()) }
    }

    /// Build a relation, checking every tuple's arity against the schema.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Relation> {
        for t in &tuples {
            if t.arity() != schema.len() {
                return Err(EngineError::SchemaMismatch {
                    message: format!(
                        "tuple arity {} does not match schema arity {}",
                        t.arity(),
                        schema.len()
                    ),
                });
            }
        }
        Ok(Relation { schema, store: Store::Rows(tuples) })
    }

    /// Build without arity checks; caller guarantees uniformity. Used by
    /// operators that construct rows from a known schema.
    pub fn new_unchecked(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Relation {
        Relation { schema, store: Store::Rows(tuples) }
    }

    /// Build directly over an at-rest column batch. The batch arity must
    /// match the schema; its row count is taken as-is.
    pub fn from_batch(schema: Arc<Schema>, batch: ColumnBatch) -> Result<Relation> {
        if batch.arity() != schema.len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "batch arity {} does not match schema arity {}",
                    batch.arity(),
                    schema.len()
                ),
            });
        }
        Ok(Relation { schema, store: Store::Columnar(Arc::new(ColumnarRel::new(batch))) })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The tuples, in storage order. For a columnar-at-rest relation the
    /// row view is materialised once, on first call, and cached.
    pub fn tuples(&self) -> &[Tuple] {
        match &self.store {
            Store::Rows(t) => t,
            Store::Columnar(c) => c.rows(),
        }
    }

    /// The at-rest column batch, if this relation is stored columnar.
    /// Borrowing it is the zero-pivot scan path: column slices come
    /// straight from storage, no row materialisation.
    pub fn at_rest(&self) -> Option<&ColumnBatch> {
        match &self.store {
            Store::Rows(_) => None,
            Store::Columnar(c) => Some(&c.batch),
        }
    }

    /// True iff the canonical storage is column-major.
    pub fn is_columnar(&self) -> bool {
        matches!(self.store, Store::Columnar(_))
    }

    /// A columnar-at-rest copy of this relation: pivoted once (counted
    /// by the pivot metrics — this is the *one* pivot installs pay) with
    /// string columns dictionary-encoded. Already-columnar input is
    /// returned as a cheap `Arc` clone.
    pub fn compact(&self) -> Relation {
        match &self.store {
            Store::Columnar(_) => self.clone(),
            Store::Rows(tuples) => {
                let cols: Vec<usize> = (0..self.schema.len()).collect();
                let batch =
                    ColumnBatch::pivot(tuples.len(), tuples.iter().map(Tuple::values), &cols)
                        .dict_encode();
                Relation {
                    schema: self.schema.clone(),
                    store: Store::Columnar(Arc::new(ColumnarRel::new(batch))),
                }
            }
        }
    }

    /// The row vector, decaying a columnar store to rows first (the
    /// mutation entry point — the at-rest batch itself never mutates).
    fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        if matches!(self.store, Store::Columnar(_)) {
            let store = std::mem::replace(&mut self.store, Store::Rows(Vec::new()));
            if let Store::Columnar(arc) = store {
                let rows = match Arc::try_unwrap(arc) {
                    Ok(body) => body.into_rows(),
                    Err(arc) => arc.rows().to_vec(),
                };
                self.store = Store::Rows(rows);
            }
        }
        match &mut self.store {
            Store::Rows(t) => t,
            Store::Columnar(_) => unreachable!("just decayed"),
        }
    }

    /// Number of tuples (no row materialisation on columnar stores).
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Rows(t) => t.len(),
            Store::Columnar(c) => c.batch.rows(),
        }
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a tuple (arity-checked).
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "tuple arity {} does not match schema arity {}",
                    tuple.arity(),
                    self.schema.len()
                ),
            });
        }
        self.rows_mut().push(tuple);
        Ok(())
    }

    /// Consume into the tuple vector (materialising the row view of a
    /// columnar store).
    pub fn into_tuples(self) -> Vec<Tuple> {
        match self.store {
            Store::Rows(t) => t,
            Store::Columnar(arc) => match Arc::try_unwrap(arc) {
                Ok(body) => body.into_rows(),
                Err(arc) => arc.rows().to_vec(),
            },
        }
    }

    /// Materialise a selection vector: the relation holding the rows at
    /// `indices`, in that order, sharing the underlying row storage
    /// (clones are `Arc` bumps). Indices may repeat; they must be in
    /// range. A columnar store whose row view was never materialised
    /// gathers its columns instead, staying columnar (dictionaries are
    /// shared, not re-encoded).
    pub fn gather(&self, indices: &[usize]) -> Relation {
        if let Store::Columnar(c) = &self.store {
            if c.rows.get().is_none() {
                debug_assert!(c.batch.rows() <= u32::MAX as usize);
                let sel: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
                return Relation {
                    schema: self.schema.clone(),
                    store: Store::Columnar(Arc::new(ColumnarRel::new(c.batch.gather(&sel)))),
                };
            }
        }
        let tuples = self.tuples();
        Relation {
            schema: self.schema.clone(),
            store: Store::Rows(indices.iter().map(|&i| tuples[i].clone()).collect()),
        }
    }

    /// Replace the schema (e.g. re-qualifying after aliasing). The new
    /// schema must have the same arity.
    pub fn with_schema(self, schema: Arc<Schema>) -> Result<Relation> {
        if schema.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "cannot replace schema of arity {} with arity {}",
                    self.schema.len(),
                    schema.len()
                ),
            });
        }
        Ok(Relation { schema, store: self.store })
    }

    /// Render as an aligned ASCII table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> =
            self.schema.fields().iter().map(|f| f.qualified_name()).collect();
        let rows: Vec<Vec<String>> = self
            .tuples()
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rows {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("({} rows)\n", rows.len()));
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table_string())
    }
}

/// Build a relation from literal rows; panics on ragged input
/// (test/example helper).
///
/// ```
/// use maybms_engine::{rel, types::DataType};
/// let r = rel(
///     &[("player", DataType::Text), ("pts", DataType::Int)],
///     vec![vec!["Bryant".into(), 81i64.into()]],
/// );
/// assert_eq!(r.len(), 1);
/// ```
pub fn rel(pairs: &[(&str, crate::types::DataType)], rows: Vec<Vec<Value>>) -> Relation {
    let schema = Arc::new(Schema::from_pairs(pairs));
    Relation::new(schema, rows.into_iter().map(Tuple::new).collect())
        .expect("rel(): ragged literal rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample() -> Relation {
        rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 81.into()],
                vec!["James".into(), 56.into()],
            ],
        )
    }

    #[test]
    fn new_checks_arity() {
        let schema = Arc::new(Schema::from_pairs(&[("a", DataType::Int)]));
        let bad = Relation::new(schema, vec![Tuple::new(vec![1.into(), 2.into()])]);
        assert!(matches!(bad, Err(EngineError::SchemaMismatch { .. })));
    }

    #[test]
    fn push_checks_arity() {
        let mut r = sample();
        assert!(r.push(Tuple::new(vec!["X".into()])).is_err());
        assert!(r.push(Tuple::new(vec!["X".into(), 3.into()])).is_ok());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn tuple_concat_and_take() {
        let t1 = Tuple::new(vec![1.into(), 2.into()]);
        let t2 = Tuple::new(vec!["x".into()]);
        let t3 = t1.concat(&t2);
        assert_eq!(t3.arity(), 3);
        assert_eq!(t3.take(&[2, 0]), Tuple::new(vec!["x".into(), 1.into()]));
    }

    #[test]
    fn with_schema_requires_same_arity() {
        let r = sample();
        let narrow = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        assert!(r.clone().with_schema(narrow).is_err());
        let renamed =
            Arc::new(Schema::from_pairs(&[("p", DataType::Text), ("n", DataType::Int)]));
        assert!(r.with_schema(renamed).is_ok());
    }

    #[test]
    fn table_string_contains_headers_and_rows() {
        let s = sample().to_table_string();
        assert!(s.contains("player"));
        assert!(s.contains("Bryant"));
        assert!(s.contains("(2 rows)"));
    }

    #[test]
    fn tuple_display() {
        let t = Tuple::new(vec![1.into(), "x".into()]);
        assert_eq!(t.to_string(), "(1, x)");
    }

    #[test]
    fn gather_shares_rows_and_allows_repeats() {
        let r = sample();
        let g = r.gather(&[1, 0, 1]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.tuples()[0], r.tuples()[1]);
        assert_eq!(g.tuples()[2], r.tuples()[1]);
        assert_eq!(g.schema(), r.schema());
    }

    #[test]
    fn batch_rows_equal_individually_built_tuples() {
        let mut batch = TupleBatch::new();
        batch.push_concat(
            &Tuple::new(vec![1.into(), 2.into()]),
            &Tuple::new(vec!["x".into()]),
        );
        batch.begin_row();
        batch.push_value(7.into());
        batch.begin_row(); // empty row
        let rows = batch.finish();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], Tuple::new(vec![1.into(), 2.into(), "x".into()]));
        assert_eq!(rows[1], Tuple::new(vec![7.into()]));
        assert_eq!(rows[2].arity(), 0);
    }

    #[test]
    fn batch_seals_across_chunks() {
        // Force several chunk seals and verify every row survives intact.
        let mut batch = TupleBatch::new();
        let n = TupleBatch::CHUNK_VALUES; // 2 values per row -> n/2 rows per chunk
        for i in 0..n {
            batch.begin_row();
            batch.push_value(Value::Int(i as i64));
            batch.push_value(Value::Int((i * 2) as i64));
        }
        assert_eq!(batch.len(), n);
        let rows = batch.finish();
        assert_eq!(rows.len(), n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.values(), &[Value::Int(i as i64), Value::Int((i * 2) as i64)]);
        }
    }

    #[test]
    fn compact_is_logically_identical_and_columnar() {
        let r = rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 81.into()],
                vec![Value::Null, Value::Null],
                vec!["Bryant".into(), 56.into()],
            ],
        );
        let c = r.compact();
        assert!(c.is_columnar() && !r.is_columnar());
        assert_eq!(c.len(), 3);
        assert_eq!(c, r); // logical equality across representations
        assert_eq!(r, c);
        // The at-rest batch is reachable and the row view is exact.
        let batch = c.at_rest().expect("columnar store");
        assert_eq!(batch.arity(), 2);
        assert_eq!(c.tuples(), r.tuples());
        // Compacting again is an Arc clone of the same body.
        let c2 = c.compact();
        assert!(c2.is_columnar());
        assert_eq!(c2, c);
    }

    #[test]
    fn mutating_a_columnar_relation_decays_to_rows() {
        let mut c = sample().compact();
        assert!(c.is_columnar());
        c.push(Tuple::new(vec!["X".into(), 3.into()])).unwrap();
        assert!(!c.is_columnar());
        assert_eq!(c.len(), 3);
        assert_eq!(c.tuples()[0], sample().tuples()[0]);
        assert_eq!(c.tuples()[2], Tuple::new(vec!["X".into(), 3.into()]));
    }

    #[test]
    fn gather_on_cold_columnar_store_stays_columnar() {
        let r = sample();
        let c = r.compact();
        let g = c.gather(&[1, 0, 1]);
        assert!(g.is_columnar(), "cold columnar gather keeps columns");
        assert_eq!(g, r.gather(&[1, 0, 1]));
        // Once the row view exists, gathering shares row buffers instead.
        let _ = c.tuples();
        let g2 = c.gather(&[1]);
        assert!(!g2.is_columnar());
        assert_eq!(g2.tuples()[0], r.tuples()[1]);
    }

    #[test]
    fn columnar_into_tuples_and_with_schema_keep_store() {
        let c = sample().compact();
        let renamed =
            Arc::new(Schema::from_pairs(&[("p", DataType::Text), ("n", DataType::Int)]));
        let renamed_rel = c.clone().with_schema(renamed).unwrap();
        assert!(renamed_rel.is_columnar(), "with_schema keeps the at-rest store");
        let tuples = c.into_tuples();
        assert_eq!(tuples, sample().into_tuples());
    }

    #[test]
    fn tuples_from_different_buffers_compare_by_value() {
        use std::collections::HashSet;
        let owned = Tuple::new(vec![1.into(), 2.into()]);
        let mut batch = TupleBatch::new();
        batch.begin_row();
        batch.push_value(1.into());
        batch.push_value(2.into());
        let batched = batch.finish().pop().unwrap();
        assert_eq!(owned, batched);
        assert_eq!(owned.cmp(&batched), std::cmp::Ordering::Equal);
        let mut set = HashSet::new();
        set.insert(owned);
        assert!(set.contains(&batched));
    }
}
