//! Physical relational operators over materialised [`Relation`]s.
//!
//! Operators come in two layers:
//! * free functions (this module's submodules) that transform relations
//!   directly — these are what `maybms-urel` composes its parsimonious
//!   translation from;
//! * a composable [`crate::plan::PhysicalPlan`] tree for standalone engine
//!   use.
//!
//! [`Relation`]: crate::tuple::Relation

mod aggregate;
mod filter;
mod join;
mod project;
mod set;
mod sort;

pub use aggregate::{aggregate, group_indices, AggCall, AggFunc};
pub use filter::filter;
pub use join::{cross_join, hash_join, join_key_hash, join_keys_eq, nested_loop_join};
pub use project::{project, ProjectItem};
pub use set::{distinct, union_all};
pub use sort::{limit, sort, SortKey};
