//! Physical relational operators over materialised [`Relation`]s.
//!
//! Operators come in two layers:
//! * free functions (this module's submodules) that transform relations
//!   directly — these are what `maybms-urel` composes its parsimonious
//!   translation from;
//! * a composable [`crate::plan::PhysicalPlan`] tree for standalone engine
//!   use.
//!
//! # Parallel execution
//!
//! The batch-granular operators (σ, hash ⋈, grouping) run chunked on the
//! process-wide `maybms-par` pool when the input is large enough to
//! amortise task overhead; the `*_with` variants take an explicit pool
//! handle and chunk size (used by the determinism property tests to pin
//! 1/2/8-thread pools on tiny inputs). Parallel output — tuple order and
//! values — is *identical* to the sequential path at any thread count:
//! chunk partials are merged in chunk order, and chunk boundaries never
//! influence per-row results.
//!
//! [`Relation`]: crate::tuple::Relation

mod aggregate;
mod filter;
mod join;
mod project;
mod set;
mod sort;

/// Inputs below this many rows run sequentially in the auto-dispatching
/// operators: at engine row costs, a task is only worth queueing once a
/// chunk holds a few thousand rows.
pub const PAR_MIN_ROWS: usize = 8192;

/// Minimum chunk size the auto-dispatching operators hand to the pool.
pub const PAR_MIN_CHUNK: usize = 4096;

pub use aggregate::{
    aggregate, aggregate_schema, aggregate_with, bind_agg_calls, fold_agg_row,
    group_indices, group_indices_with, merge_agg_states, new_agg_states, AggCall, AggFunc,
    AggState, ExactSum,
};
pub use filter::{filter, filter_with};
pub use join::{
    cross_join, hash_join, hash_join_with, join_key_hash, join_keys_eq, nested_loop_join,
    single_key_hash, tuple_key_hash, tuple_keys_eq,
};
pub use project::{project, ProjectItem};
pub use set::{distinct, union_all};
pub use sort::{limit, sort, SortKey};
