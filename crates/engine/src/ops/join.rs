//! Joins: cross product, predicate nested-loop join, and hash equi-join.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::hash::{FastHasher, FastMap};
use crate::tuple::{Relation, TupleBatch};
use crate::types::Value;

/// Hash of a row's key columns, or `None` if any key is NULL (SQL
/// equality: NULL never joins). `Value`'s `Hash` is consistent with its
/// numeric cross-type equality, so equal keys always collide.
pub fn join_key_hash(values: &[Value], keys: &[usize]) -> Option<u64> {
    let mut h = FastHasher::default();
    for &i in keys {
        let v = &values[i];
        if v.is_null() {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Verify hashed candidates: positional key equality between two rows.
pub fn join_keys_eq(
    left: &[Value],
    left_keys: &[usize],
    right: &[Value],
    right_keys: &[usize],
) -> bool {
    left_keys.iter().zip(right_keys).all(|(&i, &j)| left[i] == right[j])
}

/// Cartesian product. Output schema is `left.schema ++ right.schema`.
pub fn cross_join(left: &Relation, right: &Relation) -> Relation {
    let schema = Arc::new(left.schema().join(right.schema()));
    let mut batch = TupleBatch::new();
    for l in left.tuples() {
        for r in right.tuples() {
            batch.push_concat(l, r);
        }
    }
    Relation::new_unchecked(schema, batch.finish())
}

/// Nested-loop inner join with an arbitrary predicate over the combined
/// schema. `None` means no predicate (cross join).
///
/// Candidate rows are staged in a reusable scratch row and evaluated
/// there; only rows passing the predicate enter the output batch.
pub fn nested_loop_join(
    left: &Relation,
    right: &Relation,
    predicate: Option<&Expr>,
) -> Result<Relation> {
    let schema = Arc::new(left.schema().join(right.schema()));
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };
    let mut batch = TupleBatch::new();
    for l in left.tuples() {
        for r in right.tuples() {
            // Stage the candidate row directly in the batch; evaluate the
            // predicate in place and drop the row if it fails — one copy
            // per candidate either way.
            batch.push_concat(l, r);
            if let Some(p) = &bound {
                if !p.eval_predicate_values(batch.last_row())? {
                    batch.abandon_last();
                }
            }
        }
    }
    Ok(Relation::new_unchecked(schema, batch.finish()))
}

/// Hash equi-join on positional key columns (`left_keys[i] = right_keys[i]`).
///
/// NULL keys never match (SQL equality). Builds on the smaller input. The
/// build table maps a 64-bit key hash to build-row indices — no per-row
/// `Vec<Value>` key is ever allocated — and every hash match is verified
/// by comparing the key columns before a row is emitted.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(EngineError::InvalidOperator {
            message: format!(
                "hash join key arity mismatch: {} vs {}",
                left_keys.len(),
                right_keys.len()
            ),
        });
    }
    if left_keys.is_empty() {
        return Err(EngineError::InvalidOperator {
            message: "hash join requires at least one key; use cross_join".into(),
        });
    }
    for &k in left_keys {
        if k >= left.schema().len() {
            return Err(EngineError::InvalidOperator {
                message: format!("left key #{k} out of range"),
            });
        }
    }
    for &k in right_keys {
        if k >= right.schema().len() {
            return Err(EngineError::InvalidOperator {
                message: format!("right key #{k} out of range"),
            });
        }
    }
    let schema = Arc::new(left.schema().join(right.schema()));

    // Build side: the smaller relation.
    let (build, probe, build_keys, probe_keys, build_is_left) = if left.len() <= right.len() {
        (left, right, left_keys, right_keys, true)
    } else {
        (right, left, right_keys, left_keys, false)
    };

    let mut table: FastMap<u64, Vec<usize>> =
        FastMap::with_capacity_and_hasher(build.len(), Default::default());
    for (i, t) in build.tuples().iter().enumerate() {
        if let Some(h) = join_key_hash(t.values(), build_keys) {
            table.entry(h).or_default().push(i);
        }
    }

    let mut batch = TupleBatch::new();
    for p in probe.tuples() {
        let Some(h) = join_key_hash(p.values(), probe_keys) else { continue };
        let Some(candidates) = table.get(&h) else { continue };
        for &bi in candidates {
            let b = &build.tuples()[bi];
            if !join_keys_eq(b.values(), build_keys, p.values(), probe_keys) {
                continue; // hash collision
            }
            if build_is_left {
                batch.push_concat(b, p);
            } else {
                batch.push_concat(p, b);
            }
        }
    }
    Ok(Relation::new_unchecked(schema, batch.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;
    use crate::types::DataType;

    fn players() -> Relation {
        rel(
            &[("player", DataType::Text), ("team", DataType::Text)],
            vec![
                vec!["Bryant".into(), "LAL".into()],
                vec!["Duncan".into(), "SAS".into()],
                vec!["Parker".into(), "SAS".into()],
            ],
        )
    }

    fn teams() -> Relation {
        rel(
            &[("team", DataType::Text), ("city", DataType::Text)],
            vec![
                vec!["LAL".into(), "Los Angeles".into()],
                vec!["SAS".into(), "San Antonio".into()],
            ],
        )
    }

    #[test]
    fn cross_join_sizes() {
        let out = cross_join(&players(), &teams());
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().len(), 4);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let p = players();
        let t = teams();
        let hj = hash_join(&p, &t, &[1], &[0]).unwrap();
        let pred = Expr::qcol("p", "team").eq(Expr::qcol("t", "team"));
        let p2 = p
            .clone()
            .with_schema(Arc::new(p.schema().with_qualifier("p")))
            .unwrap();
        let t2 = t
            .clone()
            .with_schema(Arc::new(t.schema().with_qualifier("t")))
            .unwrap();
        let nl = nested_loop_join(&p2, &t2, Some(&pred)).unwrap();
        assert_eq!(hj.len(), nl.len());
        assert_eq!(hj.len(), 3);
        // Same multiset of rows (ignoring qualifiers).
        let mut a: Vec<_> = hj.tuples().to_vec();
        let mut b: Vec<_> = nl.tuples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn null_keys_never_match() {
        let l = rel(&[("k", DataType::Int)], vec![vec![Value::Null], vec![1.into()]]);
        let r = rel(&[("k", DataType::Int)], vec![vec![Value::Null], vec![1.into()]]);
        let out = hash_join(&l, &r, &[0], &[0]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn key_arity_mismatch_rejected() {
        assert!(hash_join(&players(), &teams(), &[0, 1], &[0]).is_err());
    }

    #[test]
    fn empty_keys_rejected() {
        assert!(hash_join(&players(), &teams(), &[], &[]).is_err());
    }

    #[test]
    fn out_of_range_keys_rejected() {
        assert!(hash_join(&players(), &teams(), &[9], &[0]).is_err());
        assert!(hash_join(&players(), &teams(), &[0], &[9]).is_err());
    }

    #[test]
    fn duplicate_build_keys_produce_all_pairs() {
        let l = rel(&[("k", DataType::Int)], vec![vec![1.into()], vec![1.into()]]);
        let r = rel(&[("k", DataType::Int)], vec![vec![1.into()], vec![1.into()]]);
        let out = hash_join(&l, &r, &[0], &[0]).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn nested_loop_with_non_equi_predicate() {
        let l = rel(&[("a", DataType::Int)], vec![vec![1.into()], vec![5.into()]]);
        let r = rel(&[("b", DataType::Int)], vec![vec![3.into()]]);
        let pred = Expr::col("a").binary(crate::expr::BinaryOp::Lt, Expr::col("b"));
        let out = nested_loop_join(&l, &r, Some(&pred)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), &Value::Int(1));
    }
}
