//! Joins: cross product, predicate nested-loop join, and hash equi-join.
//!
//! The hash join runs in two batch-granular phases that parallelise on
//! the `maybms-par` pool for large inputs (see [`hash_join_with`]): the
//! build table is partitioned by key hash, and the probe side is chunked
//! by row range. Both phases preserve the sequential output exactly —
//! same tuples, same order — at any thread count.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use maybms_par::ThreadPool;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::hash::{fast_hash_one, FastHasher, FastMap};
use crate::tuple::{Relation, Tuple, TupleBatch};
use crate::types::Value;

/// Hash of a row's key columns, or `None` if any key is NULL (SQL
/// equality: NULL never joins). `Value`'s `Hash` is consistent with its
/// numeric cross-type equality, so equal keys always collide.
pub fn join_key_hash(values: &[Value], keys: &[usize]) -> Option<u64> {
    let mut h = FastHasher::default();
    for &i in keys {
        let v = &values[i];
        if v.is_null() {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Columnar single-key hash: hash one key `Value` directly, with no
/// per-row key-slice dispatch. Produces the same hash as
/// [`join_key_hash`] over a one-element key list, so the two paths can be
/// mixed freely across the build and probe sides.
#[inline]
pub fn single_key_hash(v: &Value) -> Option<u64> {
    if v.is_null() {
        None
    } else {
        Some(fast_hash_one(v))
    }
}

/// Verify hashed candidates: positional key equality between two rows.
pub fn join_keys_eq(
    left: &[Value],
    left_keys: &[usize],
    right: &[Value],
    right_keys: &[usize],
) -> bool {
    left_keys.iter().zip(right_keys).all(|(&i, &j)| left[i] == right[j])
}

/// Cartesian product. Output schema is `left.schema ++ right.schema`.
pub fn cross_join(left: &Relation, right: &Relation) -> Relation {
    let schema = Arc::new(left.schema().join(right.schema()));
    let mut batch = TupleBatch::new();
    for l in left.tuples() {
        for r in right.tuples() {
            batch.push_concat(l, r);
        }
    }
    Relation::new_unchecked(schema, batch.finish())
}

/// Nested-loop inner join with an arbitrary predicate over the combined
/// schema. `None` means no predicate (cross join).
///
/// Candidate rows are staged in a reusable scratch row and evaluated
/// there; only rows passing the predicate enter the output batch.
pub fn nested_loop_join(
    left: &Relation,
    right: &Relation,
    predicate: Option<&Expr>,
) -> Result<Relation> {
    let schema = Arc::new(left.schema().join(right.schema()));
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };
    let mut batch = TupleBatch::new();
    let mut gov = maybms_gov::Ticker::new();
    for l in left.tuples() {
        for r in right.tuples() {
            // The output is quadratic in the inputs — without a per-row
            // governor tick a cross product over two in-RAM relations
            // could neither be cancelled nor stopped by a memory budget.
            gov.tick()?;
            // Stage the candidate row directly in the batch; evaluate the
            // predicate in place and drop the row if it fails — one copy
            // per candidate either way.
            batch.push_concat(l, r);
            if let Some(p) = &bound {
                if !p.eval_predicate_values(batch.last_row())? {
                    batch.abandon_last();
                }
            }
        }
    }
    Ok(Relation::new_unchecked(schema, batch.finish()))
}

/// Key-hash dispatch shared by build and probe (and by the U-relational
/// joins in `maybms-urel`): columnar for a single key column, generic
/// slice walk otherwise.
#[inline]
pub fn tuple_key_hash(t: &Tuple, keys: &[usize]) -> Option<u64> {
    if let [k] = keys {
        single_key_hash(t.value(*k))
    } else {
        join_key_hash(t.values(), keys)
    }
}

/// Key-equality dispatch mirroring [`tuple_key_hash`].
#[inline]
pub fn tuple_keys_eq(
    build: &Tuple,
    build_keys: &[usize],
    probe: &Tuple,
    probe_keys: &[usize],
) -> bool {
    if let ([bk], [pk]) = (build_keys, probe_keys) {
        build.value(*bk) == probe.value(*pk)
    } else {
        join_keys_eq(build.values(), build_keys, probe.values(), probe_keys)
    }
}

fn validate_keys(left: &Relation, right: &Relation, left_keys: &[usize], right_keys: &[usize]) -> Result<()> {
    if left_keys.len() != right_keys.len() {
        return Err(EngineError::InvalidOperator {
            message: format!(
                "hash join key arity mismatch: {} vs {}",
                left_keys.len(),
                right_keys.len()
            ),
        });
    }
    if left_keys.is_empty() {
        return Err(EngineError::InvalidOperator {
            message: "hash join requires at least one key; use cross_join".into(),
        });
    }
    for &k in left_keys {
        if k >= left.schema().len() {
            return Err(EngineError::InvalidOperator {
                message: format!("left key #{k} out of range"),
            });
        }
    }
    for &k in right_keys {
        if k >= right.schema().len() {
            return Err(EngineError::InvalidOperator {
                message: format!("right key #{k} out of range"),
            });
        }
    }
    Ok(())
}

/// Hash equi-join on positional key columns (`left_keys[i] = right_keys[i]`).
///
/// NULL keys never match (SQL equality). **Builds on the right input and
/// probes with the left** — the fixed convention shared by the whole
/// stack (the U-relational joins in `maybms-urel` and the morsel-driven
/// probes in `maybms-pipe`): output rows are emitted in left-row order
/// with right-side candidates in build (ascending row) order. Fixing the
/// build side at plan time is what lets a streaming executor probe the
/// left input morsel-by-morsel and still reproduce this output
/// bit-for-bit; callers that know the cardinalities put the smaller
/// input on the right. The build table maps a 64-bit key hash to
/// build-row indices — no per-row `Vec<Value>` key is ever allocated —
/// and every hash match is verified by comparing the key columns before
/// a row is emitted. Single-column keys hash columnar, straight from the
/// key `Value`. Large inputs dispatch to the chunk-parallel path
/// ([`hash_join_with`]) on the process-wide pool; output is identical
/// either way.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Relation> {
    if left.len() + right.len() >= super::PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return hash_join_with(left, right, left_keys, right_keys, &pool, super::PAR_MIN_CHUNK);
        }
    }
    validate_keys(left, right, left_keys, right_keys)?;
    let schema = Arc::new(left.schema().join(right.schema()));

    let mut table: FastMap<u64, Vec<usize>> =
        FastMap::with_capacity_and_hasher(right.len(), Default::default());
    for (i, t) in right.tuples().iter().enumerate() {
        if let Some(h) = tuple_key_hash(t, right_keys) {
            table.entry(h).or_default().push(i);
        }
    }

    let mut batch = TupleBatch::new();
    for l in left.tuples() {
        let Some(h) = tuple_key_hash(l, left_keys) else { continue };
        let Some(candidates) = table.get(&h) else { continue };
        for &ri in candidates {
            let r = &right.tuples()[ri];
            if !tuple_keys_eq(r, right_keys, l, left_keys) {
                continue; // hash collision
            }
            batch.push_concat(l, r);
        }
    }
    Ok(Relation::new_unchecked(schema, batch.finish()))
}

/// [`hash_join`] on an explicit pool: hash-partitioned parallel build
/// over the right input, chunked parallel probe over the left.
///
/// * **Build**: build-row key hashes are computed chunk-parallel, then
///   each of `threads` partitions owns the hashes with `h mod P == p` and
///   inserts its rows in ascending row order — the same candidate order
///   the sequential single-table build produces.
/// * **Probe**: probe rows are chunked by range; each chunk emits its
///   matches into a chunk-local [`TupleBatch`] and the chunk outputs are
///   concatenated in chunk order — the sequential probe order.
///
/// The output relation is therefore tuple-for-tuple identical to the
/// sequential join at any thread count and any chunk size.
pub fn hash_join_with(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
    pool: &ThreadPool,
    min_chunk: usize,
) -> Result<Relation> {
    validate_keys(left, right, left_keys, right_keys)?;
    let schema = Arc::new(left.schema().join(right.schema()));

    // Phase 1: partitioned build — partition p owns hashes ≡ p (mod P).
    // The chunked hash pass pre-buckets (hash, row) pairs by partition,
    // so each partition task touches only its own pairs (total build
    // work stays O(rows), not O(threads · rows)). Chunks are visited in
    // chunk (= row) order and rows within a chunk are ascending, so each
    // bucket's candidate list reproduces the sequential insertion order.
    let parts = if pool.threads() > 1 && right.len() >= min_chunk {
        pool.threads()
    } else {
        1
    };
    let chunk = maybms_par::auto_chunk(right.len(), pool.threads(), min_chunk);
    let bucketed: Vec<Vec<Vec<(u64, u32)>>> =
        pool.par_map_chunks(right.len(), chunk, |range| {
            let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); parts];
            for i in range {
                if let Some(h) = tuple_key_hash(&right.tuples()[i], right_keys) {
                    buckets[(h as usize) % parts].push((h, i as u32));
                }
            }
            buckets
        });
    let tables: Vec<FastMap<u64, Vec<usize>>> =
        pool.par_map((0..parts).collect::<Vec<_>>(), |p| {
            let mut table: FastMap<u64, Vec<usize>> = FastMap::with_capacity_and_hasher(
                right.len() / parts + 1,
                Default::default(),
            );
            for chunk_buckets in &bucketed {
                for &(h, i) in &chunk_buckets[p] {
                    table.entry(h).or_default().push(i as usize);
                }
            }
            table
        });

    // Phase 2: chunked probe over the left input.
    let chunk = maybms_par::auto_chunk(left.len(), pool.threads(), min_chunk);
    let outputs: Vec<Vec<Tuple>> = pool.par_map_chunks(left.len(), chunk, |range| {
        let mut batch = TupleBatch::new();
        for li in range {
            let l = &left.tuples()[li];
            let Some(h) = tuple_key_hash(l, left_keys) else { continue };
            let Some(candidates) = tables[(h as usize) % parts].get(&h) else { continue };
            for &ri in candidates {
                let r = &right.tuples()[ri];
                if !tuple_keys_eq(r, right_keys, l, left_keys) {
                    continue; // hash collision
                }
                batch.push_concat(l, r);
            }
        }
        batch.finish()
    });
    let mut tuples = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for o in outputs {
        tuples.extend(o);
    }
    Ok(Relation::new_unchecked(schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;
    use crate::types::DataType;

    fn players() -> Relation {
        rel(
            &[("player", DataType::Text), ("team", DataType::Text)],
            vec![
                vec!["Bryant".into(), "LAL".into()],
                vec!["Duncan".into(), "SAS".into()],
                vec!["Parker".into(), "SAS".into()],
            ],
        )
    }

    fn teams() -> Relation {
        rel(
            &[("team", DataType::Text), ("city", DataType::Text)],
            vec![
                vec!["LAL".into(), "Los Angeles".into()],
                vec!["SAS".into(), "San Antonio".into()],
            ],
        )
    }

    #[test]
    fn cross_join_sizes() {
        let out = cross_join(&players(), &teams());
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().len(), 4);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let p = players();
        let t = teams();
        let hj = hash_join(&p, &t, &[1], &[0]).unwrap();
        let pred = Expr::qcol("p", "team").eq(Expr::qcol("t", "team"));
        let p2 = p
            .clone()
            .with_schema(Arc::new(p.schema().with_qualifier("p")))
            .unwrap();
        let t2 = t
            .clone()
            .with_schema(Arc::new(t.schema().with_qualifier("t")))
            .unwrap();
        let nl = nested_loop_join(&p2, &t2, Some(&pred)).unwrap();
        assert_eq!(hj.len(), nl.len());
        assert_eq!(hj.len(), 3);
        // Same multiset of rows (ignoring qualifiers).
        let mut a: Vec<_> = hj.tuples().to_vec();
        let mut b: Vec<_> = nl.tuples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn null_keys_never_match() {
        let l = rel(&[("k", DataType::Int)], vec![vec![Value::Null], vec![1.into()]]);
        let r = rel(&[("k", DataType::Int)], vec![vec![Value::Null], vec![1.into()]]);
        let out = hash_join(&l, &r, &[0], &[0]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn key_arity_mismatch_rejected() {
        assert!(hash_join(&players(), &teams(), &[0, 1], &[0]).is_err());
    }

    #[test]
    fn empty_keys_rejected() {
        assert!(hash_join(&players(), &teams(), &[], &[]).is_err());
    }

    #[test]
    fn out_of_range_keys_rejected() {
        assert!(hash_join(&players(), &teams(), &[9], &[0]).is_err());
        assert!(hash_join(&players(), &teams(), &[0], &[9]).is_err());
    }

    #[test]
    fn duplicate_build_keys_produce_all_pairs() {
        let l = rel(&[("k", DataType::Int)], vec![vec![1.into()], vec![1.into()]]);
        let r = rel(&[("k", DataType::Int)], vec![vec![1.into()], vec![1.into()]]);
        let out = hash_join(&l, &r, &[0], &[0]).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn nested_loop_with_non_equi_predicate() {
        let l = rel(&[("a", DataType::Int)], vec![vec![1.into()], vec![5.into()]]);
        let r = rel(&[("b", DataType::Int)], vec![vec![3.into()]]);
        let pred = Expr::col("a").binary(crate::expr::BinaryOp::Lt, Expr::col("b"));
        let out = nested_loop_join(&l, &r, Some(&pred)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), &Value::Int(1));
    }

    #[test]
    fn single_key_hash_agrees_with_slice_hash() {
        for v in [Value::Int(7), Value::Float(7.0), Value::str("x"), Value::Bool(true)] {
            assert_eq!(single_key_hash(&v), join_key_hash(std::slice::from_ref(&v), &[0]));
        }
        assert_eq!(single_key_hash(&Value::Null), None);
    }

    #[test]
    fn parallel_join_identical_to_sequential() {
        // Keys with duplicates, NULLs, and cross-type (1 == 1.0) matches.
        let mk = |n: usize, stride: i64| -> Relation {
            rel(
                &[("k", DataType::Unknown), ("v", DataType::Int)],
                (0..n)
                    .map(|i| {
                        let k = match i % 5 {
                            0 => Value::Null,
                            1 => Value::Float((i as i64 % stride) as f64),
                            _ => Value::Int(i as i64 % stride),
                        };
                        vec![k, Value::Int(i as i64)]
                    })
                    .collect(),
            )
        };
        let l = mk(97, 7);
        let r = mk(131, 7);
        let seq = hash_join(&l, &r, &[0], &[0]).unwrap();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let par = hash_join_with(&l, &r, &[0], &[0], &pool, 8).unwrap();
            assert_eq!(seq.tuples(), par.tuples(), "threads = {threads}");
        }
    }
}
