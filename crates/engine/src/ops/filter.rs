//! Selection (σ).

use maybms_par::ThreadPool;

use crate::error::Result;
use crate::expr::Expr;
use crate::tuple::Relation;

/// Keep tuples satisfying `predicate` (NULL counts as not satisfied).
///
/// The predicate may be unbound; it is bound against the input schema
/// here. Runs as a selection vector: surviving row indices are collected
/// first and the output is gathered once, sharing row storage with the
/// input. Large inputs evaluate the selection vector chunk-parallel on
/// the process-wide pool; the output is identical to the sequential scan.
pub fn filter(input: &Relation, predicate: &Expr) -> Result<Relation> {
    if input.len() >= super::PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return filter_with(input, predicate, &pool, super::PAR_MIN_CHUNK);
        }
    }
    let bound = predicate.bind(input.schema())?;
    let mut sel = Vec::new();
    for (i, t) in input.tuples().iter().enumerate() {
        if bound.eval_predicate(t)? {
            sel.push(i);
        }
    }
    Ok(input.gather(&sel))
}

/// [`filter`] on an explicit pool with an explicit minimum chunk size.
///
/// Each chunk of rows evaluates the predicate into a chunk-local
/// selection vector; chunk vectors are concatenated in chunk order, so
/// the gathered output equals the sequential scan row-for-row. An
/// evaluation error in the earliest failing row wins, as it does
/// sequentially.
pub fn filter_with(
    input: &Relation,
    predicate: &Expr,
    pool: &ThreadPool,
    min_chunk: usize,
) -> Result<Relation> {
    let bound = predicate.bind(input.schema())?;
    let chunk = maybms_par::auto_chunk(input.len(), pool.threads(), min_chunk);
    let partials: Vec<Result<Vec<usize>>> =
        pool.par_map_chunks(input.len(), chunk, |range| {
            let mut sel = Vec::new();
            for i in range {
                if bound.eval_predicate(&input.tuples()[i])? {
                    sel.push(i);
                }
            }
            Ok(sel)
        });
    let mut sel = Vec::new();
    for p in partials {
        sel.extend(p?);
    }
    Ok(input.gather(&sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::tuple::rel;
    use crate::types::{DataType, Value};

    fn nums() -> Relation {
        rel(
            &[("x", DataType::Int)],
            vec![vec![1.into()], vec![2.into()], vec![3.into()], vec![Value::Null]],
        )
    }

    #[test]
    fn keeps_matching_rows() {
        let out = filter(&nums(), &Expr::col("x").binary(BinaryOp::Gt, Expr::lit(1i64))).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_comparison_filters_out() {
        // x > 1 on NULL row is unknown -> dropped.
        let out = filter(&nums(), &Expr::col("x").binary(BinaryOp::Gt, Expr::lit(0i64))).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unknown_column_is_an_error() {
        assert!(filter(&nums(), &Expr::col("nope").eq(Expr::lit(1i64))).is_err());
    }

    #[test]
    fn preserves_schema() {
        let r = nums();
        let out = filter(&r, &Expr::lit(true)).unwrap();
        assert_eq!(out.schema(), r.schema());
        assert_eq!(out.len(), r.len());
    }
}
