//! Bag union and duplicate elimination.

use crate::error::{EngineError, Result};
use crate::hash::FastSet;
use crate::tuple::Relation;

/// SQL `UNION ALL`: concatenates inputs. All inputs must have the same
/// arity and compatible column types; the first input's schema is kept.
pub fn union_all(inputs: &[&Relation]) -> Result<Relation> {
    let Some(first) = inputs.first() else {
        return Err(EngineError::InvalidOperator {
            message: "union of zero inputs".into(),
        });
    };
    let schema = first.schema().clone();
    for r in &inputs[1..] {
        if r.schema().len() != schema.len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "UNION arity mismatch: {} vs {}",
                    schema.len(),
                    r.schema().len()
                ),
            });
        }
        for (a, b) in schema.fields().iter().zip(r.schema().fields()) {
            if a.dtype.unify(b.dtype).is_none() {
                return Err(EngineError::SchemaMismatch {
                    message: format!(
                        "UNION column type mismatch: {} vs {}",
                        a.dtype, b.dtype
                    ),
                });
            }
        }
    }
    let mut tuples = Vec::with_capacity(inputs.iter().map(|r| r.len()).sum());
    for r in inputs {
        tuples.extend(r.tuples().iter().cloned());
    }
    Ok(Relation::new_unchecked(schema, tuples))
}

/// Duplicate elimination, preserving first occurrence order.
///
/// A columnar-at-rest input whose single column is dictionary-encoded
/// dedups on the u32 codes through a dense seen-bitmap — no row
/// materialisation, no string hashing (codes are equal iff the strings
/// are: the dictionary interns). Otherwise dedups tuples by reference
/// into a selection vector — no tuple is cloned until the surviving rows
/// are gathered (and that clone is an `Arc` bump).
pub fn distinct(input: &Relation) -> Relation {
    if let Some(batch) = input.at_rest() {
        if let [col] = batch.columns() {
            if let crate::column::ColumnData::Dict { codes, dict } = col.data() {
                let mut seen = vec![false; dict.len()];
                let mut seen_null = false;
                let mut sel = Vec::new();
                for (i, &c) in codes.iter().enumerate() {
                    if col.is_null(i) {
                        if !seen_null {
                            seen_null = true;
                            sel.push(i);
                        }
                    } else if !seen[c as usize] {
                        seen[c as usize] = true;
                        sel.push(i);
                    }
                }
                return input.gather(&sel);
            }
        }
    }
    let mut seen = FastSet::with_capacity_and_hasher(input.len(), Default::default());
    let mut sel = Vec::new();
    for (i, t) in input.tuples().iter().enumerate() {
        if seen.insert(t) {
            sel.push(i);
        }
    }
    input.gather(&sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;
    use crate::types::{DataType, Value};

    #[test]
    fn union_all_keeps_duplicates() {
        let a = rel(&[("x", DataType::Int)], vec![vec![1.into()]]);
        let b = rel(&[("x", DataType::Int)], vec![vec![1.into()], vec![2.into()]]);
        let out = union_all(&[&a, &b]).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let a = rel(&[("x", DataType::Int)], vec![]);
        let b = rel(&[("x", DataType::Int), ("y", DataType::Int)], vec![]);
        assert!(union_all(&[&a, &b]).is_err());
    }

    #[test]
    fn union_type_mismatch_rejected() {
        let a = rel(&[("x", DataType::Int)], vec![]);
        let b = rel(&[("x", DataType::Text)], vec![]);
        assert!(union_all(&[&a, &b]).is_err());
    }

    #[test]
    fn union_int_float_unifies() {
        let a = rel(&[("x", DataType::Int)], vec![vec![1.into()]]);
        let b = rel(&[("x", DataType::Float)], vec![vec![Value::Float(0.5)]]);
        assert_eq!(union_all(&[&a, &b]).unwrap().len(), 2);
    }

    #[test]
    fn union_of_zero_inputs_is_error() {
        assert!(union_all(&[]).is_err());
    }

    #[test]
    fn distinct_removes_duplicates_keeps_order() {
        let r = rel(
            &[("x", DataType::Int)],
            vec![vec![2.into()], vec![1.into()], vec![2.into()], vec![1.into()]],
        );
        let out = distinct(&r);
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].value(0), &Value::Int(2));
        assert_eq!(out.tuples()[1].value(0), &Value::Int(1));
    }

    #[test]
    fn distinct_on_dict_encoded_columnar_store_matches_row_path() {
        let r = rel(
            &[("s", DataType::Text)],
            vec![
                vec!["b".into()],
                vec![Value::Null],
                vec!["a".into()],
                vec!["b".into()],
                vec![Value::Null],
                vec!["a".into()],
                vec!["c".into()],
            ],
        );
        let c = r.compact();
        assert!(c.is_columnar());
        let got = distinct(&c);
        let want = distinct(&r);
        assert_eq!(got.tuples(), want.tuples());
        assert_eq!(got.len(), 4); // b, NULL, a, c — first-seen order
    }

    #[test]
    fn distinct_treats_numeric_equal_values_as_duplicates() {
        let r = rel(
            &[("x", DataType::Float)],
            vec![vec![Value::Int(1)], vec![Value::Float(1.0)]],
        );
        assert_eq!(distinct(&r).len(), 1);
    }
}
