//! Sorting and LIMIT.

use crate::error::Result;
use crate::expr::Expr;
use crate::tuple::Relation;
use crate::types::Value;

/// One ORDER BY key.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Key expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key on an expression.
    pub fn asc(expr: Expr) -> SortKey {
        SortKey { expr, ascending: true }
    }

    /// Descending key on an expression.
    pub fn desc(expr: Expr) -> SortKey {
        SortKey { expr, ascending: false }
    }
}

/// Stable sort by the given keys (NULLs first, engine total order).
///
/// Sorts a selection vector decorated with the precomputed key values and
/// gathers the permuted rows once at the end — row data is never moved or
/// copied during the sort itself.
pub fn sort(input: &Relation, keys: &[SortKey]) -> Result<Relation> {
    let bound: Vec<(Expr, bool)> = keys
        .iter()
        .map(|k| Ok((k.expr.bind(input.schema())?, k.ascending)))
        .collect::<Result<_>>()?;
    // Precompute key values so evaluation errors surface before sorting.
    let mut decorated: Vec<(Vec<Value>, usize)> = Vec::with_capacity(input.len());
    for (i, t) in input.tuples().iter().enumerate() {
        let kv: Vec<Value> = bound.iter().map(|(e, _)| e.eval(t)).collect::<Result<_>>()?;
        decorated.push((kv, i));
    }
    decorated.sort_by(|(ka, ia), (kb, ib)| {
        for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(&bound) {
            let ord = a.cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        ia.cmp(ib) // stability tiebreak
    });
    let sel: Vec<usize> = decorated.into_iter().map(|(_, i)| i).collect();
    Ok(input.gather(&sel))
}

/// Keep the first `n` tuples.
pub fn limit(input: &Relation, n: usize) -> Relation {
    let sel: Vec<usize> = (0..input.len().min(n)).collect();
    input.gather(&sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;
    use crate::types::DataType;

    fn scores() -> Relation {
        rel(
            &[("p", DataType::Text), ("s", DataType::Int)],
            vec![
                vec!["b".into(), 2.into()],
                vec!["a".into(), 3.into()],
                vec!["c".into(), 2.into()],
            ],
        )
    }

    #[test]
    fn sorts_ascending() {
        let out = sort(&scores(), &[SortKey::asc(Expr::col("s"))]).unwrap();
        let vals: Vec<i64> =
            out.tuples().iter().map(|t| t.value(1).as_int().unwrap()).collect();
        assert_eq!(vals, vec![2, 2, 3]);
    }

    #[test]
    fn descending_and_secondary_key() {
        let out = sort(
            &scores(),
            &[SortKey::desc(Expr::col("s")), SortKey::asc(Expr::col("p"))],
        )
        .unwrap();
        let names: Vec<&str> =
            out.tuples().iter().map(|t| t.value(0).as_str().unwrap()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn sort_is_stable() {
        let out = sort(&scores(), &[SortKey::asc(Expr::col("s"))]).unwrap();
        // "b" appeared before "c" in the input; both have s = 2.
        let names: Vec<&str> =
            out.tuples().iter().map(|t| t.value(0).as_str().unwrap()).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&scores(), 2).len(), 2);
        assert_eq!(limit(&scores(), 0).len(), 0);
        assert_eq!(limit(&scores(), 99).len(), 3);
    }
}
