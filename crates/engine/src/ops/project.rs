//! Projection (π) with computed expressions — SQL `SELECT` list semantics
//! (no implicit duplicate elimination).

use std::sync::Arc;

use crate::error::Result;
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use crate::tuple::{Relation, TupleBatch};

/// One output column: an expression and its output name.
#[derive(Debug, Clone)]
pub struct ProjectItem {
    /// Expression computing the column.
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl ProjectItem {
    /// Construct an item.
    pub fn new(expr: Expr, name: impl Into<String>) -> ProjectItem {
        ProjectItem { expr, name: name.into() }
    }

    /// A bare column kept under its own name.
    pub fn col(name: impl Into<String>) -> ProjectItem {
        let name = name.into();
        ProjectItem { expr: Expr::col(name.clone()), name }
    }
}

/// Evaluate `items` for every tuple.
pub fn project(input: &Relation, items: &[ProjectItem]) -> Result<Relation> {
    let in_schema = input.schema();
    let bound: Vec<(Expr, Field)> = items
        .iter()
        .map(|item| {
            let e = item.expr.bind(in_schema)?;
            let dtype = e.data_type(in_schema);
            Ok((e, Field::new(item.name.clone(), dtype)))
        })
        .collect::<Result<_>>()?;
    let schema = Arc::new(Schema::new(bound.iter().map(|(_, f)| f.clone()).collect()));
    let mut batch = TupleBatch::new();
    for t in input.tuples() {
        batch.begin_row();
        for (e, _) in &bound {
            batch.push_value(e.eval(t)?);
        }
    }
    Ok(Relation::new_unchecked(schema, batch.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::tuple::rel;
    use crate::types::{DataType, Value};

    fn input() -> Relation {
        rel(
            &[("a", DataType::Int), ("b", DataType::Int)],
            vec![vec![1.into(), 10.into()], vec![2.into(), 20.into()]],
        )
    }

    #[test]
    fn computes_expressions_and_names() {
        let out = project(
            &input(),
            &[
                ProjectItem::col("b"),
                ProjectItem::new(
                    Expr::col("a").binary(BinaryOp::Add, Expr::col("b")),
                    "total",
                ),
            ],
        )
        .unwrap();
        assert_eq!(out.schema().names(), vec!["b", "total"]);
        assert_eq!(out.tuples()[1].value(1), &Value::Int(22));
    }

    #[test]
    fn no_duplicate_elimination() {
        let out = project(&input(), &[ProjectItem::new(Expr::lit(1i64), "one")]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn output_type_inferred() {
        let out = project(
            &input(),
            &[ProjectItem::new(Expr::col("a").binary(BinaryOp::Div, Expr::lit(2i64)), "h")],
        )
        .unwrap();
        assert_eq!(out.schema().field(0).dtype, DataType::Float);
    }

    #[test]
    fn empty_projection_list_gives_zero_columns() {
        let out = project(&input(), &[]).unwrap();
        assert_eq!(out.schema().len(), 0);
        assert_eq!(out.len(), 2);
    }
}
