//! Grouped aggregation: `GROUP BY` with SUM / COUNT / AVG / MIN / MAX.
//!
//! This operator implements only *certain* SQL aggregation. The
//! uncertainty-aware aggregates of MayBMS (`conf`, `aconf`, `esum`,
//! `ecount`, `argmax`) live in `maybms-core`, which composes them from the
//! same grouping machinery ([`group_indices`]).

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use crate::tuple::{Relation, Tuple};
use crate::types::{DataType, Value};

/// A standard SQL aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` / `count(expr)` (non-NULL count).
    Count,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
}

impl AggFunc {
    /// The function's SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate call in a SELECT list.
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Which function.
    pub func: AggFunc,
    /// Argument (`None` = `count(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggCall {
    /// Construct an aggregate call.
    pub fn new(func: AggFunc, arg: Option<Expr>, name: impl Into<String>) -> AggCall {
        AggCall { func, arg, name: name.into() }
    }
}

/// Partition the input by the values of `group_exprs`.
///
/// Returns `(group key values, tuple indices)` per group, in first-seen
/// order. An empty `group_exprs` yields a single global group (even over an
/// empty input, matching SQL's scalar-aggregate behaviour). Large inputs
/// evaluate the group keys chunk-parallel on the process-wide pool; the
/// result (key order and member order) is identical to the sequential
/// scan.
pub fn group_indices(
    input: &Relation,
    group_exprs: &[Expr],
) -> Result<Vec<(Vec<Value>, Vec<usize>)>> {
    if !group_exprs.is_empty() && input.len() >= super::PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return group_indices_with(input, group_exprs, &pool, super::PAR_MIN_CHUNK);
        }
    }
    let bound: Vec<Expr> =
        group_exprs.iter().map(|e| e.bind(input.schema())).collect::<Result<_>>()?;
    if bound.is_empty() {
        return Ok(vec![(Vec::new(), (0..input.len()).collect())]);
    }
    // Hashed grouping over a reusable scratch key: the key values are
    // evaluated into `scratch`, matched against existing groups through a
    // hash bucket (verified by value equality), and only a *new* group
    // clones the key out of the scratch — no per-row key allocation.
    let mut buckets: crate::hash::FastMap<u64, Vec<usize>> = Default::default();
    let mut out: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(bound.len());
    for (i, t) in input.tuples().iter().enumerate() {
        scratch.clear();
        for e in &bound {
            scratch.push(e.eval(t)?);
        }
        let h = crate::hash::fast_hash_one(&scratch[..]);
        let bucket = buckets.entry(h).or_default();
        match bucket.iter().find(|&&g| out[g].0 == scratch) {
            Some(&g) => out[g].1.push(i),
            None => {
                bucket.push(out.len());
                out.push((scratch.clone(), vec![i]));
            }
        }
    }
    Ok(out)
}

/// [`group_indices`] on an explicit pool: each chunk of rows groups
/// locally (keeping the key hash alongside each local group), then the
/// chunk results merge sequentially in chunk order.
///
/// Determinism: global first-seen key order equals the sequential scan
/// (the earliest chunk containing a key merges first), and each group's
/// member list stays in ascending row order (chunks are disjoint,
/// ascending ranges merged in order).
pub fn group_indices_with(
    input: &Relation,
    group_exprs: &[Expr],
    pool: &maybms_par::ThreadPool,
    min_chunk: usize,
) -> Result<Vec<(Vec<Value>, Vec<usize>)>> {
    let bound: Vec<Expr> =
        group_exprs.iter().map(|e| e.bind(input.schema())).collect::<Result<_>>()?;
    if bound.is_empty() {
        return Ok(vec![(Vec::new(), (0..input.len()).collect())]);
    }
    type LocalGroups = Vec<(u64, Vec<Value>, Vec<usize>)>;
    let chunk = maybms_par::auto_chunk(input.len(), pool.threads(), min_chunk);
    let partials: Vec<Result<LocalGroups>> =
        pool.par_map_chunks(input.len(), chunk, |range| {
            let mut buckets: crate::hash::FastMap<u64, Vec<usize>> = Default::default();
            let mut local: LocalGroups = Vec::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(bound.len());
            for i in range {
                let t = &input.tuples()[i];
                scratch.clear();
                for e in &bound {
                    scratch.push(e.eval(t)?);
                }
                let h = crate::hash::fast_hash_one(&scratch[..]);
                let bucket = buckets.entry(h).or_default();
                match bucket.iter().find(|&&g| local[g].1 == scratch) {
                    Some(&g) => local[g].2.push(i),
                    None => {
                        bucket.push(local.len());
                        local.push((h, scratch.clone(), vec![i]));
                    }
                }
            }
            Ok(local)
        });
    let mut buckets: crate::hash::FastMap<u64, Vec<usize>> = Default::default();
    let mut out: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    for partial in partials {
        for (h, key, members) in partial? {
            let bucket = buckets.entry(h).or_default();
            match bucket.iter().find(|&&g| out[g].0 == key) {
                Some(&g) => out[g].1.extend(members),
                None => {
                    bucket.push(out.len());
                    out.push((key, members));
                }
            }
        }
    }
    Ok(out)
}

/// Grouped aggregation. Output columns are the group keys (named after
/// `group_names`) followed by one column per aggregate call.
pub fn aggregate(
    input: &Relation,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggCall],
) -> Result<Relation> {
    if group_exprs.len() != group_names.len() {
        return Err(EngineError::InvalidOperator {
            message: "group expression/name arity mismatch".into(),
        });
    }
    let in_schema = input.schema();
    let bound_aggs: Vec<(AggFunc, Option<Expr>)> = aggs
        .iter()
        .map(|a| Ok((a.func, a.arg.as_ref().map(|e| e.bind(in_schema)).transpose()?)))
        .collect::<Result<_>>()?;

    // Output schema.
    let mut fields: Vec<Field> = group_exprs
        .iter()
        .zip(group_names)
        .map(|(e, n)| Field::new(n.clone(), e.data_type(in_schema)))
        .collect();
    for (call, (func, arg)) in aggs.iter().zip(&bound_aggs) {
        let dtype = match func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg
                .as_ref()
                .map(|e| e.data_type(in_schema))
                .unwrap_or(DataType::Unknown),
        };
        fields.push(Field::new(call.name.clone(), dtype));
    }
    let schema = Arc::new(Schema::new(fields));

    let groups = group_indices(input, group_exprs)?;
    // With GROUP BY present and no input rows there are no groups at all.
    let groups = if group_exprs.is_empty() || !input.is_empty() {
        groups
    } else {
        Vec::new()
    };

    // Aggregate evaluation is independent per group: fan out chunks of
    // groups when there are enough of them to amortise a task. Rows are
    // merged in group (chunk) order — identical to the sequential loop.
    let pool = maybms_par::pool();
    if groups.len() >= 256 && pool.threads() > 1 && !bound_aggs.is_empty() {
        let partials: Vec<Result<Vec<Tuple>>> =
            pool.par_map_chunks(groups.len(), 64, |range| {
                let mut rows = Vec::with_capacity(range.len());
                for g in range {
                    let (key, indices) = &groups[g];
                    let mut row = key.clone();
                    for (func, arg) in &bound_aggs {
                        row.push(eval_agg(*func, arg.as_ref(), input, indices)?);
                    }
                    rows.push(Tuple::new(row));
                }
                Ok(rows)
            });
        let mut out = Vec::with_capacity(groups.len());
        for p in partials {
            out.extend(p?);
        }
        return Ok(Relation::new_unchecked(schema, out));
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, indices) in groups {
        let mut row = key;
        for (func, arg) in &bound_aggs {
            row.push(eval_agg(*func, arg.as_ref(), input, &indices)?);
        }
        out.push(Tuple::new(row));
    }
    Ok(Relation::new_unchecked(schema, out))
}

/// Evaluate one aggregate over the tuples at `indices`.
fn eval_agg(
    func: AggFunc,
    arg: Option<&Expr>,
    input: &Relation,
    indices: &[usize],
) -> Result<Value> {
    // Collect non-NULL argument values (SQL aggregates skip NULLs).
    let values = |arg: &Expr| -> Result<Vec<Value>> {
        let mut vs = Vec::with_capacity(indices.len());
        for &i in indices {
            let v = arg.eval(&input.tuples()[i])?;
            if !v.is_null() {
                vs.push(v);
            }
        }
        Ok(vs)
    };
    match func {
        AggFunc::Count => match arg {
            None => Ok(Value::Int(indices.len() as i64)),
            Some(a) => Ok(Value::Int(values(a)?.len() as i64)),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let a = arg.ok_or_else(|| EngineError::InvalidOperator {
                message: format!("{}() requires an argument", func.name()),
            })?;
            let vs = values(a)?;
            if vs.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut fsum = 0.0f64;
            let mut isum: i64 = 0;
            for v in &vs {
                match v {
                    Value::Int(i) => {
                        isum = isum.checked_add(*i).ok_or_else(|| EngineError::Arithmetic {
                            message: "integer overflow in sum()".into(),
                        })?;
                        fsum += *i as f64;
                    }
                    Value::Float(f) => {
                        all_int = false;
                        fsum += f;
                    }
                    other => {
                        return Err(EngineError::TypeMismatch {
                            message: format!(
                                "{}() applied to {}",
                                func.name(),
                                other.data_type()
                            ),
                        })
                    }
                }
            }
            match func {
                AggFunc::Sum if all_int => Ok(Value::Int(isum)),
                AggFunc::Sum => Value::float(fsum),
                AggFunc::Avg => Value::float(fsum / vs.len() as f64),
                _ => unreachable!(),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let a = arg.ok_or_else(|| EngineError::InvalidOperator {
                message: format!("{}() requires an argument", func.name()),
            })?;
            let vs = values(a)?;
            Ok(match func {
                AggFunc::Min => vs.into_iter().min().unwrap_or(Value::Null),
                AggFunc::Max => vs.into_iter().max().unwrap_or(Value::Null),
                _ => unreachable!("outer match guarantees Min or Max"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;

    fn games() -> Relation {
        rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 30.into()],
                vec!["Bryant".into(), 40.into()],
                vec!["Duncan".into(), 20.into()],
                vec!["Duncan".into(), Value::Null],
            ],
        )
    }

    #[test]
    fn grouped_sum_count_avg() {
        let out = aggregate(
            &games(),
            &[Expr::col("player")],
            &["player".into()],
            &[
                AggCall::new(AggFunc::Sum, Some(Expr::col("pts")), "total"),
                AggCall::new(AggFunc::Count, None, "games"),
                AggCall::new(AggFunc::Count, Some(Expr::col("pts")), "scored"),
                AggCall::new(AggFunc::Avg, Some(Expr::col("pts")), "mean"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let bryant = &out.tuples()[0];
        assert_eq!(bryant.value(0), &Value::str("Bryant"));
        assert_eq!(bryant.value(1), &Value::Int(70));
        assert_eq!(bryant.value(2), &Value::Int(2));
        assert_eq!(bryant.value(3), &Value::Int(2));
        assert_eq!(bryant.value(4), &Value::Float(35.0));
        let duncan = &out.tuples()[1];
        assert_eq!(duncan.value(1), &Value::Int(20)); // NULL skipped
        assert_eq!(duncan.value(2), &Value::Int(2)); // count(*) counts NULL row
        assert_eq!(duncan.value(3), &Value::Int(1)); // count(pts) skips NULL
    }

    #[test]
    fn min_max() {
        let out = aggregate(
            &games(),
            &[],
            &[],
            &[
                AggCall::new(AggFunc::Min, Some(Expr::col("pts")), "lo"),
                AggCall::new(AggFunc::Max, Some(Expr::col("pts")), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Int(20));
        assert_eq!(out.tuples()[0].value(1), &Value::Int(40));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let empty = rel(&[("x", DataType::Int)], vec![]);
        let out = aggregate(
            &empty,
            &[],
            &[],
            &[
                AggCall::new(AggFunc::Count, None, "n"),
                AggCall::new(AggFunc::Sum, Some(Expr::col("x")), "s"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), &Value::Int(0));
        assert_eq!(out.tuples()[0].value(1), &Value::Null);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_yields_no_rows() {
        let empty = rel(&[("x", DataType::Int)], vec![]);
        let out = aggregate(
            &empty,
            &[Expr::col("x")],
            &["x".into()],
            &[AggCall::new(AggFunc::Count, None, "n")],
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_of_floats() {
        let r = rel(
            &[("p", DataType::Float)],
            vec![vec![Value::Float(0.25)], vec![Value::Float(0.5)]],
        );
        let out = aggregate(
            &r,
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("p")), "s")],
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Float(0.75));
    }

    #[test]
    fn sum_without_argument_is_invalid() {
        let out = aggregate(
            &games(),
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, None, "s")],
        );
        assert!(out.is_err());
    }

    #[test]
    fn sum_over_text_is_type_error() {
        let out = aggregate(
            &games(),
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("player")), "s")],
        );
        assert!(out.is_err());
    }

    #[test]
    fn group_by_expression() {
        let out = aggregate(
            &games(),
            &[Expr::col("pts").binary(crate::expr::BinaryOp::Mod, Expr::lit(20i64))],
            &["bucket".into()],
            &[AggCall::new(AggFunc::Count, None, "n")],
        );
        // NULL % 20 is NULL; NULL is a valid group key.
        let out = out.unwrap();
        assert_eq!(out.len(), 3); // 10 (30), 0 (40, 20), NULL
    }

    #[test]
    fn group_indices_first_seen_order() {
        let gs = group_indices(&games(), &[Expr::col("player")]).unwrap();
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].0[0], Value::str("Bryant"));
        assert_eq!(gs[0].1, vec![0, 1]);
        assert_eq!(gs[1].1, vec![2, 3]);
    }

    #[test]
    fn parallel_group_indices_identical_to_sequential() {
        // Interleaved keys (incl. NULL) across chunk boundaries.
        let r = rel(
            &[("k", DataType::Unknown)],
            (0..100)
                .map(|i| {
                    vec![match i % 7 {
                        0 => Value::Null,
                        j => Value::Int(j as i64 % 3),
                    }]
                })
                .collect(),
        );
        let exprs = [Expr::col("k")];
        let seq = group_indices(&r, &exprs).unwrap();
        for threads in [1, 2, 8] {
            let pool = maybms_par::ThreadPool::new(threads);
            let par = group_indices_with(&r, &exprs, &pool, 9).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }
}
