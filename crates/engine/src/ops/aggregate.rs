//! Grouped aggregation: `GROUP BY` with SUM / COUNT / AVG / MIN / MAX.
//!
//! This operator implements only *certain* SQL aggregation. The
//! uncertainty-aware aggregates of MayBMS (`conf`, `aconf`, `esum`,
//! `ecount`, `argmax`) live in `maybms-core`, which composes them from the
//! same grouping machinery ([`group_indices`]) and accumulator states
//! ([`AggState`]).
//!
//! # Mergeable accumulators
//!
//! Aggregation is a **fold**: every function here is expressed as an
//! [`AggState`] that absorbs one row at a time ([`AggState::fold`]) and
//! merges with a sibling state ([`AggState::merge`]). [`aggregate`] makes a
//! single pass over its input — evaluate the group key, look the group up,
//! fold — instead of the older two-pass collect-indices-then-rescan shape,
//! and the morsel-driven executor (`maybms-pipe`) folds the *same* states
//! morsel-locally and merges them in morsel order.
//!
//! Merging is only sound under the determinism contract if a state's
//! final value does not depend on how the input was split. Counts and
//! integer sums are associative; min/max keep the first-seen extremum; and
//! float sums use [`ExactSum`] — an exact (error-free) accumulation whose
//! rounded result is the same for *any* fold/merge tree, so a parallel
//! morsel split is bit-identical to the sequential scan.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::hash::{fast_hash_one, FastMap};
use crate::schema::{Field, Schema};
use crate::tuple::{Relation, Tuple};
use crate::types::{DataType, Value};

/// A standard SQL aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` / `count(expr)` (non-NULL count).
    Count,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
}

impl AggFunc {
    /// The function's SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate call in a SELECT list.
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Which function.
    pub func: AggFunc,
    /// Argument (`None` = `count(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggCall {
    /// Construct an aggregate call.
    pub fn new(func: AggFunc, arg: Option<Expr>, name: impl Into<String>) -> AggCall {
        AggCall { func, arg, name: name.into() }
    }
}

// ---------------------------------------------------------------------
// ExactSum: split-invariant float accumulation
// ---------------------------------------------------------------------

/// Error-free float accumulator (Shewchuk expansions, as in Python's
/// `math.fsum`): the partials represent the *exact* real-valued sum of
/// everything added so far, and [`ExactSum::round`] returns it correctly
/// rounded to one `f64`.
///
/// Because the represented value is exact, addition is associative and
/// commutative here even though `f64` addition is not: folding values
/// one-by-one, or splitting them across morsels and merging the partial
/// sums, rounds to the **same** final result. This is what lets the
/// streaming grouped-aggregation breaker keep running per-morsel partial
/// sums while staying bit-identical to the sequential scan at any thread
/// count and morsel size.
///
/// Precondition (as for `math.fsum`): addends are finite and no
/// intermediate two-sum overflows `f64::MAX`. NaN/±inf never enter
/// (`Value::float` rejects them upstream), but sums whose magnitude
/// approaches `1e308` can overflow an intermediate and produce a
/// non-finite, split-dependent result — out of contract, exactly as the
/// plain left-to-right fold it replaces was.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    /// Non-overlapping partials in increasing magnitude order.
    partials: Vec<f64>,
}

impl ExactSum {
    /// A fresh zero sum.
    pub fn new() -> ExactSum {
        ExactSum::default()
    }

    /// Add one value exactly.
    pub fn add(&mut self, mut x: f64) {
        // Fast path: a single partial that absorbs the addend exactly —
        // the overwhelmingly common case for well-scaled data.
        if let [y] = self.partials[..] {
            let (a, b) = if x.abs() >= y.abs() { (x, y) } else { (y, x) };
            let hi = a + b;
            let lo = b - (hi - a);
            if lo == 0.0 {
                self.partials[0] = hi;
            } else {
                self.partials[0] = lo;
                self.partials.push(hi);
            }
            return;
        }
        let mut kept = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            // Two-sum: hi + lo == x + y exactly.
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Absorb another exact sum (exactly).
    pub fn merge(&mut self, other: &ExactSum) {
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The correctly rounded value of the exact sum (round-half-even, like
    /// `math.fsum`), independent of insertion or merge order.
    pub fn round(&self) -> f64 {
        let p = &self.partials;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Half-even correction: if the discarded tail pushes the result
        // past the halfway point, nudge the last bit.
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

// ---------------------------------------------------------------------
// AggState: one mergeable accumulator per aggregate slot
// ---------------------------------------------------------------------

/// Coarse type class for min/max compatibility: numeric values compare
/// across Int/Float, every other mix is a type error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeClass {
    Numeric,
    Text,
    Bool,
}

fn class_of(v: &Value) -> TypeClass {
    match v {
        Value::Int(_) | Value::Float(_) => TypeClass::Numeric,
        Value::Str(_) => TypeClass::Text,
        Value::Bool(_) => TypeClass::Bool,
        Value::Null => unreachable!("NULLs are skipped before classification"),
    }
}

impl TypeClass {
    fn name(self) -> &'static str {
        match self {
            TypeClass::Numeric => "numeric",
            TypeClass::Text => "text",
            TypeClass::Bool => "boolean",
        }
    }
}

/// The mergeable state of one aggregate over one group: fold a row at a
/// time, merge per morsel, [`AggState::finish`] into the output value.
///
/// NULL arguments are skipped (SQL semantics); integer sums accumulate in
/// `i128` (overflow is checked once, on the *total*, at finish); float
/// sums are [`ExactSum`]s, so fold/merge order never changes the result.
#[derive(Debug, Clone)]
pub enum AggState {
    /// `count(*)` / `count(expr)`.
    Count {
        /// Rows (or non-NULL values) seen.
        n: i64,
    },
    /// `sum(expr)`.
    Sum {
        /// Non-NULL values seen.
        n: u64,
        /// True while every value was an integer.
        all_int: bool,
        /// Exact integer sum (checked against `i64` at finish).
        isum: i128,
        /// Exact float sum (integers widened).
        fsum: ExactSum,
    },
    /// `avg(expr)`.
    Avg {
        /// Non-NULL values seen.
        n: u64,
        /// Exact float sum.
        fsum: ExactSum,
    },
    /// `min(expr)` / `max(expr)`.
    Extremum {
        /// Which end: true = min, false = max.
        min: bool,
        /// The first-seen extremum so far.
        best: Option<Value>,
    },
}

impl AggState {
    /// A fresh state for `func`.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count { n: 0 },
            AggFunc::Sum => {
                AggState::Sum { n: 0, all_int: true, isum: 0, fsum: ExactSum::new() }
            }
            AggFunc::Avg => AggState::Avg { n: 0, fsum: ExactSum::new() },
            AggFunc::Min => AggState::Extremum { min: true, best: None },
            AggFunc::Max => AggState::Extremum { min: false, best: None },
        }
    }

    /// The function this state accumulates.
    pub fn func(&self) -> AggFunc {
        match self {
            AggState::Count { .. } => AggFunc::Count,
            AggState::Sum { .. } => AggFunc::Sum,
            AggState::Avg { .. } => AggFunc::Avg,
            AggState::Extremum { min: true, .. } => AggFunc::Min,
            AggState::Extremum { min: false, .. } => AggFunc::Max,
        }
    }

    /// Fold a row with no argument expression — `count(*)`.
    pub fn fold_present(&mut self) {
        match self {
            AggState::Count { n } => *n += 1,
            other => unreachable!("{}() requires an argument", other.func().name()),
        }
    }

    /// Fold one argument value (NULLs are skipped).
    pub fn fold(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count { n } => *n += 1,
            AggState::Sum { n, all_int, isum, fsum } => match v {
                Value::Int(i) => {
                    *isum += i128::from(*i);
                    fsum.add(*i as f64);
                    *n += 1;
                }
                Value::Float(f) => {
                    *all_int = false;
                    fsum.add(*f);
                    *n += 1;
                }
                other => return Err(type_err(AggFunc::Sum, other)),
            },
            AggState::Avg { n, fsum } => match v {
                Value::Int(i) => {
                    fsum.add(*i as f64);
                    *n += 1;
                }
                Value::Float(f) => {
                    fsum.add(*f);
                    *n += 1;
                }
                other => return Err(type_err(AggFunc::Avg, other)),
            },
            AggState::Extremum { min, best } => match best {
                None => *best = Some(v.clone()),
                Some(b) => {
                    let (bc, vc) = (class_of(b), class_of(v));
                    if bc != vc {
                        return Err(EngineError::TypeMismatch {
                            message: format!(
                                "{}() over mixed {} and {} values",
                                if *min { "min" } else { "max" },
                                bc.name(),
                                vc.name()
                            ),
                        });
                    }
                    // First-seen extremum: replace only on a strict
                    // improvement, so fold and morsel merge agree on ties.
                    let better = if *min { v < b } else { v > b };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            },
        }
        Ok(())
    }

    /// Merge a later state into this one (this state's rows precede
    /// `other`'s). Bit-identical to having folded `other`'s rows directly.
    pub fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count { n }, AggState::Count { n: m }) => *n += m,
            (
                AggState::Sum { n, all_int, isum, fsum },
                AggState::Sum { n: m, all_int: ai, isum: is, fsum: fs },
            ) => {
                *n += m;
                *all_int &= ai;
                *isum += is;
                fsum.merge(&fs);
            }
            (AggState::Avg { n, fsum }, AggState::Avg { n: m, fsum: fs }) => {
                *n += m;
                fsum.merge(&fs);
            }
            (
                this @ AggState::Extremum { .. },
                AggState::Extremum { best: Some(v), .. },
            ) => {
                this.fold(&v)?;
            }
            (AggState::Extremum { .. }, AggState::Extremum { best: None, .. }) => {}
            _ => unreachable!("merging states of different aggregate functions"),
        }
        Ok(())
    }

    /// The output value of the accumulated aggregate.
    pub fn finish(&self) -> Result<Value> {
        match self {
            AggState::Count { n } => Ok(Value::Int(*n)),
            AggState::Sum { n: 0, .. } | AggState::Avg { n: 0, .. } => Ok(Value::Null),
            AggState::Sum { all_int: true, isum, .. } => {
                i64::try_from(*isum).map(Value::Int).map_err(|_| {
                    EngineError::Arithmetic { message: "integer overflow in sum()".into() }
                })
            }
            AggState::Sum { fsum, .. } => Value::float(fsum.round()),
            AggState::Avg { n, fsum } => Value::float(fsum.round() / *n as f64),
            AggState::Extremum { best, .. } => {
                Ok(best.clone().unwrap_or(Value::Null))
            }
        }
    }
}

fn type_err(func: AggFunc, v: &Value) -> EngineError {
    EngineError::TypeMismatch {
        message: format!("{}() applied to {}", func.name(), v.data_type()),
    }
}

// ---------------------------------------------------------------------
// Shared binding / schema / fold helpers (also used by maybms-pipe)
// ---------------------------------------------------------------------

/// Bind the aggregate calls' argument expressions against `schema`,
/// validating that every function except `count` has an argument.
pub fn bind_agg_calls(
    schema: &Schema,
    aggs: &[AggCall],
) -> Result<Vec<(AggFunc, Option<Expr>)>> {
    aggs.iter()
        .map(|a| {
            if a.arg.is_none() && a.func != AggFunc::Count {
                return Err(EngineError::InvalidOperator {
                    message: format!("{}() requires an argument", a.func.name()),
                });
            }
            Ok((a.func, a.arg.as_ref().map(|e| e.bind(schema)).transpose()?))
        })
        .collect()
}

/// The output schema of a grouped aggregation: the group keys (named by
/// `group_names`) followed by one column per aggregate call.
pub fn aggregate_schema(
    in_schema: &Schema,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggCall],
) -> Result<Arc<Schema>> {
    if group_exprs.len() != group_names.len() {
        return Err(EngineError::InvalidOperator {
            message: "group expression/name arity mismatch".into(),
        });
    }
    let mut fields: Vec<Field> = group_exprs
        .iter()
        .zip(group_names)
        .map(|(e, n)| Field::new(n.clone(), e.data_type(in_schema)))
        .collect();
    for call in aggs {
        let dtype = match call.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => call
                .arg
                .as_ref()
                .map(|e| e.data_type(in_schema))
                .unwrap_or(DataType::Unknown),
        };
        fields.push(Field::new(call.name.clone(), dtype));
    }
    Ok(Arc::new(Schema::new(fields)))
}

/// Fresh states, one per bound aggregate call.
pub fn new_agg_states(bound: &[(AggFunc, Option<Expr>)]) -> Vec<AggState> {
    bound.iter().map(|(f, _)| AggState::new(*f)).collect()
}

/// Fold one row into a group's states (`states` parallel to `bound`).
pub fn fold_agg_row(
    states: &mut [AggState],
    bound: &[(AggFunc, Option<Expr>)],
    row: &[Value],
) -> Result<()> {
    for (st, (_, arg)) in states.iter_mut().zip(bound) {
        match arg {
            None => st.fold_present(),
            Some(e) => st.fold(&e.eval_values(row)?)?,
        }
    }
    Ok(())
}

/// Merge a later group's states into an earlier one, slot by slot.
pub fn merge_agg_states(into: &mut [AggState], from: Vec<AggState>) -> Result<()> {
    for (a, b) in into.iter_mut().zip(from) {
        a.merge(b)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Grouping by index lists (used by repair-key and maybms-core)
// ---------------------------------------------------------------------

/// Partition the input by the values of `group_exprs`.
///
/// Returns `(group key values, tuple indices)` per group, in first-seen
/// order. An empty `group_exprs` yields a single global group (even over an
/// empty input, matching SQL's scalar-aggregate behaviour). Large inputs
/// evaluate the group keys chunk-parallel on the process-wide pool; the
/// result (key order and member order) is identical to the sequential
/// scan.
pub fn group_indices(
    input: &Relation,
    group_exprs: &[Expr],
) -> Result<Vec<(Vec<Value>, Vec<usize>)>> {
    if !group_exprs.is_empty() && input.len() >= super::PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return group_indices_with(input, group_exprs, &pool, super::PAR_MIN_CHUNK);
        }
    }
    let bound: Vec<Expr> =
        group_exprs.iter().map(|e| e.bind(input.schema())).collect::<Result<_>>()?;
    if bound.is_empty() {
        return Ok(vec![(Vec::new(), (0..input.len()).collect())]);
    }
    // Hashed grouping over a reusable scratch key: the key values are
    // evaluated into `scratch`, matched against existing groups through a
    // hash bucket (verified by value equality), and only a *new* group
    // clones the key out of the scratch — no per-row key allocation.
    let mut buckets: FastMap<u64, Vec<usize>> = Default::default();
    let mut out: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(bound.len());
    for (i, t) in input.tuples().iter().enumerate() {
        scratch.clear();
        for e in &bound {
            scratch.push(e.eval(t)?);
        }
        let h = fast_hash_one(&scratch[..]);
        let bucket = buckets.entry(h).or_default();
        match bucket.iter().find(|&&g| out[g].0 == scratch) {
            Some(&g) => out[g].1.push(i),
            None => {
                bucket.push(out.len());
                out.push((scratch.clone(), vec![i]));
            }
        }
    }
    Ok(out)
}

/// [`group_indices`] on an explicit pool: each chunk of rows groups
/// locally (keeping the key hash alongside each local group), then the
/// chunk results merge sequentially in chunk order.
///
/// Determinism: global first-seen key order equals the sequential scan
/// (the earliest chunk containing a key merges first), and each group's
/// member list stays in ascending row order (chunks are disjoint,
/// ascending ranges merged in order).
pub fn group_indices_with(
    input: &Relation,
    group_exprs: &[Expr],
    pool: &maybms_par::ThreadPool,
    min_chunk: usize,
) -> Result<Vec<(Vec<Value>, Vec<usize>)>> {
    let bound: Vec<Expr> =
        group_exprs.iter().map(|e| e.bind(input.schema())).collect::<Result<_>>()?;
    if bound.is_empty() {
        return Ok(vec![(Vec::new(), (0..input.len()).collect())]);
    }
    type LocalGroups = Vec<(u64, Vec<Value>, Vec<usize>)>;
    let chunk = maybms_par::auto_chunk(input.len(), pool.threads(), min_chunk);
    let partials: Vec<Result<LocalGroups>> =
        pool.par_map_chunks(input.len(), chunk, |range| {
            let mut buckets: FastMap<u64, Vec<usize>> = Default::default();
            let mut local: LocalGroups = Vec::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(bound.len());
            for i in range {
                let t = &input.tuples()[i];
                scratch.clear();
                for e in &bound {
                    scratch.push(e.eval(t)?);
                }
                let h = fast_hash_one(&scratch[..]);
                let bucket = buckets.entry(h).or_default();
                match bucket.iter().find(|&&g| local[g].1 == scratch) {
                    Some(&g) => local[g].2.push(i),
                    None => {
                        bucket.push(local.len());
                        local.push((h, scratch.clone(), vec![i]));
                    }
                }
            }
            Ok(local)
        });
    let mut buckets: FastMap<u64, Vec<usize>> = Default::default();
    let mut out: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    for partial in partials {
        for (h, key, members) in partial? {
            let bucket = buckets.entry(h).or_default();
            match bucket.iter().find(|&&g| out[g].0 == key) {
                Some(&g) => out[g].1.extend(members),
                None => {
                    bucket.push(out.len());
                    out.push((key, members));
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The aggregate operator: one fold pass
// ---------------------------------------------------------------------

/// A hashed group → accumulator table, folded in one pass.
struct StateTable {
    buckets: FastMap<u64, Vec<usize>>,
    keys: Vec<Vec<Value>>,
    states: Vec<Vec<AggState>>,
}

impl StateTable {
    fn new() -> StateTable {
        StateTable { buckets: Default::default(), keys: Vec::new(), states: Vec::new() }
    }

    /// Get-or-insert the state list for `key` (cloned only when new).
    fn entry(
        &mut self,
        key: &[Value],
        bound: &[(AggFunc, Option<Expr>)],
    ) -> &mut Vec<AggState> {
        let h = fast_hash_one(key);
        let bucket = self.buckets.entry(h).or_default();
        match bucket.iter().find(|&&g| self.keys[g] == key) {
            Some(&g) => &mut self.states[g],
            None => {
                bucket.push(self.keys.len());
                self.keys.push(key.to_vec());
                self.states.push(new_agg_states(bound));
                self.states.last_mut().expect("just pushed")
            }
        }
    }
}

/// Grouped aggregation. Output columns are the group keys (named after
/// `group_names`) followed by one column per aggregate call.
///
/// A single pass folds every row into its group's [`AggState`]s; large
/// inputs fold chunk-locally on the process-wide pool and merge the chunk
/// tables in chunk order (first-seen key order and all aggregate values
/// identical to the sequential fold).
pub fn aggregate(
    input: &Relation,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggCall],
) -> Result<Relation> {
    if input.len() >= super::PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return aggregate_with(
                input,
                group_exprs,
                group_names,
                aggs,
                &pool,
                super::PAR_MIN_CHUNK,
            );
        }
    }
    let schema = aggregate_schema(input.schema(), group_exprs, group_names, aggs)?;
    let bound_aggs = bind_agg_calls(input.schema(), aggs)?;
    let bound_keys: Vec<Expr> =
        group_exprs.iter().map(|e| e.bind(input.schema())).collect::<Result<_>>()?;

    let mut table = StateTable::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(bound_keys.len());
    for t in input.tuples() {
        scratch.clear();
        for e in &bound_keys {
            scratch.push(e.eval(t)?);
        }
        let states = table.entry(&scratch, &bound_aggs);
        fold_agg_row(states, &bound_aggs, t.values())?;
    }
    finish_table(table, bound_keys.is_empty(), &bound_aggs, schema)
}

/// [`aggregate`] on an explicit pool and chunk size: each chunk folds a
/// private group table, tables merge in chunk order ([`AggState::merge`]),
/// output identical to the sequential fold at any thread count.
pub fn aggregate_with(
    input: &Relation,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggCall],
    pool: &maybms_par::ThreadPool,
    min_chunk: usize,
) -> Result<Relation> {
    let schema = aggregate_schema(input.schema(), group_exprs, group_names, aggs)?;
    let bound_aggs = bind_agg_calls(input.schema(), aggs)?;
    let bound_keys: Vec<Expr> =
        group_exprs.iter().map(|e| e.bind(input.schema())).collect::<Result<_>>()?;

    let chunk = maybms_par::auto_chunk(input.len(), pool.threads(), min_chunk);
    let partials: Vec<Result<StateTable>> =
        pool.par_map_chunks(input.len(), chunk, |range| {
            let mut table = StateTable::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(bound_keys.len());
            for i in range {
                let t = &input.tuples()[i];
                scratch.clear();
                for e in &bound_keys {
                    scratch.push(e.eval(t)?);
                }
                let states = table.entry(&scratch, &bound_aggs);
                fold_agg_row(states, &bound_aggs, t.values())?;
            }
            Ok(table)
        });
    let mut merged = StateTable::new();
    for partial in partials {
        let partial = partial?;
        for (key, states) in partial.keys.into_iter().zip(partial.states) {
            let h = fast_hash_one(&key[..]);
            let bucket = merged.buckets.entry(h).or_default();
            match bucket.iter().find(|&&g| merged.keys[g] == key) {
                Some(&g) => merge_agg_states(&mut merged.states[g], states)?,
                None => {
                    bucket.push(merged.keys.len());
                    merged.keys.push(key);
                    merged.states.push(states);
                }
            }
        }
    }
    finish_table(merged, bound_keys.is_empty(), &bound_aggs, schema)
}

/// Turn a folded table into the output relation. A global (no GROUP BY)
/// aggregate over an empty input still yields one row of empty-group
/// states, matching SQL's scalar-aggregate behaviour.
fn finish_table(
    mut table: StateTable,
    global: bool,
    bound_aggs: &[(AggFunc, Option<Expr>)],
    schema: Arc<Schema>,
) -> Result<Relation> {
    if global && table.keys.is_empty() {
        table.keys.push(Vec::new());
        table.states.push(new_agg_states(bound_aggs));
    }
    let mut out = Vec::with_capacity(table.keys.len());
    for (key, states) in table.keys.into_iter().zip(table.states) {
        let mut row = key;
        for st in &states {
            row.push(st.finish()?);
        }
        out.push(Tuple::new(row));
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::rel;

    fn games() -> Relation {
        rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 30.into()],
                vec!["Bryant".into(), 40.into()],
                vec!["Duncan".into(), 20.into()],
                vec!["Duncan".into(), Value::Null],
            ],
        )
    }

    #[test]
    fn grouped_sum_count_avg() {
        let out = aggregate(
            &games(),
            &[Expr::col("player")],
            &["player".into()],
            &[
                AggCall::new(AggFunc::Sum, Some(Expr::col("pts")), "total"),
                AggCall::new(AggFunc::Count, None, "games"),
                AggCall::new(AggFunc::Count, Some(Expr::col("pts")), "scored"),
                AggCall::new(AggFunc::Avg, Some(Expr::col("pts")), "mean"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let bryant = &out.tuples()[0];
        assert_eq!(bryant.value(0), &Value::str("Bryant"));
        assert_eq!(bryant.value(1), &Value::Int(70));
        assert_eq!(bryant.value(2), &Value::Int(2));
        assert_eq!(bryant.value(3), &Value::Int(2));
        assert_eq!(bryant.value(4), &Value::Float(35.0));
        let duncan = &out.tuples()[1];
        assert_eq!(duncan.value(1), &Value::Int(20)); // NULL skipped
        assert_eq!(duncan.value(2), &Value::Int(2)); // count(*) counts NULL row
        assert_eq!(duncan.value(3), &Value::Int(1)); // count(pts) skips NULL
    }

    #[test]
    fn min_max() {
        let out = aggregate(
            &games(),
            &[],
            &[],
            &[
                AggCall::new(AggFunc::Min, Some(Expr::col("pts")), "lo"),
                AggCall::new(AggFunc::Max, Some(Expr::col("pts")), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Int(20));
        assert_eq!(out.tuples()[0].value(1), &Value::Int(40));
    }

    #[test]
    fn min_max_over_mixed_types_is_type_error() {
        // Bool sorts below Int in Value's variant order; without the type
        // check min() would silently return the Bool.
        let r = rel(
            &[("x", DataType::Unknown)],
            vec![vec![Value::Bool(true)], vec![5.into()], vec![Value::Null]],
        );
        for func in [AggFunc::Min, AggFunc::Max] {
            let out = aggregate(
                &r,
                &[],
                &[],
                &[AggCall::new(func, Some(Expr::col("x")), "m")],
            );
            assert!(
                matches!(out, Err(EngineError::TypeMismatch { .. })),
                "{func:?}: {out:?}"
            );
        }
        // Text/numeric mixes are equally rejected.
        let r = rel(
            &[("x", DataType::Unknown)],
            vec![vec!["a".into()], vec![5.into()]],
        );
        let out = aggregate(
            &r,
            &[],
            &[],
            &[AggCall::new(AggFunc::Min, Some(Expr::col("x")), "m")],
        );
        assert!(matches!(out, Err(EngineError::TypeMismatch { .. })), "{out:?}");
    }

    #[test]
    fn min_max_over_mixed_numerics_allowed() {
        let r = rel(
            &[("x", DataType::Unknown)],
            vec![vec![Value::Float(1.5)], vec![1.into()], vec![2.into()]],
        );
        let out = aggregate(
            &r,
            &[],
            &[],
            &[
                AggCall::new(AggFunc::Min, Some(Expr::col("x")), "lo"),
                AggCall::new(AggFunc::Max, Some(Expr::col("x")), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Int(1));
        assert_eq!(out.tuples()[0].value(1), &Value::Int(2));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let empty = rel(&[("x", DataType::Int)], vec![]);
        let out = aggregate(
            &empty,
            &[],
            &[],
            &[
                AggCall::new(AggFunc::Count, None, "n"),
                AggCall::new(AggFunc::Sum, Some(Expr::col("x")), "s"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), &Value::Int(0));
        assert_eq!(out.tuples()[0].value(1), &Value::Null);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_yields_no_rows() {
        let empty = rel(&[("x", DataType::Int)], vec![]);
        let out = aggregate(
            &empty,
            &[Expr::col("x")],
            &["x".into()],
            &[AggCall::new(AggFunc::Count, None, "n")],
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_of_floats() {
        let r = rel(
            &[("p", DataType::Float)],
            vec![vec![Value::Float(0.25)], vec![Value::Float(0.5)]],
        );
        let out = aggregate(
            &r,
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("p")), "s")],
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Float(0.75));
    }

    #[test]
    fn sum_without_argument_is_invalid() {
        let out = aggregate(
            &games(),
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, None, "s")],
        );
        assert!(out.is_err());
    }

    #[test]
    fn sum_over_text_is_type_error() {
        let out = aggregate(
            &games(),
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("player")), "s")],
        );
        assert!(out.is_err());
    }

    #[test]
    fn sum_overflow_detected_on_total() {
        let r = rel(
            &[("x", DataType::Int)],
            vec![vec![i64::MAX.into()], vec![i64::MAX.into()]],
        );
        let out = aggregate(
            &r,
            &[],
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("x")), "s")],
        );
        assert!(matches!(out, Err(EngineError::Arithmetic { .. })), "{out:?}");
    }

    #[test]
    fn group_by_expression() {
        let out = aggregate(
            &games(),
            &[Expr::col("pts").binary(crate::expr::BinaryOp::Mod, Expr::lit(20i64))],
            &["bucket".into()],
            &[AggCall::new(AggFunc::Count, None, "n")],
        );
        // NULL % 20 is NULL; NULL is a valid group key.
        let out = out.unwrap();
        assert_eq!(out.len(), 3); // 10 (30), 0 (40, 20), NULL
    }

    #[test]
    fn group_indices_first_seen_order() {
        let gs = group_indices(&games(), &[Expr::col("player")]).unwrap();
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].0[0], Value::str("Bryant"));
        assert_eq!(gs[0].1, vec![0, 1]);
        assert_eq!(gs[1].1, vec![2, 3]);
    }

    #[test]
    fn parallel_group_indices_identical_to_sequential() {
        // Interleaved keys (incl. NULL) across chunk boundaries.
        let r = rel(
            &[("k", DataType::Unknown)],
            (0..100)
                .map(|i| {
                    vec![match i % 7 {
                        0 => Value::Null,
                        j => Value::Int(j as i64 % 3),
                    }]
                })
                .collect(),
        );
        let exprs = [Expr::col("k")];
        let seq = group_indices(&r, &exprs).unwrap();
        for threads in [1, 2, 8] {
            let pool = maybms_par::ThreadPool::new(threads);
            let par = group_indices_with(&r, &exprs, &pool, 9).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_aggregate_identical_to_sequential() {
        // Mixed int/float sums across chunk boundaries, NULL keys, an
        // extremum tie — a one-row chunk size exercises every merge.
        let r = rel(
            &[("k", DataType::Unknown), ("v", DataType::Unknown)],
            (0..60)
                .map(|i| {
                    vec![
                        match i % 5 {
                            0 => Value::Null,
                            j => Value::Int(j as i64 % 2),
                        },
                        match i % 3 {
                            0 => Value::Float(i as f64 / 3.0),
                            1 => Value::Int(i as i64),
                            _ => Value::Null,
                        },
                    ]
                })
                .collect(),
        );
        let group = [Expr::col("k")];
        let names = ["k".to_string()];
        let aggs = [
            AggCall::new(AggFunc::Count, None, "n"),
            AggCall::new(AggFunc::Sum, Some(Expr::col("v")), "s"),
            AggCall::new(AggFunc::Avg, Some(Expr::col("v")), "m"),
            AggCall::new(AggFunc::Min, Some(Expr::col("v")), "lo"),
            AggCall::new(AggFunc::Max, Some(Expr::col("v")), "hi"),
        ];
        let seq = aggregate(&r, &group, &names, &aggs).unwrap();
        for threads in [1, 2, 8] {
            let pool = maybms_par::ThreadPool::new(threads);
            for min_chunk in [1, 7] {
                let par =
                    aggregate_with(&r, &group, &names, &aggs, &pool, min_chunk).unwrap();
                assert_eq!(
                    seq.tuples(),
                    par.tuples(),
                    "threads {threads}, min_chunk {min_chunk}"
                );
            }
        }
    }

    #[test]
    fn exact_sum_is_split_invariant() {
        // A sum whose naive left-to-right and pairwise foldings disagree:
        // ExactSum must round identically for any split.
        let xs: Vec<f64> = (0..200)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (1.0 + i as f64) * 1e15 + 0.123_456_789 * i as f64
            })
            .collect();
        let mut whole = ExactSum::new();
        for &x in &xs {
            whole.add(x);
        }
        for split in [1usize, 3, 7, 64] {
            let mut merged = ExactSum::new();
            for chunk in xs.chunks(split) {
                let mut part = ExactSum::new();
                for &x in chunk {
                    part.add(x);
                }
                merged.merge(&part);
            }
            assert_eq!(whole.round().to_bits(), merged.round().to_bits(), "split {split}");
        }
        // And it is actually the exact result (known closed form for a
        // simple case).
        let mut s = ExactSum::new();
        for _ in 0..10 {
            s.add(0.1);
        }
        assert_eq!(s.round(), 1.0);
    }
}
