//! Relation schemas: named, typed, optionally qualified columns.

use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::types::DataType;

/// A single column: optional relation qualifier, name, and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// The relation alias this column belongs to, when known
    /// (e.g. `r1` in `r1.player`).
    pub qualifier: Option<String>,
    /// Column name (case-preserved; resolution is case-insensitive).
    pub name: String,
    /// Static column type.
    pub dtype: DataType,
}

impl Field {
    /// Unqualified field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field { qualifier: None, name: name.into(), dtype }
    }

    /// Qualified field.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        dtype: DataType,
    ) -> Field {
        Field { qualifier: Some(qualifier.into()), name: name.into(), dtype }
    }

    /// Fully-qualified display name.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether `name` (and `qualifier`, when supplied) refer to this field.
    /// Matching is ASCII-case-insensitive, as in SQL identifiers.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => {
                self.qualifier.as_deref().is_some_and(|fq| fq.eq_ignore_ascii_case(q))
            }
        }
    }
}

/// An ordered list of fields describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Schema {
        Schema { fields: pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect() }
    }

    /// Empty schema (zero columns).
    pub fn empty() -> Arc<Schema> {
        Arc::new(Schema { fields: Vec::new() })
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// Errors on no match ([`EngineError::ColumnNotFound`]) and on multiple
    /// matches ([`EngineError::AmbiguousColumn`]).
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    let shown = match qualifier {
                        Some(q) => format!("{q}.{name}"),
                        None => name.to_string(),
                    };
                    return Err(EngineError::AmbiguousColumn { name: shown });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| EngineError::ColumnNotFound {
            name: match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            },
            available: self.fields.iter().map(Field::qualified_name).collect(),
        })
    }

    /// Schema of `self × other` (concatenated columns).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// A copy of this schema where every field is re-qualified with `alias`
    /// (used when a FROM item gets an alias: `FT r1` renames all columns to
    /// `r1.*`).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::qualified(alias, f.name.clone(), f.dtype))
                .collect(),
        }
    }

    /// A copy of this schema with all qualifiers removed.
    pub fn without_qualifiers(&self) -> Schema {
        Schema {
            fields: self.fields.iter().map(|f| Field::new(f.name.clone(), f.dtype)).collect(),
        }
    }

    /// Column names, in order (unqualified).
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Text),
            ("c", DataType::Float),
        ])
    }

    #[test]
    fn index_of_unqualified() {
        let s = abc();
        assert_eq!(s.index_of(None, "b").unwrap(), 1);
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = abc();
        assert_eq!(s.index_of(None, "B").unwrap(), 1);
        assert_eq!(s.index_of(None, "C").unwrap(), 2);
    }

    #[test]
    fn index_of_missing_column_reports_available() {
        let s = abc();
        match s.index_of(None, "zz") {
            Err(EngineError::ColumnNotFound { available, .. }) => {
                assert_eq!(available, vec!["a", "b", "c"]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn qualified_resolution() {
        let s = abc().with_qualifier("r1").join(&abc().with_qualifier("r2"));
        assert_eq!(s.index_of(Some("r2"), "a").unwrap(), 3);
        assert_eq!(s.index_of(Some("R1"), "c").unwrap(), 2);
    }

    #[test]
    fn unqualified_ref_over_duplicate_names_is_ambiguous() {
        let s = abc().with_qualifier("r1").join(&abc().with_qualifier("r2"));
        assert!(matches!(s.index_of(None, "a"), Err(EngineError::AmbiguousColumn { .. })));
    }

    #[test]
    fn qualifier_mismatch_not_found() {
        let s = abc().with_qualifier("r1");
        assert!(matches!(s.index_of(Some("r9"), "a"), Err(EngineError::ColumnNotFound { .. })));
    }

    #[test]
    fn join_concatenates() {
        let s = abc().join(&Schema::from_pairs(&[("d", DataType::Bool)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.field(3).name, "d");
    }

    #[test]
    fn with_qualifier_then_without_roundtrips_names() {
        let s = abc().with_qualifier("x").without_qualifiers();
        assert_eq!(s, abc());
    }

    #[test]
    fn display_shows_types() {
        let s = Schema::from_pairs(&[("p", DataType::Float)]);
        assert_eq!(s.to_string(), "(p: double precision)");
    }
}
