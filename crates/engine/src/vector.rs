//! Vectorised expression kernels over [`ColumnBatch`] morsels.
//!
//! [`eval_batch`] evaluates a (bound) [`Expr`] over a whole column-major
//! morsel at once: comparisons, arithmetic, `||`, Kleene `AND`/`OR`,
//! `NOT`/negation, `IS NULL`, and `CAST` run as tight typed loops over
//! primitive slices. [`selection`] evaluates a predicate into a
//! selection vector (SQL `WHERE`: NULL drops the row).
//!
//! # The bit-identity contract, and how errors keep it
//!
//! Vectorised evaluation must be **indistinguishable from the scalar
//! evaluator** ([`Expr::eval_values`]) — same values (variant and float
//! bits included), same NULL propagation, and the *same runtime error at
//! the same row*, even though scalar evaluation is row-major (all of row
//! 0, then row 1) while kernels are expression-major (all rows of the
//! left operand, then the right). Two mechanisms make that hold:
//!
//! * **Kernels never report errors — they [`Interrupt`].** The moment a
//!   kernel hits anything the scalar evaluator might handle differently
//!   (division by zero, integer overflow, a type mismatch, a NaN) it
//!   abandons the whole vectorised attempt, and [`eval_batch`] re-runs
//!   the *entire expression* scalar, row by row, against rows pivoted
//!   back out of the batch. The redo is the scalar evaluator itself, so
//!   its result — including which row errors first, or no error at all
//!   when `AND`/`OR` short-circuiting skips the offending operand — is
//!   bit-identical by construction. Errors abort the query, so the redo
//!   cost is off the hot path.
//! * **Partial results carry the error row.** On a redo that errors at
//!   row `k`, [`eval_batch`] returns the `k` good values plus
//!   `(k, error)`, letting the caller keep earlier rows flowing (the
//!   fused executor truncates to rows before the error and continues,
//!   reproducing the scalar row-major error order across stages).
//!
//! # Planner eligibility
//!
//! [`vectorisable`] is the *plan-time* gate: structural only (no schema
//! needed), it rejects `CASE`/`IN` (scalar semantics by design) and any
//! `AND`/`OR` whose right side is not [`shortcircuit_safe`] — an
//! eagerly-evaluated `1/0` guard would Interrupt every morsel, paying
//! the vector attempt *and* the scalar redo. Type-dependent hazards
//! (mixed-variant columns, comparisons of incomparable types) are
//! handled at run time by the Interrupt fallback instead, so eligibility
//! never depends on the data.

use std::sync::Arc;

use crate::column::{Column, ColumnBatch, ColumnBuilder, ColumnData, NullMask};
use crate::error::EngineError;
use crate::expr::{cast_value, eval_binary, BinaryOp, Expr, UnaryOp};
use crate::types::Value;

/// The kernel bail-out: "this vectorised attempt may diverge from the
/// scalar evaluator — redo scalar". Carries nothing; the redo recomputes
/// the authoritative outcome.
#[derive(Debug, Clone, Copy)]
pub struct Interrupt;

type KRes = Result<Column, Interrupt>;

/// Is this expression eligible for the vectorised kernels? Structural
/// and schema-free, so the planner can decide per stage at plan time
/// (before binding, even — unresolved column references count as
/// eligible since binding only turns them into `ColumnIdx`).
pub fn vectorisable(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Column { .. } | Expr::ColumnIdx(_) => true,
        Expr::Binary { op: BinaryOp::And | BinaryOp::Or, left, right } => {
            vectorisable(left) && vectorisable(right) && shortcircuit_safe(right)
        }
        Expr::Binary { left, right, .. } => vectorisable(left) && vectorisable(right),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            vectorisable(expr)
        }
        Expr::InList { .. } | Expr::Case { .. } => false,
    }
}

/// May this expression be evaluated *eagerly* in a position the scalar
/// evaluator can skip (the right side of `AND`/`OR`)? True when every
/// error it can raise is a *type* error — those depend only on the
/// column's contents, and the Interrupt fallback restores exact scalar
/// semantics if one fires. Value-dependent errors (division by zero,
/// overflow, cast failures) are excluded: `x <> 0 AND y / x > 1` relies
/// on short-circuiting row by row, which eager evaluation would pay a
/// redo for on every morsel.
pub fn shortcircuit_safe(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Column { .. } | Expr::ColumnIdx(_) => true,
        Expr::IsNull { expr, .. } => shortcircuit_safe(expr),
        Expr::Unary { op: UnaryOp::Not, expr } => shortcircuit_safe(expr),
        Expr::Binary { op, left, right } => {
            let safe_op = op.is_comparison()
                || matches!(op, BinaryOp::And | BinaryOp::Or | BinaryOp::Concat);
            safe_op && shortcircuit_safe(left) && shortcircuit_safe(right)
        }
        _ => false,
    }
}

/// Evaluate `e` over every row of `batch`. Returns the result column
/// and, if evaluation errors, the first erroring row (scalar order) with
/// its error — the column then holds the values of the rows before it.
pub fn eval_batch(e: &Expr, batch: &ColumnBatch) -> (Column, Option<(usize, EngineError)>) {
    maybms_obs::metrics().vector_batches.inc();
    match eval_vec(e, batch) {
        Ok(col) => (col.into_owned(), None),
        Err(Interrupt) => {
            maybms_obs::metrics().scalar_fallbacks.inc();
            // Scalar redo: pivot each row back out and run the scalar
            // evaluator — the authoritative semantics, short-circuiting
            // and error order included.
            let mut row: Vec<Value> = Vec::with_capacity(batch.arity());
            let mut b = ColumnBuilder::new();
            for i in 0..batch.rows() {
                batch.write_row(i, &mut row);
                match e.eval_values(&row) {
                    Ok(v) => b.push(&v),
                    Err(err) => return (b.finish(), Some((i, err))),
                }
            }
            (b.finish(), None)
        }
    }
}

/// Evaluate a predicate over `batch` into a selection vector of the
/// passing rows (SQL `WHERE`: NULL and `false` drop the row, any other
/// non-boolean result is the scalar evaluator's type error). On error,
/// the selection holds the passing rows *before* the erroring row.
pub fn selection(pred: &Expr, batch: &ColumnBatch) -> (Vec<u32>, Option<(usize, EngineError)>) {
    let (col, mut err) = eval_batch(pred, batch);
    let n = col.len();
    let mut sel = Vec::new();
    let type_err = |v: &Value| EngineError::TypeMismatch {
        message: format!("predicate evaluated to {}", v.data_type()),
    };
    match col.data() {
        ColumnData::Bool(v) => {
            if col.nulls().any() {
                for (i, &b) in v.iter().enumerate() {
                    if b && !col.nulls().is_null(i) {
                        sel.push(i as u32);
                    }
                }
            } else {
                for (i, &b) in v.iter().enumerate() {
                    if b {
                        sel.push(i as u32);
                    }
                }
            }
        }
        ColumnData::Const(Value::Bool(true)) => sel.extend(0..n as u32),
        ColumnData::Const(Value::Bool(false)) | ColumnData::Const(Value::Null) => {}
        ColumnData::Const(v) => {
            // Every row evaluates to this non-boolean: the scalar path
            // errors at the first row, before any later evaluation error.
            if n > 0 {
                err = Some((0, type_err(v)));
            }
        }
        ColumnData::Values(v) => {
            for (i, val) in v.iter().enumerate() {
                match val {
                    Value::Null => {}
                    Value::Bool(true) => sel.push(i as u32),
                    Value::Bool(false) => {}
                    other => {
                        err = Some((i, type_err(other)));
                        break;
                    }
                }
            }
        }
        // A typed non-boolean column: the first non-NULL row is the
        // scalar type error (NULL rows just drop).
        other => {
            let dtype_value = match other {
                ColumnData::Int(_) => Value::Int(0),
                ColumnData::Float(_) => Value::Float(0.0),
                ColumnData::Str(_) | ColumnData::Dict { .. } => Value::str(""),
                _ => unreachable!("bool/const/values handled above"),
            };
            for i in 0..n {
                if !col.is_null(i) {
                    err = Some((i, type_err(&dtype_value)));
                    break;
                }
            }
        }
    }
    // A type error found above is always at a row the evaluation error
    // (if any) had already validated, i.e. strictly earlier — scalar
    // order puts it first.
    if let Some((k, _)) = err {
        sel.retain(|&i| (i as usize) < k);
    }
    (sel, err)
}

/// Borrowed-or-owned column, so column references evaluate without
/// copying the underlying vectors.
enum CowCol<'a> {
    Borrowed(&'a Column),
    Owned(Column),
}

impl CowCol<'_> {
    fn col(&self) -> &Column {
        match self {
            CowCol::Borrowed(c) => c,
            CowCol::Owned(c) => c,
        }
    }

    fn into_owned(self) -> Column {
        match self {
            CowCol::Borrowed(c) => c.clone(),
            CowCol::Owned(c) => c,
        }
    }
}

/// The recursive kernel walk. Nodes outside the kernel set (CASE, IN,
/// unbound references) Interrupt — the scalar redo owns their semantics.
fn eval_vec<'a>(e: &Expr, batch: &'a ColumnBatch) -> Result<CowCol<'a>, Interrupt> {
    let n = batch.rows();
    Ok(match e {
        Expr::Literal(v) => CowCol::Owned(Column::from_const(v.clone(), n)),
        Expr::ColumnIdx(i) => {
            CowCol::Borrowed(batch.columns().get(*i).ok_or(Interrupt)?)
        }
        Expr::Binary { left, op, right } => {
            let l = eval_vec(left, batch)?;
            let r = eval_vec(right, batch)?;
            let out = match op {
                BinaryOp::And | BinaryOp::Or => kleene(*op, l.col(), r.col())?,
                BinaryOp::Concat => concat(l.col(), r.col()),
                op if op.is_comparison() => cmp(*op, l.col(), r.col())?,
                op => arith(*op, l.col(), r.col())?,
            };
            CowCol::Owned(out)
        }
        Expr::Unary { op: UnaryOp::Not, expr } => {
            CowCol::Owned(not(eval_vec(expr, batch)?.col())?)
        }
        Expr::Unary { op: UnaryOp::Neg, expr } => {
            CowCol::Owned(neg(eval_vec(expr, batch)?.col())?)
        }
        Expr::IsNull { expr, negated } => {
            let c = eval_vec(expr, batch)?;
            let col = c.col();
            let mut out = Vec::with_capacity(col.len());
            for i in 0..col.len() {
                out.push(col.is_null(i) != *negated);
            }
            CowCol::Owned(Column::from_bools(out, NullMask::none()))
        }
        Expr::Cast { expr, dtype } => {
            let c = eval_vec(expr, batch)?;
            let col = c.col();
            let out = match col.data() {
                ColumnData::Const(v) => Column::from_const(
                    cast_value(v.clone(), *dtype).map_err(|_| Interrupt)?,
                    col.len(),
                ),
                _ => {
                    let mut b = ColumnBuilder::new();
                    for i in 0..col.len() {
                        let v =
                            cast_value(col.value_at(i), *dtype).map_err(|_| Interrupt)?;
                        b.push(&v);
                    }
                    b.finish()
                }
            };
            CowCol::Owned(out)
        }
        Expr::Column { .. } | Expr::InList { .. } | Expr::Case { .. } => {
            return Err(Interrupt)
        }
    })
}

// ---------------------------------------------------------------------
// Operand views
// ---------------------------------------------------------------------

/// Numeric operand as f64 (integers widen exactly like
/// [`Value::as_f64`]).
enum NumV<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    C(f64),
}

impl NumV<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            NumV::I(v) => v[i] as f64,
            NumV::F(v) => v[i],
            NumV::C(x) => *x,
        }
    }
}

fn num_view(c: &Column) -> Option<NumV<'_>> {
    match c.data() {
        ColumnData::Int(v) => Some(NumV::I(v)),
        ColumnData::Float(v) => Some(NumV::F(v)),
        ColumnData::Const(Value::Int(x)) => Some(NumV::C(*x as f64)),
        ColumnData::Const(Value::Float(x)) => Some(NumV::C(*x)),
        _ => None,
    }
}

/// Integer operand (for the Int × Int fast path).
enum IntV<'a> {
    S(&'a [i64]),
    C(i64),
}

impl IntV<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            IntV::S(v) => v[i],
            IntV::C(x) => *x,
        }
    }
}

fn int_view(c: &Column) -> Option<IntV<'_>> {
    match c.data() {
        ColumnData::Int(v) => Some(IntV::S(v)),
        ColumnData::Const(Value::Int(x)) => Some(IntV::C(*x)),
        _ => None,
    }
}

fn is_const_null(c: &Column) -> bool {
    matches!(c.data(), ColumnData::Const(Value::Null))
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// Checked integer op (Div excluded: division always floats).
#[inline]
fn apply_i(op: BinaryOp, a: i64, b: i64) -> Result<i64, Interrupt> {
    let out = match op {
        BinaryOp::Add => a.checked_add(b),
        BinaryOp::Sub => a.checked_sub(b),
        BinaryOp::Mul => a.checked_mul(b),
        BinaryOp::Mod => {
            if b == 0 {
                return Err(Interrupt); // scalar: "modulo by zero"
            }
            a.checked_rem(b)
        }
        _ => unreachable!("integer kernel only handles + - * %"),
    };
    out.ok_or(Interrupt) // scalar: "integer overflow in …"
}

/// Float op with the scalar evaluator's guards: division/modulo by zero
/// and NaN results Interrupt; `-0.0` normalises like [`Value::float`].
#[inline]
fn apply_f(op: BinaryOp, a: f64, b: f64) -> Result<f64, Interrupt> {
    let out = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(Interrupt);
            }
            a / b
        }
        BinaryOp::Mod => {
            if b == 0.0 {
                return Err(Interrupt);
            }
            a % b
        }
        _ => unreachable!("float kernel only handles arithmetic"),
    };
    if out.is_nan() {
        return Err(Interrupt);
    }
    Ok(if out == 0.0 { 0.0 } else { out })
}

fn arith(op: BinaryOp, l: &Column, r: &Column) -> KRes {
    let n = l.len();
    debug_assert_eq!(n, r.len());
    // NULL ⊕ anything = NULL.
    if is_const_null(l) || is_const_null(r) {
        return Ok(Column::from_const(Value::Null, n));
    }
    // Int × Int stays integer, except division (always floats).
    if op != BinaryOp::Div {
        if let (Some(a), Some(b)) = (int_view(l), int_view(r)) {
            let mut out = Vec::with_capacity(n);
            let mut nulls = NullMask::none();
            if l.has_nulls() || r.has_nulls() {
                for i in 0..n {
                    if l.is_null(i) || r.is_null(i) {
                        nulls.set_null(i);
                        out.push(0);
                    } else {
                        out.push(apply_i(op, a.get(i), b.get(i))?);
                    }
                }
            } else {
                for i in 0..n {
                    out.push(apply_i(op, a.get(i), b.get(i))?);
                }
            }
            return Ok(Column::from_ints(out, nulls));
        }
    }
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        let mut out = Vec::with_capacity(n);
        let mut nulls = NullMask::none();
        if l.has_nulls() || r.has_nulls() {
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    nulls.set_null(i);
                    out.push(0.0);
                } else {
                    out.push(apply_f(op, a.get(i), b.get(i))?);
                }
            }
        } else {
            for i in 0..n {
                out.push(apply_f(op, a.get(i), b.get(i))?);
            }
        }
        return Ok(Column::from_floats(out, nulls));
    }
    generic_binary(op, l, r)
}

/// Replicates the scalar comparison verdict for an ordering.
#[inline]
fn cmp_verdict(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => unreachable!("comparison kernel"),
    }
}

fn cmp(op: BinaryOp, l: &Column, r: &Column) -> KRes {
    let n = l.len();
    debug_assert_eq!(n, r.len());
    if is_const_null(l) || is_const_null(r) {
        return Ok(Column::from_const(Value::Null, n));
    }
    // Numeric (mixed Int/Float included): exactly `sql_cmp`'s widening
    // to f64 + total order — Int × Int comparisons included, which the
    // scalar path also routes through f64.
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        let mut out = Vec::with_capacity(n);
        let mut nulls = NullMask::none();
        if l.has_nulls() || r.has_nulls() {
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    nulls.set_null(i);
                    out.push(false);
                } else {
                    out.push(cmp_verdict(op, a.get(i).total_cmp(&b.get(i))));
                }
            }
        } else {
            for i in 0..n {
                out.push(cmp_verdict(op, a.get(i).total_cmp(&b.get(i))));
            }
        }
        return Ok(Column::from_bools(out, nulls));
    }
    // Dictionary fast path: equality against a string literal compares
    // u32 codes (within one dictionary, code equality ⇔ string equality).
    // A literal absent from the dictionary can match no row. Verdicts and
    // NULL handling are exactly the string loop's.
    if matches!(op, BinaryOp::Eq | BinaryOp::NotEq) {
        let dict_eq = |codes: &[u32], dict: &crate::column::StrDict, col: &Column, s: &str| {
            let want = dict.code_of(s);
            let mut out = Vec::with_capacity(codes.len());
            let mut nulls = NullMask::none();
            for (i, &code) in codes.iter().enumerate() {
                if col.is_null(i) {
                    nulls.set_null(i);
                    out.push(false);
                } else {
                    let hit = want == Some(code);
                    out.push(if op == BinaryOp::Eq { hit } else { !hit });
                }
            }
            Column::from_bools(out, nulls)
        };
        match (l.data(), r.data()) {
            (ColumnData::Dict { codes, dict }, ColumnData::Const(Value::Str(s)))
            | (ColumnData::Const(Value::Str(s)), ColumnData::Dict { codes, dict }) => {
                let dcol = if matches!(l.data(), ColumnData::Dict { .. }) { l } else { r };
                return Ok(dict_eq(codes, dict, dcol, s));
            }
            (
                ColumnData::Dict { codes: lc, dict: ld },
                ColumnData::Dict { codes: rc, dict: rd },
            ) if Arc::ptr_eq(ld, rd) => {
                let mut out = Vec::with_capacity(n);
                let mut nulls = NullMask::none();
                for i in 0..n {
                    if l.is_null(i) || r.is_null(i) {
                        nulls.set_null(i);
                        out.push(false);
                    } else {
                        let hit = lc[i] == rc[i];
                        out.push(if op == BinaryOp::Eq { hit } else { !hit });
                    }
                }
                return Ok(Column::from_bools(out, nulls));
            }
            _ => {}
        }
    }
    let str_view = |c: &'_ Column| {
        matches!(
            c.data(),
            ColumnData::Str(_) | ColumnData::Dict { .. } | ColumnData::Const(Value::Str(_))
        )
    };
    let bool_view = |c: &'_ Column| {
        matches!(c.data(), ColumnData::Bool(_) | ColumnData::Const(Value::Bool(_)))
    };
    if (str_view(l) && str_view(r)) || (bool_view(l) && bool_view(r)) {
        // Same-category columns can't type-error: loop over values.
        let mut out = Vec::with_capacity(n);
        let mut nulls = NullMask::none();
        for i in 0..n {
            if l.is_null(i) || r.is_null(i) {
                nulls.set_null(i);
                out.push(false);
            } else {
                let ord = match (l.value_at(i), r.value_at(i)) {
                    (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
                    (Value::Bool(a), Value::Bool(b)) => a.cmp(&b),
                    _ => unreachable!("category checked above"),
                };
                out.push(cmp_verdict(op, ord));
            }
        }
        return Ok(Column::from_bools(out, nulls));
    }
    generic_binary(op, l, r)
}

fn concat(l: &Column, r: &Column) -> Column {
    let n = l.len();
    let mut out: Vec<Arc<str>> = Vec::with_capacity(n);
    let mut nulls = NullMask::none();
    for i in 0..n {
        if l.is_null(i) || r.is_null(i) {
            nulls.set_null(i);
            out.push(Arc::from(""));
        } else {
            out.push(Arc::from(
                format!("{}{}", l.value_at(i), r.value_at(i)).as_str(),
            ));
        }
    }
    Column::from_strs(out, nulls)
}

/// Row `i` of a boolean operand as a Kleene truth value; non-boolean
/// non-NULL Interrupts (the scalar evaluator's type error — which may
/// not even fire, if short-circuiting skips the row).
#[inline]
fn tv(c: &Column, i: usize) -> Result<Option<bool>, Interrupt> {
    if c.is_null(i) {
        return Ok(None);
    }
    match c.data() {
        ColumnData::Bool(v) => Ok(Some(v[i])),
        ColumnData::Const(Value::Bool(b)) => Ok(Some(*b)),
        ColumnData::Values(v) => match &v[i] {
            Value::Bool(b) => Ok(Some(*b)),
            _ => Err(Interrupt),
        },
        _ => Err(Interrupt),
    }
}

fn kleene(op: BinaryOp, l: &Column, r: &Column) -> KRes {
    let n = l.len();
    debug_assert_eq!(n, r.len());
    let mut out = Vec::with_capacity(n);
    let mut nulls = NullMask::none();
    for i in 0..n {
        let lv = tv(l, i)?;
        // The scalar evaluator's short-circuit: a decided left side
        // never looks at (or type-checks) the right.
        let res = match (op, lv) {
            (BinaryOp::And, Some(false)) => Some(false),
            (BinaryOp::Or, Some(true)) => Some(true),
            _ => {
                let rv = tv(r, i)?;
                match op {
                    BinaryOp::And => match (lv, rv) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    BinaryOp::Or => match (lv, rv) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                    _ => unreachable!("kleene kernel"),
                }
            }
        };
        match res {
            Some(b) => out.push(b),
            None => {
                nulls.set_null(i);
                out.push(false);
            }
        }
    }
    Ok(Column::from_bools(out, nulls))
}

fn not(c: &Column) -> KRes {
    let n = c.len();
    match c.data() {
        ColumnData::Bool(v) => {
            let out = v.iter().map(|b| !b).collect();
            Ok(Column::from_bools(out, c.nulls().clone()))
        }
        ColumnData::Const(Value::Bool(b)) => Ok(Column::from_const(Value::Bool(!b), n)),
        ColumnData::Const(Value::Null) => Ok(Column::from_const(Value::Null, n)),
        ColumnData::Values(v) => {
            let mut b = ColumnBuilder::new();
            for val in v {
                match val {
                    Value::Null => b.push(&Value::Null),
                    Value::Bool(x) => b.push(&Value::Bool(!x)),
                    _ => return Err(Interrupt),
                }
            }
            Ok(b.finish())
        }
        _ => Err(Interrupt),
    }
}

fn neg(c: &Column) -> KRes {
    let n = c.len();
    match c.data() {
        ColumnData::Int(v) => {
            let mut out = Vec::with_capacity(n);
            for (i, &x) in v.iter().enumerate() {
                if c.nulls().is_null(i) {
                    out.push(0);
                } else {
                    out.push(x.checked_neg().ok_or(Interrupt)?);
                }
            }
            Ok(Column::from_ints(out, c.nulls().clone()))
        }
        ColumnData::Float(v) => {
            let mut out = Vec::with_capacity(n);
            for (i, &x) in v.iter().enumerate() {
                if c.nulls().is_null(i) {
                    out.push(0.0);
                } else {
                    let y = -x;
                    if y.is_nan() {
                        return Err(Interrupt);
                    }
                    out.push(if y == 0.0 { 0.0 } else { y });
                }
            }
            Ok(Column::from_floats(out, c.nulls().clone()))
        }
        ColumnData::Const(Value::Null) => Ok(Column::from_const(Value::Null, n)),
        ColumnData::Const(Value::Int(x)) => {
            Ok(Column::from_const(Value::Int(x.checked_neg().ok_or(Interrupt)?), n))
        }
        ColumnData::Const(Value::Float(x)) => {
            let v = Value::float(-x).map_err(|_| Interrupt)?;
            Ok(Column::from_const(v, n))
        }
        ColumnData::Values(v) => {
            let mut b = ColumnBuilder::new();
            for val in v {
                match val {
                    Value::Null => b.push(&Value::Null),
                    Value::Int(x) => {
                        b.push(&Value::Int(x.checked_neg().ok_or(Interrupt)?))
                    }
                    Value::Float(x) => b.push(&Value::float(-x).map_err(|_| Interrupt)?),
                    _ => return Err(Interrupt),
                }
            }
            Ok(b.finish())
        }
        _ => Err(Interrupt),
    }
}

/// Per-row fallback through the scalar [`eval_binary`] — still columnar
/// (one output column, no row materialisation) but with per-value
/// dispatch; covers mixed-variant columns and cross-category operands.
fn generic_binary(op: BinaryOp, l: &Column, r: &Column) -> KRes {
    let n = l.len();
    let mut b = ColumnBuilder::new();
    for i in 0..n {
        let lv = l.value_at(i);
        let rv = r.value_at(i);
        if lv.is_null() || rv.is_null() {
            b.push(&Value::Null);
            continue;
        }
        let v = eval_binary(op, &lv, &rv).map_err(|_| Interrupt)?;
        b.push(&v);
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    /// The oracle: eval_batch must agree with per-row eval_values on
    /// values, nulls, and (first) error row + message.
    fn check(e: &Expr, rows: &[Vec<Value>]) {
        let arity = rows.first().map_or(0, Vec::len);
        let cols: Vec<usize> = (0..arity).collect();
        let batch = ColumnBatch::pivot(rows.len(), rows.iter().map(|r| r.as_slice()), &cols);
        let (col, err) = eval_batch(e, &batch);
        let mut scalar_err = None;
        let mut expected = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            match e.eval_values(row) {
                Ok(v) => expected.push(v),
                Err(er) => {
                    scalar_err = Some((i, er));
                    break;
                }
            }
        }
        match (&err, &scalar_err) {
            (None, None) => {}
            (Some((ki, ke)), Some((si, se))) => {
                assert_eq!(ki, si, "error row for {e}");
                assert_eq!(ke.to_string(), se.to_string(), "error message for {e}");
            }
            _ => panic!("error mismatch for {e}: vector {err:?} vs scalar {scalar_err:?}"),
        }
        assert_eq!(col.len(), expected.len(), "value count for {e}");
        for (i, want) in expected.iter().enumerate() {
            let got = col.value_at(i);
            assert_eq!(&got, want, "row {i} of {e}");
            assert_eq!(got.data_type(), want.data_type(), "variant at row {i} of {e}");
        }
    }

    fn c(i: usize) -> Expr {
        Expr::ColumnIdx(i)
    }

    fn int_rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(-3), Value::Null],
            vec![Value::Null, Value::Int(5)],
            vec![Value::Int(7), Value::Int(2)],
        ]
    }

    #[test]
    fn int_arithmetic_and_comparisons() {
        for op in [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Mod,
            BinaryOp::Div,
            BinaryOp::Eq,
            BinaryOp::Lt,
            BinaryOp::GtEq,
        ] {
            check(&c(0).binary(op, c(1)), &int_rows());
            check(&c(0).binary(op, Expr::lit(3i64)), &int_rows());
        }
    }

    #[test]
    fn float_and_mixed_numeric() {
        let rows = vec![
            vec![Value::Float(0.5), Value::Int(2)],
            vec![Value::Float(-1.25), Value::Null],
            vec![Value::Null, Value::Int(0)],
        ];
        for op in [BinaryOp::Add, BinaryOp::Mul, BinaryOp::Div, BinaryOp::Lt, BinaryOp::Eq] {
            check(&c(0).binary(op, c(1)), &rows);
        }
    }

    #[test]
    fn division_and_modulo_by_zero_match_scalar() {
        let rows = vec![
            vec![Value::Int(4), Value::Int(2)],
            vec![Value::Int(9), Value::Int(0)], // errors here
            vec![Value::Int(1), Value::Int(1)],
        ];
        check(&c(0).binary(BinaryOp::Div, c(1)), &rows);
        check(&c(0).binary(BinaryOp::Mod, c(1)), &rows);
        let frows = vec![
            vec![Value::Float(1.0), Value::Float(0.0)], // errors at row 0
        ];
        check(&c(0).binary(BinaryOp::Div, c(1)), &frows);
        check(&c(0).binary(BinaryOp::Mod, c(1)), &frows);
    }

    #[test]
    fn integer_overflow_matches_scalar() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(i64::MAX), Value::Int(1)],
        ];
        check(&c(0).binary(BinaryOp::Add, c(1)), &rows);
        check(&c(0).binary(BinaryOp::Mul, Expr::lit(2i64)), &rows);
        let neg = Expr::Unary { op: UnaryOp::Neg, expr: Box::new(c(0)) };
        check(&neg, &[vec![Value::Int(i64::MIN), Value::Null]]);
    }

    #[test]
    fn huge_int_comparison_widens_like_scalar() {
        // sql_cmp widens Int to f64 even for Int × Int: 2^60 and 2^60+1
        // compare Equal. The kernel must reproduce that quirk.
        let big = 1i64 << 60;
        let rows = vec![vec![Value::Int(big), Value::Int(big + 1)]];
        check(&c(0).eq(c(1)), &rows);
        check(&c(0).binary(BinaryOp::Lt, c(1)), &rows);
    }

    #[test]
    fn string_and_bool_comparisons() {
        let rows = vec![
            vec![Value::str("abc"), Value::str("abd")],
            vec![Value::Null, Value::str("x")],
            vec![Value::str(""), Value::str("")],
        ];
        for op in [BinaryOp::Eq, BinaryOp::Lt, BinaryOp::GtEq] {
            check(&c(0).binary(op, c(1)), &rows);
        }
        let brows = vec![
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::Bool(false), Value::Null],
        ];
        for op in [BinaryOp::Eq, BinaryOp::Lt] {
            check(&c(0).binary(op, c(1)), &brows);
        }
    }

    #[test]
    fn incomparable_types_error_like_scalar() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::str("x")], // TypeMismatch here
        ];
        check(&c(0).binary(BinaryOp::Lt, c(1)), &rows);
        check(&c(0).binary(BinaryOp::Add, c(1)), &rows);
    }

    #[test]
    fn concat_including_null_and_variants() {
        let rows = vec![
            vec![Value::str("a"), Value::str("b")],
            vec![Value::str("a"), Value::Null], // 'a' || NULL -> NULL
            vec![Value::Int(1), Value::Float(2.0)], // "1" || "2.0"
            vec![Value::Bool(true), Value::str("!")],
        ];
        check(&c(0).binary(BinaryOp::Concat, c(1)), &rows);
    }

    #[test]
    fn kleene_and_or_with_nulls() {
        let rows = vec![
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::Bool(false), Value::Null],
            vec![Value::Null, Value::Bool(true)],
            vec![Value::Null, Value::Null],
        ];
        check(&c(0).and(c(1)), &rows);
        check(&c(0).or(c(1)), &rows);
        check(&c(0).and(c(0).or(c(1))), &rows);
    }

    #[test]
    fn short_circuit_skips_right_errors() {
        // false AND (1/0 = 1): scalar short-circuits; the kernel must
        // Interrupt and the redo must agree (no error).
        let boom = Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)).eq(Expr::lit(1i64));
        let e = Expr::lit(false).and(boom.clone());
        check(&e, &[vec![Value::Int(0)]]);
        // true AND boom: the scalar path *does* error.
        let e = Expr::lit(true).and(boom);
        check(&e, &[vec![Value::Int(0)]]);
    }

    #[test]
    fn kleene_type_errors_respect_short_circuit() {
        // (#0 AND #1) where #1 is an Int column: rows where #0 is false
        // never type-check #1.
        let rows = vec![
            vec![Value::Bool(false), Value::Int(3)],
            vec![Value::Bool(true), Value::Int(3)], // errors here
        ];
        check(&c(0).and(c(1)), &rows);
        check(&c(0).or(c(1)), &rows); // true OR short-circuits differently
    }

    #[test]
    fn not_neg_isnull_cast() {
        let rows = vec![
            vec![Value::Bool(true), Value::Int(5), Value::str("42")],
            vec![Value::Null, Value::Null, Value::Null],
            vec![Value::Bool(false), Value::Int(-2), Value::str("7")],
        ];
        check(&c(0).clone().not(), &rows);
        check(&Expr::Unary { op: UnaryOp::Neg, expr: Box::new(c(1)) }, &rows);
        check(&Expr::IsNull { expr: Box::new(c(2)), negated: false }, &rows);
        check(&Expr::IsNull { expr: Box::new(c(2)), negated: true }, &rows);
        check(&Expr::Cast { expr: Box::new(c(2)), dtype: DataType::Int }, &rows);
        check(&Expr::Cast { expr: Box::new(c(1)), dtype: DataType::Text }, &rows);
    }

    #[test]
    fn case_and_in_fall_back_to_scalar() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(5)], vec![Value::Null]];
        let case = Expr::Case {
            branches: vec![(
                c(0).binary(BinaryOp::Gt, Expr::lit(2i64)),
                Expr::lit("big"),
            )],
            else_expr: Some(Box::new(Expr::lit("small"))),
        };
        check(&case, &rows);
        let inlist = Expr::InList {
            expr: Box::new(c(0)),
            list: vec![Expr::lit(1i64), Expr::lit(Value::Null)],
            negated: false,
        };
        check(&inlist, &rows);
        assert!(!vectorisable(&case));
        assert!(!vectorisable(&inlist));
    }

    #[test]
    fn mixed_variant_columns_use_generic_kernel() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Float(2.5), Value::Int(2)],
            vec![Value::Null, Value::Int(3)],
            vec![Value::str("s"), Value::Int(4)], // Add errors here
        ];
        check(&c(0).binary(BinaryOp::Add, c(1)), &rows);
        check(&c(0).eq(c(1)), &rows);
    }

    #[test]
    fn empty_and_single_row_batches() {
        let e = c(0).binary(BinaryOp::Add, Expr::lit(1i64));
        check(&e, &[]);
        check(&e, &[vec![Value::Int(41)]]);
        check(&e, &[vec![Value::Null]]);
    }

    #[test]
    fn all_null_columns() {
        let rows = vec![vec![Value::Null, Value::Null]; 3];
        check(&c(0).binary(BinaryOp::Add, c(1)), &rows);
        check(&c(0).eq(c(1)), &rows);
        check(&c(0).and(c(1)), &rows);
        check(&c(0).binary(BinaryOp::Concat, c(1)), &rows);
    }

    #[test]
    fn selection_matches_scalar_predicate() {
        let rows = [vec![Value::Int(5)],
            vec![Value::Null],
            vec![Value::Int(1)],
            vec![Value::Int(9)]];
        let pred = c(0).binary(BinaryOp::Gt, Expr::lit(3i64));
        let batch = ColumnBatch::pivot(4, rows.iter().map(|r| r.as_slice()), &[0]);
        let (sel, err) = selection(&pred, &batch);
        assert!(err.is_none());
        assert_eq!(sel, vec![0, 3]);
    }

    #[test]
    fn selection_type_error_matches_scalar_row_and_message() {
        // Predicate evaluates to Int: scalar errors at the first row the
        // predicate is evaluated on.
        let rows = [vec![Value::Null], vec![Value::Int(2)]];
        let batch = ColumnBatch::pivot(2, rows.iter().map(|r| r.as_slice()), &[0]);
        let (sel, err) = selection(&c(0), &batch);
        // Row 0 is NULL -> dropped; row 1 is the type error.
        assert!(sel.is_empty());
        let (row, e) = err.expect("type error");
        assert_eq!(row, 1);
        let scalar = c(0).eval_predicate_values(&rows[1]).unwrap_err();
        assert_eq!(e.to_string(), scalar.to_string());
    }

    #[test]
    fn selection_truncates_at_error() {
        // Rows 0-1 pass/fail normally; row 2 divides by zero.
        let rows = [vec![Value::Int(8), Value::Int(2)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(9), Value::Int(3)]];
        let pred = c(0).binary(BinaryOp::Div, c(1)).binary(BinaryOp::Gt, Expr::lit(2i64));
        let batch = ColumnBatch::pivot(4, rows.iter().map(|r| r.as_slice()), &[0, 1]);
        let (sel, err) = selection(&pred, &batch);
        assert_eq!(sel, vec![0]);
        let (row, _) = err.expect("division by zero");
        assert_eq!(row, 2);
    }

    #[test]
    fn vectorisable_gates_shortcircuit_arithmetic() {
        let cmp = c(0).binary(BinaryOp::Gt, Expr::lit(1i64));
        let div = c(0).binary(BinaryOp::Div, c(1)).binary(BinaryOp::Gt, Expr::lit(1i64));
        assert!(vectorisable(&cmp.clone().and(cmp.clone())));
        // Guard pattern: arithmetic on the right of AND stays scalar.
        assert!(!vectorisable(&cmp.clone().and(div.clone())));
        // …but arithmetic on the left is fine (always evaluated).
        assert!(vectorisable(&div.and(cmp)));
    }

    #[test]
    fn unbound_references_interrupt_to_scalar_error() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let bound = Expr::col("a").bind(&schema).unwrap();
        check(&bound, &[vec![Value::Int(1)]]);
        // Unbound: the redo reports the scalar UnboundExpression error.
        let rows = [vec![Value::Int(1)]];
        let batch = ColumnBatch::pivot(1, rows.iter().map(|r| r.as_slice()), &[0]);
        let (_, err) = eval_batch(&Expr::col("a"), &batch);
        assert!(matches!(err, Some((0, EngineError::UnboundExpression { .. }))));
    }
}
