//! A small rule-based plan optimizer.
//!
//! The original MayBMS inherits PostgreSQL's optimizer for the rewritten
//! relational plans (§2.3); this module gives the substrate the standard
//! algebraic rewrites so the engine is a credible stand-in:
//!
//! * constant folding inside predicates and projections;
//! * `Filter` merging (`σ_p(σ_q(R)) → σ_{p∧q}(R)`);
//! * `Filter` pushdown through `UnionAll`, `Sort`, and into the matching
//!   side of joins (when the predicate binds against one input's schema);
//! * trivial-filter elimination (`σ_true(R) → R`,
//!   `σ_false(R) → ∅`);
//! * `Project` merging (`π_a(π_b(R)) → π_{a∘b}(R)`, substituting the
//!   inner expressions into the outer ones) and identity-projection
//!   elimination (`π_{all columns, unchanged} (R) → R`) — so the fused
//!   pipelines of `maybms-pipe` see a single projection stage;
//! * `Distinct` idempotence and `Limit(0)` short-circuiting.
//!
//! Every rewrite preserves the bag semantics of the plan; the property
//! tests in `tests/optimizer_props.rs` check optimized ≡ unoptimized on
//! random plans and data.

use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::plan::PhysicalPlan;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::Value;

/// Optimize a plan against a catalog (schemas are needed to route
/// predicates through joins). The result computes the same bag of tuples.
pub fn optimize(plan: &PhysicalPlan, catalog: &Catalog) -> Result<PhysicalPlan> {
    let p = rewrite(plan.clone(), catalog)?;
    Ok(p)
}

/// Compute a plan's output schema without executing it.
pub fn plan_schema(plan: &PhysicalPlan, catalog: &Catalog) -> Result<Arc<Schema>> {
    Ok(match plan {
        PhysicalPlan::Values { schema, .. } => schema.clone(),
        PhysicalPlan::Scan { table, alias } => {
            let base = catalog.get(table)?.schema().clone();
            match alias {
                None => base,
                Some(a) => Arc::new(base.with_qualifier(a)),
            }
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Distinct { input }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. } => plan_schema(input, catalog)?,
        PhysicalPlan::Project { input, items } => {
            let in_schema = plan_schema(input, catalog)?;
            let fields = items
                .iter()
                .map(|item| {
                    let bound = item.expr.bind(&in_schema)?;
                    Ok(crate::schema::Field::new(
                        item.name.clone(),
                        bound.data_type(&in_schema),
                    ))
                })
                .collect::<Result<Vec<_>>>()?;
            Arc::new(Schema::new(fields))
        }
        PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::HashJoin { left, right, .. } => {
            let l = plan_schema(left, catalog)?;
            let r = plan_schema(right, catalog)?;
            Arc::new(l.join(&r))
        }
        PhysicalPlan::UnionAll { inputs } => plan_schema(
            inputs.first().ok_or_else(|| crate::error::EngineError::InvalidOperator {
                message: "UNION of zero inputs".into(),
            })?,
            catalog,
        )?,
        PhysicalPlan::Aggregate { input, group_exprs, group_names, aggs } => {
            let in_schema = plan_schema(input, catalog)?;
            let mut fields = Vec::new();
            for (e, n) in group_exprs.iter().zip(group_names) {
                let bound = e.bind(&in_schema)?;
                fields.push(crate::schema::Field::new(
                    n.clone(),
                    bound.data_type(&in_schema),
                ));
            }
            for a in aggs {
                fields.push(crate::schema::Field::new(
                    a.name.clone(),
                    crate::types::DataType::Unknown,
                ));
            }
            Arc::new(Schema::new(fields))
        }
    })
}

fn rewrite(plan: PhysicalPlan, catalog: &Catalog) -> Result<PhysicalPlan> {
    // Bottom-up: optimize children first.
    let plan = match plan {
        PhysicalPlan::Filter { input, predicate } => {
            let input = rewrite(*input, catalog)?;
            let predicate = fold(predicate);
            apply_filter_rules(input, predicate, catalog)?
        }
        PhysicalPlan::Project { input, items } => {
            let input = rewrite(*input, catalog)?;
            let items = items
                .into_iter()
                .map(|mut i| {
                    i.expr = fold(i.expr);
                    i
                })
                .collect();
            apply_project_rules(input, items, catalog)?
        }
        PhysicalPlan::NestedLoopJoin { left, right, predicate } => {
            PhysicalPlan::NestedLoopJoin {
                left: Box::new(rewrite(*left, catalog)?),
                right: Box::new(rewrite(*right, catalog)?),
                predicate: predicate.map(fold),
            }
        }
        PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => {
            PhysicalPlan::HashJoin {
                left: Box::new(rewrite(*left, catalog)?),
                right: Box::new(rewrite(*right, catalog)?),
                left_keys,
                right_keys,
            }
        }
        PhysicalPlan::UnionAll { inputs } => PhysicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| rewrite(p, catalog))
                .collect::<Result<_>>()?,
        },
        PhysicalPlan::Distinct { input } => {
            let input = rewrite(*input, catalog)?;
            // distinct(distinct(R)) = distinct(R)
            if matches!(input, PhysicalPlan::Distinct { .. }) {
                input
            } else {
                PhysicalPlan::Distinct { input: Box::new(input) }
            }
        }
        PhysicalPlan::Sort { input, keys } => {
            PhysicalPlan::Sort { input: Box::new(rewrite(*input, catalog)?), keys }
        }
        PhysicalPlan::Limit { input, n } => {
            if n == 0 {
                // LIMIT 0: no rows; keep the schema.
                let schema = plan_schema(&input, catalog)?;
                PhysicalPlan::Values { schema, rows: Vec::new() }
            } else {
                PhysicalPlan::Limit { input: Box::new(rewrite(*input, catalog)?), n }
            }
        }
        PhysicalPlan::Aggregate { input, group_exprs, group_names, aggs } => {
            PhysicalPlan::Aggregate {
                input: Box::new(rewrite(*input, catalog)?),
                group_exprs: group_exprs.into_iter().map(fold).collect(),
                group_names,
                aggs,
            }
        }
        leaf @ (PhysicalPlan::Values { .. } | PhysicalPlan::Scan { .. }) => leaf,
    };
    Ok(plan)
}

/// The filter-specific rewrites, applied after the child is optimized.
fn apply_filter_rules(
    input: PhysicalPlan,
    predicate: Expr,
    catalog: &Catalog,
) -> Result<PhysicalPlan> {
    // σ_true(R) → R;   σ_false(R) → empty Values.
    match &predicate {
        Expr::Literal(Value::Bool(true)) => return Ok(input),
        Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => {
            let schema = plan_schema(&input, catalog)?;
            return Ok(PhysicalPlan::Values { schema, rows: Vec::new() });
        }
        _ => {}
    }
    match input {
        // σ_p(σ_q(R)) → σ_{q AND p}(R)  (evaluation order preserved: q first).
        PhysicalPlan::Filter { input: inner, predicate: q } => {
            let merged = q.and(predicate);
            apply_filter_rules(*inner, merged, catalog)
        }
        // σ_p(R ∪ S) → σ_p(R) ∪ σ_p(S)
        PhysicalPlan::UnionAll { inputs } => {
            let pushed = inputs
                .into_iter()
                .map(|p| apply_filter_rules(p, predicate.clone(), catalog))
                .collect::<Result<_>>()?;
            Ok(PhysicalPlan::UnionAll { inputs: pushed })
        }
        // σ_p(sort(R)) → sort(σ_p(R)) — filtering first is never slower.
        PhysicalPlan::Sort { input: inner, keys } => {
            let filtered = apply_filter_rules(*inner, predicate, catalog)?;
            Ok(PhysicalPlan::Sort { input: Box::new(filtered), keys })
        }
        // Push into a join side when the predicate binds there. Name-based
        // predicates only — positional (ColumnIdx) predicates stay put.
        PhysicalPlan::NestedLoopJoin { left, right, predicate: join_pred } => {
            let l_schema = plan_schema(&left, catalog)?;
            let r_schema = plan_schema(&right, catalog)?;
            if is_name_based(&predicate) && predicate.bind(&l_schema).is_ok() {
                let pushed = apply_filter_rules(*left, predicate, catalog)?;
                return Ok(PhysicalPlan::NestedLoopJoin {
                    left: Box::new(pushed),
                    right,
                    predicate: join_pred,
                });
            }
            if is_name_based(&predicate) && predicate.bind(&r_schema).is_ok() {
                let pushed = apply_filter_rules(*right, predicate, catalog)?;
                return Ok(PhysicalPlan::NestedLoopJoin {
                    left,
                    right: Box::new(pushed),
                    predicate: join_pred,
                });
            }
            Ok(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::NestedLoopJoin {
                    left,
                    right,
                    predicate: join_pred,
                }),
                predicate,
            })
        }
        other => Ok(PhysicalPlan::Filter { input: Box::new(other), predicate }),
    }
}

/// The projection-specific rewrites, applied after the child is
/// optimized.
fn apply_project_rules(
    input: PhysicalPlan,
    items: Vec<crate::ops::ProjectItem>,
    catalog: &Catalog,
) -> Result<PhysicalPlan> {
    // π_a(π_b(R)) → π_{a∘b}(R): substitute the inner output expressions
    // into the outer items, collapsing adjacent projections into one.
    if let PhysicalPlan::Project { input: inner_input, items: inner_items } = input {
        if let Some(merged) = merge_projections(&items, &inner_items) {
            return apply_project_rules(*inner_input, merged, catalog);
        }
        // Substitution failed (e.g. a qualified reference): keep both.
        return Ok(PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Project {
                input: inner_input,
                items: inner_items,
            }),
            items,
        });
    }
    // π over all columns, unchanged and in order → the input itself.
    let schema = plan_schema(&input, catalog)?;
    if is_identity_projection(&items, &schema) {
        return Ok(input);
    }
    Ok(PhysicalPlan::Project { input: Box::new(input), items })
}

/// Compose `outer ∘ inner`, returning `None` when any outer reference
/// cannot be resolved against the inner output (merge must then be
/// skipped). An inner item that can fail at runtime (e.g. `1/0` kept
/// unfolded) must neither be dropped (unreferenced) nor moved into a
/// position the outer expression may *skip* — CASE branches past the
/// first condition, the right side of short-circuiting AND/OR, IN-list
/// candidates — otherwise merging would silently drop its runtime
/// error; `None` in those cases too.
fn merge_projections(
    outer: &[crate::ops::ProjectItem],
    inner: &[crate::ops::ProjectItem],
) -> Option<Vec<crate::ops::ProjectItem>> {
    // Resolve outer references against the inner output names.
    let lookup = Schema::new(
        inner
            .iter()
            .map(|i| crate::schema::Field::new(i.name.clone(), crate::types::DataType::Unknown))
            .collect(),
    );
    let mut referenced = vec![false; inner.len()];
    let merged: Option<Vec<_>> = outer
        .iter()
        .map(|item| {
            let expr = substitute(&item.expr, inner, &lookup, &mut referenced, false)?;
            Some(crate::ops::ProjectItem::new(fold(expr), item.name.clone()))
        })
        .collect();
    let merged = merged?;
    // Dropping an unreferenced inner item is only safe when evaluating it
    // could not have failed.
    for (item, used) in inner.iter().zip(&referenced) {
        if !used && !item.expr.infallible() {
            return None;
        }
    }
    Some(merged)
}

/// Replace every column reference in `e` with the inner expression it
/// names; `None` when a reference does not resolve. `guarded` marks
/// positions the evaluator may skip (short-circuiting) — a fallible
/// inner expression must not move into one, since the inner projection
/// evaluated it unconditionally.
fn substitute(
    e: &Expr,
    inner: &[crate::ops::ProjectItem],
    lookup: &Schema,
    referenced: &mut Vec<bool>,
    guarded: bool,
) -> Option<Expr> {
    let resolve = |i: usize, referenced: &mut Vec<bool>| -> Option<Expr> {
        let item = inner.get(i)?;
        if guarded && !item.expr.infallible() {
            return None;
        }
        referenced[i] = true;
        Some(item.expr.clone())
    };
    Some(match e {
        Expr::Column { qualifier, name } => {
            let i = lookup.index_of(qualifier.as_deref(), name).ok()?;
            resolve(i, referenced)?
        }
        Expr::ColumnIdx(i) => resolve(*i, referenced)?,
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { left, op, right } => {
            // AND/OR short-circuit: the right operand may never run.
            let rhs_guarded =
                guarded || matches!(op, BinaryOp::And | BinaryOp::Or);
            Expr::Binary {
                left: Box::new(substitute(left, inner, lookup, referenced, guarded)?),
                op: *op,
                right: Box::new(substitute(right, inner, lookup, referenced, rhs_guarded)?),
            }
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, inner, lookup, referenced, guarded)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute(expr, inner, lookup, referenced, guarded)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(substitute(expr, inner, lookup, referenced, guarded)?),
            // Candidates after a match are never evaluated.
            list: list
                .iter()
                .map(|x| substitute(x, inner, lookup, referenced, true))
                .collect::<Option<_>>()?,
            negated: *negated,
        },
        Expr::Case { branches, else_expr } => Expr::Case {
            // Only the first condition is evaluated unconditionally;
            // everything else depends on the branches taken.
            branches: branches
                .iter()
                .enumerate()
                .map(|(bi, (c, r))| {
                    Some((
                        substitute(c, inner, lookup, referenced, guarded || bi > 0)?,
                        substitute(r, inner, lookup, referenced, true)?,
                    ))
                })
                .collect::<Option<_>>()?,
            else_expr: match else_expr {
                Some(x) => Some(Box::new(substitute(x, inner, lookup, referenced, true)?)),
                None => None,
            },
        },
        Expr::Cast { expr, dtype } => Expr::Cast {
            expr: Box::new(substitute(expr, inner, lookup, referenced, guarded)?),
            dtype: *dtype,
        },
    })
}

/// Does the projection keep exactly the input columns, unchanged, in
/// order, under their own names? (Only unqualified input fields qualify:
/// projection output drops qualifiers, so re-qualified schemas are not
/// identities.)
fn is_identity_projection(items: &[crate::ops::ProjectItem], schema: &Schema) -> bool {
    if items.len() != schema.len() {
        return false;
    }
    items.iter().enumerate().all(|(i, item)| {
        let field = schema.field(i);
        if field.qualifier.is_some() || item.name != field.name {
            return false;
        }
        match &item.expr {
            Expr::ColumnIdx(j) => *j == i,
            Expr::Column { qualifier: None, name } => {
                matches!(schema.index_of(None, name), Ok(j) if j == i)
            }
            _ => false,
        }
    })
}

/// Is the expression free of positional column references? Pushing a
/// positional predicate below an operator would re-index it incorrectly.
fn is_name_based(e: &Expr) -> bool {
    let mut positional = Vec::new();
    e.referenced_columns(&mut positional);
    positional.is_empty()
}

/// Constant folding. Folds only subexpressions whose evaluation cannot
/// fail (so `1/0` stays a runtime error at the original position).
pub fn fold(e: Expr) -> Expr {
    let empty = Tuple::new(Vec::new());
    match e {
        Expr::Binary { left, op, right } => {
            let left = fold(*left);
            let right = fold(*right);
            // Boolean short-circuits with one constant side. Guarded
            // like every fold: an operand the scalar evaluator *always*
            // runs (the left side; the right side once the left didn't
            // decide) may only fold away when it can neither raise —
            // `(1/0 = 1) AND false` must stay a runtime error — nor
            // change the outcome's boolean type check (`3 AND false`
            // errors; plain `false` would not). `is_boolish` is the
            // type half of that guard; [`Expr::infallible`] the other.
            match (op, &left, &right) {
                // Scalar short-circuit: the right side never runs.
                (BinaryOp::And, Expr::Literal(Value::Bool(false)), _) => {
                    return Expr::Literal(Value::Bool(false));
                }
                (BinaryOp::Or, Expr::Literal(Value::Bool(true)), _) => {
                    return Expr::Literal(Value::Bool(true));
                }
                // The always-evaluated side folds away entirely.
                (BinaryOp::And, other, Expr::Literal(Value::Bool(false)))
                    if other.infallible() && is_boolish(other) =>
                {
                    return Expr::Literal(Value::Bool(false));
                }
                (BinaryOp::Or, other, Expr::Literal(Value::Bool(true)))
                    if other.infallible() && is_boolish(other) =>
                {
                    return Expr::Literal(Value::Bool(true));
                }
                // The surviving side keeps evaluating (errors intact);
                // it just must already be boolean-valued.
                (BinaryOp::And, Expr::Literal(Value::Bool(true)), other)
                | (BinaryOp::And, other, Expr::Literal(Value::Bool(true)))
                    if is_boolish(other) =>
                {
                    return other.clone();
                }
                (BinaryOp::Or, Expr::Literal(Value::Bool(false)), other)
                | (BinaryOp::Or, other, Expr::Literal(Value::Bool(false)))
                    if is_boolish(other) =>
                {
                    return other.clone();
                }
                _ => {}
            }
            let folded = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
            try_eval_const(folded, &empty)
        }
        Expr::Unary { op, expr } => {
            let inner = fold(*expr);
            match (op, &inner) {
                (UnaryOp::Not, Expr::Literal(Value::Bool(b))) => {
                    Expr::Literal(Value::Bool(!b))
                }
                _ => try_eval_const(Expr::Unary { op, expr: Box::new(inner) }, &empty),
            }
        }
        Expr::IsNull { expr, negated } => {
            let inner = fold(*expr);
            if let Expr::Literal(v) = &inner {
                return Expr::Literal(Value::Bool(v.is_null() != negated));
            }
            Expr::IsNull { expr: Box::new(inner), negated }
        }
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(fold(*expr)),
            list: list.into_iter().map(fold).collect(),
            negated,
        },
        Expr::Case { branches, else_expr } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(c, r)| (fold(c), fold(r)))
                .collect(),
            else_expr: else_expr.map(|x| Box::new(fold(*x))),
        },
        Expr::Cast { expr, dtype } => {
            try_eval_const(Expr::Cast { expr: Box::new(fold(*expr)), dtype }, &empty)
        }
        other => other,
    }
}

/// Structurally guaranteed to evaluate to boolean or NULL whenever it
/// evaluates at all — so `AND`/`OR` may absorb it (or hand the result
/// to it) without dropping the type check `eval_logical` performs on
/// every operand it sees.
fn is_boolish(e: &Expr) -> bool {
    match e {
        Expr::Literal(Value::Bool(_)) | Expr::Literal(Value::Null) => true,
        Expr::IsNull { .. } | Expr::InList { .. } => true,
        Expr::Unary { op: UnaryOp::Not, .. } => true,
        Expr::Binary { op, .. } => {
            op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or)
        }
        _ => false,
    }
}

/// If the expression is literal-only, try evaluating it; keep the original
/// on error (runtime errors must surface at execution, not planning).
fn try_eval_const(e: Expr, empty: &Tuple) -> Expr {
    if !is_literal_only(&e) {
        return e;
    }
    match e.eval(empty) {
        Ok(v) => Expr::Literal(v),
        Err(_) => e,
    }
}

fn is_literal_only(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Column { .. } | Expr::ColumnIdx(_) => false,
        Expr::Binary { left, right, .. } => is_literal_only(left) && is_literal_only(right),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            is_literal_only(expr)
        }
        Expr::InList { expr, list, .. } => {
            is_literal_only(expr) && list.iter().all(is_literal_only)
        }
        Expr::Case { branches, else_expr } => {
            branches.iter().all(|(c, r)| is_literal_only(c) && is_literal_only(r))
                && else_expr.as_ref().is_none_or(|x| is_literal_only(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ProjectItem;
    use crate::tuple::rel;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "t",
            rel(
                &[("k", DataType::Int), ("v", DataType::Int)],
                vec![
                    vec![1.into(), 10.into()],
                    vec![2.into(), 20.into()],
                    vec![3.into(), 30.into()],
                ],
            ),
        )
        .unwrap();
        c.create(
            "s",
            rel(
                &[("k2", DataType::Int), ("w", DataType::Int)],
                vec![vec![1.into(), 100.into()], vec![2.into(), 200.into()]],
            ),
        )
        .unwrap();
        c
    }

    fn scan(t: &str) -> PhysicalPlan {
        PhysicalPlan::Scan { table: t.into(), alias: None }
    }

    #[test]
    fn fold_arithmetic_and_booleans() {
        let e = Expr::lit(2i64).binary(BinaryOp::Add, Expr::lit(3i64));
        assert_eq!(fold(e), Expr::Literal(Value::Int(5)));
        let e = Expr::lit(true).and(Expr::col("x").eq(Expr::lit(1i64)));
        assert_eq!(fold(e).to_string(), "(x = 1)");
        let e = Expr::lit(false).and(Expr::col("x").eq(Expr::lit(1i64)));
        assert_eq!(fold(e), Expr::Literal(Value::Bool(false)));
        // A bare column is not provably boolean: `false OR y` would
        // type-error on a non-boolean y, so it must not fold to `y`.
        let e = Expr::lit(false).or(Expr::col("y"));
        assert_eq!(fold(e).to_string(), "(false OR y)");
        let e = Expr::lit(false).or(Expr::col("y").eq(Expr::lit(1i64)));
        assert_eq!(fold(e).to_string(), "(y = 1)");
    }

    #[test]
    fn fold_keeps_fallible_always_evaluated_operands() {
        // `(1/0 = 1) AND false`: the scalar evaluator always runs the
        // left side first, so the division error must survive folding.
        let boom = Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)).eq(Expr::lit(1i64));
        let e = boom.clone().and(Expr::lit(false));
        assert_eq!(fold(e.clone()), e, "fallible left of AND-false stays");
        let e = boom.clone().or(Expr::lit(true));
        assert_eq!(fold(e.clone()), e, "fallible left of OR-true stays");
        // The mirrored positions short-circuit in the scalar evaluator,
        // so there the fold *is* allowed.
        let e = Expr::lit(false).and(boom.clone());
        assert_eq!(fold(e), Expr::Literal(Value::Bool(false)));
        let e = Expr::lit(true).or(boom.clone());
        assert_eq!(fold(e), Expr::Literal(Value::Bool(true)));
        // `X AND true -> X` keeps X evaluated, so fallible X is fine…
        let e = boom.clone().and(Expr::lit(true));
        assert_eq!(fold(e), boom);
        // …but a non-boolean X must keep the AND (type check preserved).
        let e = Expr::lit(3i64).and(Expr::lit(true));
        assert_eq!(fold(e).to_string(), "(3 AND true)");
    }

    #[test]
    fn fold_keeps_failing_constants_unfolded() {
        let e = Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64));
        let folded = fold(e.clone());
        assert_eq!(folded, e); // division by zero stays a runtime error
    }

    #[test]
    fn fold_is_null_on_literals() {
        let e = Expr::IsNull { expr: Box::new(Expr::lit(Value::Null)), negated: false };
        assert_eq!(fold(e), Expr::Literal(Value::Bool(true)));
    }

    #[test]
    fn filter_true_removed_false_emptied() {
        let c = catalog();
        let p = PhysicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::lit(true),
        };
        assert!(matches!(optimize(&p, &c).unwrap(), PhysicalPlan::Scan { .. }));
        let p = PhysicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::lit(1i64).eq(Expr::lit(2i64)),
        };
        let opt = optimize(&p, &c).unwrap();
        assert!(matches!(&opt, PhysicalPlan::Values { rows, .. } if rows.is_empty()));
        // Schema preserved for downstream operators.
        assert_eq!(plan_schema(&opt, &c).unwrap().names(), vec!["k", "v"]);
    }

    #[test]
    fn filters_merge() {
        let c = catalog();
        let p = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("t")),
                predicate: Expr::col("k").binary(BinaryOp::Gt, Expr::lit(1i64)),
            }),
            predicate: Expr::col("v").binary(BinaryOp::Lt, Expr::lit(30i64)),
        };
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::Filter { input, .. } = &opt else { panic!("{opt:?}") };
        assert!(matches!(**input, PhysicalPlan::Scan { .. }), "single merged filter");
        assert_eq!(opt.execute(&c).unwrap().len(), 1); // k=2
    }

    #[test]
    fn filter_pushes_through_union() {
        let c = catalog();
        let p = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::UnionAll {
                inputs: vec![scan("t"), scan("t")],
            }),
            predicate: Expr::col("k").eq(Expr::lit(1i64)),
        };
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::UnionAll { inputs } = &opt else { panic!("{opt:?}") };
        assert!(inputs.iter().all(|i| matches!(i, PhysicalPlan::Filter { .. })));
        assert_eq!(opt.execute(&c).unwrap().len(), 2);
    }

    #[test]
    fn filter_pushes_into_join_side() {
        let c = catalog();
        let join = PhysicalPlan::NestedLoopJoin {
            left: Box::new(scan("t")),
            right: Box::new(scan("s")),
            predicate: Some(Expr::col("k").eq(Expr::col("k2"))),
        };
        let p = PhysicalPlan::Filter {
            input: Box::new(join),
            predicate: Expr::col("w").binary(BinaryOp::GtEq, Expr::lit(200i64)),
        };
        let opt = optimize(&p, &c).unwrap();
        // The filter must now sit on the right side of the join.
        let PhysicalPlan::NestedLoopJoin { right, .. } = &opt else {
            panic!("expected join at root, got {opt:?}")
        };
        assert!(matches!(**right, PhysicalPlan::Filter { .. }));
        assert_eq!(opt.execute(&c).unwrap().len(), 1);
    }

    #[test]
    fn positional_predicates_not_pushed() {
        let c = catalog();
        let join = PhysicalPlan::NestedLoopJoin {
            left: Box::new(scan("t")),
            right: Box::new(scan("s")),
            predicate: None,
        };
        let p = PhysicalPlan::Filter {
            input: Box::new(join),
            predicate: Expr::ColumnIdx(3).eq(Expr::lit(200i64)),
        };
        let opt = optimize(&p, &c).unwrap();
        assert!(matches!(opt, PhysicalPlan::Filter { .. }));
        assert_eq!(opt.execute(&c).unwrap().len(), 3); // 3 t-rows × 1 s-row
    }

    #[test]
    fn distinct_collapses_and_limit_zero_shortcuts() {
        let c = catalog();
        let p = PhysicalPlan::Distinct {
            input: Box::new(PhysicalPlan::Distinct { input: Box::new(scan("t")) }),
        };
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::Distinct { input } = &opt else { panic!() };
        assert!(matches!(**input, PhysicalPlan::Scan { .. }));

        let p = PhysicalPlan::Limit { input: Box::new(scan("t")), n: 0 };
        let opt = optimize(&p, &c).unwrap();
        assert!(matches!(opt, PhysicalPlan::Values { .. }));
    }

    #[test]
    fn filter_moves_below_sort() {
        let c = catalog();
        let p = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(scan("t")),
                keys: vec![crate::ops::SortKey::desc(Expr::col("v"))],
            }),
            predicate: Expr::col("k").binary(BinaryOp::Lt, Expr::lit(3i64)),
        };
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::Sort { input, .. } = &opt else { panic!("{opt:?}") };
        assert!(matches!(**input, PhysicalPlan::Filter { .. }));
        let out = opt.execute(&c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].value(1), &Value::Int(20)); // still sorted desc
    }

    #[test]
    fn adjacent_projects_merge() {
        let c = catalog();
        // π_{kk+1 as m} (π_{k+k as kk, v as v}(t)) → π_{(k+k)+1 as m}(t)
        let inner = PhysicalPlan::Project {
            input: Box::new(scan("t")),
            items: vec![
                ProjectItem::new(Expr::col("k").binary(BinaryOp::Add, Expr::col("k")), "kk"),
                ProjectItem::col("v"),
            ],
        };
        let p = PhysicalPlan::Project {
            input: Box::new(inner),
            items: vec![ProjectItem::new(
                Expr::col("kk").binary(BinaryOp::Add, Expr::lit(1i64)),
                "m",
            )],
        };
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::Project { input, items } = &opt else { panic!("{opt:?}") };
        assert!(matches!(**input, PhysicalPlan::Scan { .. }), "merged to one projection");
        assert_eq!(items.len(), 1);
        let out = opt.execute(&c).unwrap();
        assert_eq!(out.schema().names(), vec!["m"]);
        assert_eq!(out.tuples()[0].value(0), &Value::Int(3)); // (1+1)+1
        assert_eq!(out.tuples(), p.execute(&c).unwrap().tuples());
    }

    #[test]
    fn project_merge_keeps_unreferenced_fallible_inner() {
        let c = catalog();
        // The inner `1/0` stays a runtime error; dropping it via a merge
        // would change semantics, so the two projections must survive.
        let inner = PhysicalPlan::Project {
            input: Box::new(scan("t")),
            items: vec![
                ProjectItem::col("k"),
                ProjectItem::new(Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)), "boom"),
            ],
        };
        let p = PhysicalPlan::Project {
            input: Box::new(inner),
            items: vec![ProjectItem::col("k")],
        };
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::Project { input, .. } = &opt else { panic!("{opt:?}") };
        assert!(matches!(**input, PhysicalPlan::Project { .. }));
        assert!(opt.execute(&c).is_err(), "runtime error preserved");
    }

    #[test]
    fn project_merge_refuses_fallible_inner_in_short_circuit_position() {
        let c = catalog();
        // Inner `1/0` is evaluated for every row by the inner projection;
        // the outer CASE only evaluates `boom` in a never-taken branch.
        // Merging would swallow the division-by-zero, so it must not.
        let inner = PhysicalPlan::Project {
            input: Box::new(scan("t")),
            items: vec![
                ProjectItem::col("k"),
                ProjectItem::new(
                    Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)),
                    "boom",
                ),
            ],
        };
        let p = PhysicalPlan::Project {
            input: Box::new(inner),
            items: vec![ProjectItem::new(
                Expr::Case {
                    branches: vec![(
                        Expr::col("k").binary(BinaryOp::Gt, Expr::lit(100i64)),
                        Expr::col("boom"),
                    )],
                    else_expr: Some(Box::new(Expr::lit(0i64))),
                },
                "x",
            )],
        };
        assert!(p.execute(&c).is_err(), "unoptimized plan raises");
        let opt = optimize(&p, &c).unwrap();
        let PhysicalPlan::Project { input, .. } = &opt else { panic!("{opt:?}") };
        assert!(matches!(**input, PhysicalPlan::Project { .. }), "merge refused");
        assert!(opt.execute(&c).is_err(), "optimized plan still raises");
    }

    #[test]
    fn identity_projection_eliminated() {
        let c = catalog();
        let p = PhysicalPlan::Project {
            input: Box::new(scan("t")),
            items: vec![ProjectItem::col("k"), ProjectItem::col("v")],
        };
        assert!(matches!(optimize(&p, &c).unwrap(), PhysicalPlan::Scan { .. }));
        // Reordered columns are not an identity.
        let p = PhysicalPlan::Project {
            input: Box::new(scan("t")),
            items: vec![ProjectItem::col("v"), ProjectItem::col("k")],
        };
        assert!(matches!(optimize(&p, &c).unwrap(), PhysicalPlan::Project { .. }));
        // Renaming is not an identity.
        let p = PhysicalPlan::Project {
            input: Box::new(scan("t")),
            items: vec![ProjectItem::new(Expr::col("k"), "k2"), ProjectItem::col("v")],
        };
        assert!(matches!(optimize(&p, &c).unwrap(), PhysicalPlan::Project { .. }));
    }

    #[test]
    fn triple_projection_collapses_to_one() {
        let c = catalog();
        let mut plan = scan("t");
        for _ in 0..3 {
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                items: vec![
                    ProjectItem::new(Expr::col("k").binary(BinaryOp::Add, Expr::lit(1i64)), "k"),
                    ProjectItem::col("v"),
                ],
            };
        }
        let opt = optimize(&plan, &c).unwrap();
        let PhysicalPlan::Project { input, .. } = &opt else { panic!("{opt:?}") };
        assert!(matches!(**input, PhysicalPlan::Scan { .. }));
        assert_eq!(opt.execute(&c).unwrap().tuples(), plan.execute(&c).unwrap().tuples());
    }

    #[test]
    fn plan_schema_matches_execution() {
        let c = catalog();
        let plans = vec![
            scan("t"),
            PhysicalPlan::Project {
                input: Box::new(scan("t")),
                items: vec![ProjectItem::new(
                    Expr::col("k").binary(BinaryOp::Add, Expr::lit(1i64)),
                    "k1",
                )],
            },
            PhysicalPlan::NestedLoopJoin {
                left: Box::new(scan("t")),
                right: Box::new(scan("s")),
                predicate: None,
            },
        ];
        for p in plans {
            let predicted = plan_schema(&p, &c).unwrap();
            let actual = p.execute(&c).unwrap().schema().clone();
            assert_eq!(predicted.names(), actual.names());
        }
    }
}
