//! Errors for MayBMS query processing.

use std::fmt;

use maybms_engine::EngineError;
use maybms_sql::ParseError;
use maybms_store::StoreError;
use maybms_urel::UrelError;

/// Error raised while planning or executing a MayBMS statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Lex/parse failure.
    Parse(ParseError),
    /// Relational-engine failure.
    Engine(EngineError),
    /// U-relational-layer failure.
    Urel(UrelError),
    /// Durability-layer failure (WAL append, checkpoint, recovery).
    Store(StoreError),
    /// The statement violates a MayBMS typing rule (§2.2) — e.g. standard
    /// SQL aggregates over an uncertain relation.
    Typing {
        /// What rule was violated.
        message: String,
    },
    /// The statement is outside the supported language fragment.
    Unsupported {
        /// What construct is unsupported.
        message: String,
    },
    /// Planner-level error (bad aggregate arguments, select items not in
    /// GROUP BY, …).
    Plan {
        /// Description.
        message: String,
    },
    /// A statement panicked; the panic was caught at the statement
    /// boundary and the engine is still usable.
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl CoreError {
    /// The governor abort behind this error, if that is what it is —
    /// however deeply it is nested ([`EngineError::Gov`] directly or via
    /// the u-relational layer).
    pub fn gov_abort(&self) -> Option<&maybms_gov::GovError> {
        match self {
            CoreError::Engine(EngineError::Gov(g)) => Some(g),
            CoreError::Urel(UrelError::Engine(EngineError::Gov(g))) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Urel(e) => write!(f, "{e}"),
            CoreError::Store(e) => write!(f, "{e}"),
            CoreError::Typing { message } => write!(f, "typing error: {message}"),
            CoreError::Unsupported { message } => write!(f, "unsupported: {message}"),
            CoreError::Plan { message } => write!(f, "plan error: {message}"),
            CoreError::Internal { message } => {
                write!(f, "internal error (statement panicked): {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Parse(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::Urel(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<UrelError> for CoreError {
    fn from(e: UrelError) -> Self {
        CoreError::Urel(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Shorthand constructors used across the planner.
pub(crate) fn typing(message: impl Into<String>) -> CoreError {
    CoreError::Typing { message: message.into() }
}

pub(crate) fn unsupported(message: impl Into<String>) -> CoreError {
    CoreError::Unsupported { message: message.into() }
}

pub(crate) fn plan_err(message: impl Into<String>) -> CoreError {
    CoreError::Plan { message: message.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = EngineError::TableNotFound { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = UrelError::NotTCertain { operation: "repair key".into() }.into();
        assert!(e.to_string().contains("t-certain"));
        let e = typing("sum on uncertain relation");
        assert!(e.to_string().contains("typing error"));
    }
}
