//! # maybms-core — MayBMS query processing
//!
//! This crate ties the stack together into "a complete probabilistic
//! database management system" (§1): the SQL frontend (`maybms-sql`), the
//! U-relational representation and algebra (`maybms-urel`), the confidence
//! engines (`maybms-conf`), and the relational substrate
//! (`maybms-engine`).
//!
//! The paper's §2.2 language maps here as follows:
//!
//! | construct | module |
//! |---|---|
//! | `conf`, `aconf(ε,δ)`, `tconf`, `possible` | [`agg`], [`exec`] |
//! | `repair key … weight by …`, `pick tuples …` | [`exec`] (via `maybms-urel`) |
//! | `esum`, `ecount` (linearity of expectation) | [`agg`] |
//! | `argmax(arg, value)` | [`agg`] |
//! | typing rules (t-certain vs uncertain, forbidden aggregates) | [`exec`], [`agg`] |
//! | updates as table modifications (§2.3) | [`db`] |
//!
//! ## Example: the paper's Figure 1, verbatim
//!
//! ```
//! use maybms_core::MayBms;
//! use maybms_engine::{rel, DataType, Value};
//!
//! let mut db = MayBms::new();
//! db.register(
//!     "ft",
//!     rel(
//!         &[("player", DataType::Text), ("init", DataType::Text),
//!           ("final", DataType::Text), ("p", DataType::Float)],
//!         vec![
//!             vec!["Bryant".into(), "F".into(), "F".into(), Value::Float(0.8)],
//!             vec!["Bryant".into(), "F".into(), "SE".into(), Value::Float(0.05)],
//!             vec!["Bryant".into(), "F".into(), "SL".into(), Value::Float(0.15)],
//!         ],
//!     ),
//! ).unwrap();
//! // One-step random walk (Figure 1's R2) and its confidence.
//! let r = db.query(
//!     "select Final, conf() as p from (repair key Player, Init in FT weight by p) R \
//!      group by Final",
//! ).unwrap();
//! assert_eq!(r.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agg;
pub mod db;
pub mod error;
pub mod exec;
pub mod translate;

pub use agg::ConfContext;
pub use db::{MayBms, RecoveryReport, StatementResult};
pub use error::{CoreError, Result};
pub use exec::QueryOutput;
