//! The MayBMS database facade: a catalog of U-relations plus the shared
//! world table, with a SQL entry point.
//!
//! "As a consequence of our choice of a purely relational representation
//! system, [updates, concurrency control and recovery] cause surprisingly
//! little difficulty. U-relations are represented relationally and updates
//! are just modifications of these tables" (§2.3). Accordingly INSERT /
//! UPDATE / DELETE here are plain representation-level edits — and, when a
//! data directory is attached ([`MayBms::open`]), each edit is logged
//! physically to the write-ahead log *before* it is installed in memory,
//! so a crash at any instant loses at most the statement in flight.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use maybms_engine::{Field, Relation, Schema, Tuple, Value};
use maybms_sql::{parse_statement, parse_statements, InsertSource, Statement};
use maybms_store::{Op, Store, StoreStatus, Vfs};
use maybms_urel::{URelation, UTuple, WorldTable};

use crate::agg::ConfContext;
use crate::error::{plan_err, unsupported, CoreError, Result};
use crate::exec::{eval_query, ExecCtx, QueryOutput};
use crate::translate::{data_type_of, scalar};

/// Result of running one statement.
#[derive(Debug, Clone)]
pub enum StatementResult {
    /// A query result.
    Query(QueryOutput),
    /// DDL/DML acknowledgement.
    Ok {
        /// Human-readable acknowledgement (`CREATE TABLE`, `INSERT 3`, …).
        message: String,
    },
}

impl StatementResult {
    /// The query output, if this was a query.
    pub fn query(self) -> Option<QueryOutput> {
        match self {
            StatementResult::Query(q) => Some(q),
            StatementResult::Ok { .. } => None,
        }
    }
}

/// What crash recovery found when a database was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Stored tables after recovery.
    pub tables: usize,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Whether a torn WAL tail (crash mid-append) was truncated away.
    pub truncated_tail: bool,
}

/// A MayBMS database: in-memory by default, durable when opened on a
/// data directory.
#[derive(Debug, Default)]
pub struct MayBms {
    tables: BTreeMap<String, URelation>,
    wt: WorldTable,
    conf: ConfContext,
    store: Option<Store>,
    recovery: Option<RecoveryReport>,
    /// Stats collected for the most recently executed statement (the
    /// shell's timing line and the slow-query log read these).
    last_stats: Option<Arc<maybms_obs::QueryStats>>,
}

impl MayBms {
    /// A fresh, empty, purely in-memory database (no durability).
    pub fn new() -> MayBms {
        MayBms::default()
    }

    /// Open (or create) a durable database in `dir`, running crash
    /// recovery: load the latest snapshot, replay the WAL tail, truncate
    /// a torn final record if the last session died mid-append.
    pub fn open(dir: impl AsRef<Path>) -> Result<MayBms> {
        // `MAYBMS_STORE_FAULT_EVERY=N` (the CI chaos leg) interposes
        // deterministic transient faults the store must retry through.
        Self::open_with_vfs(maybms_store::maybe_chaos(Arc::new(
            maybms_store::StdVfs::open(dir)?,
        )))
    }

    /// [`MayBms::open`] over an arbitrary [`Vfs`] — the fault-injection
    /// and crash-matrix tests drive the whole database through this.
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>) -> Result<MayBms> {
        let (store, recovered) = Store::open(vfs)?;
        let mut tables = recovered.tables;
        // Recovered tables (row-image WAL replays, legacy snapshots) are
        // compacted to the at-rest representation once, here — the same
        // install discipline as live DDL/DML.
        if maybms_engine::columnar_store_default() {
            for t in tables.values_mut() {
                if !t.is_columnar() {
                    *t = t.compact();
                }
            }
        }
        Ok(MayBms {
            recovery: Some(RecoveryReport {
                tables: tables.len(),
                replayed: recovered.replayed,
                truncated_tail: recovered.truncated_tail,
            }),
            tables,
            wt: recovered.wt,
            conf: ConfContext::default(),
            store: Some(store),
            last_stats: None,
        })
    }

    /// What recovery found, if this database was opened from a data
    /// directory.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Recover a poisoned (or healthy) durable database in-process: re-run
    /// crash recovery over the same VFS — load the latest snapshot, replay
    /// the WAL tail — and swap the recovered catalog in. The shell's
    /// `\reopen` meta command; errors if the database is in-memory.
    pub fn reopen(&mut self) -> Result<RecoveryReport> {
        let vfs = match &self.store {
            Some(store) => store.vfs(),
            None => {
                return Err(plan_err(
                    "no data directory attached; nothing to reopen",
                ))
            }
        };
        let mut fresh = Self::open_with_vfs(vfs)?;
        fresh.conf = self.conf;
        let report = fresh.recovery.expect("open_with_vfs records a recovery report");
        *self = fresh;
        Ok(report)
    }

    /// Durability status (data location, WAL bytes since the last
    /// checkpoint), if a data directory is attached.
    pub fn durability_status(&self) -> Option<StoreStatus> {
        self.store.as_ref().map(Store::status)
    }

    /// Fold the whole catalog into an atomic snapshot and empty the WAL.
    /// Errors if the database is in-memory.
    pub fn checkpoint(&mut self) -> Result<()> {
        match &mut self.store {
            Some(store) => Ok(store.checkpoint(&self.tables, &self.wt)?),
            None => Err(plan_err("no data directory attached; open the database \
                                  with --data-dir to enable checkpoints")),
        }
    }

    /// Log `op` to the WAL (fsynced, when durable) and then install it in
    /// the in-memory catalog. Ordering matters: the record hits disk
    /// first, so the catalog never holds a change the log could lose.
    /// Callers validate before building the op; an apply failure after
    /// that is an internal invariant break.
    fn commit(&mut self, op: Op) -> Result<()> {
        // Abort-before-log: every catalog mutation passes through here,
        // and nothing is durable or installed until `store.log` below
        // succeeds — so honouring a pending cancel/deadline/budget abort
        // at this point leaves the catalog (and its fingerprint)
        // bit-identical to the pre-statement state.
        maybms_gov::check()
            .map_err(|g| CoreError::Engine(maybms_engine::EngineError::Gov(g)))?;
        // Pivot full table images *before* logging so the WAL record
        // carries the columnar representation (op tag 5) and recovery
        // restores it without re-pivoting; the post-apply compact below
        // then finds the installed table already columnar.
        let op = match op {
            Op::PutTable { name, table }
                if maybms_engine::columnar_store_default() && !table.is_columnar() =>
            {
                Op::PutTable { name, table: table.compact() }
            }
            op => op,
        };
        if let Some(store) = &mut self.store {
            store.log(&op, &self.wt)?;
        }
        let affected = match &op {
            Op::CreateTable { name, .. }
            | Op::PutTable { name, .. }
            | Op::DropTable { name } => name.clone(),
            Op::InsertRows { table, .. } | Op::ReplaceRows { table, .. } => table.clone(),
        };
        maybms_store::apply_op(&mut self.tables, op)
            .map_err(|e| plan_err(format!("internal: logged op failed to apply: {e}")))?;
        // Re-install the at-rest representation: the one pivot per
        // statement the columnar store pays (gated like every install).
        if maybms_engine::columnar_store_default() {
            if let Some(t) = self.tables.get_mut(&affected) {
                if !t.is_columnar() {
                    *t = t.compact();
                }
            }
        }
        Ok(())
    }

    /// Access the world table (variable registry).
    pub fn world_table(&self) -> &WorldTable {
        &self.wt
    }

    /// Sample one possible world (seeded) and instantiate every stored
    /// table in it — a Monte Carlo view of the whole database. Certain
    /// tables come back unchanged; uncertain tables keep exactly the
    /// tuples whose conditions the sampled world satisfies (§2.1).
    pub fn sample_instance(&self, seed: u64) -> Vec<(String, Relation)> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let world = self.wt.sample_world(&mut rng);
        self.tables
            .iter()
            .map(|(name, u)| (name.clone(), u.instantiate(&world)))
            .collect()
    }

    /// The confidence-computation configuration (mutable, so callers can
    /// switch `conf()` engines or reseed `aconf`).
    pub fn conf_context_mut(&mut self) -> &mut ConfContext {
        &mut self.conf
    }

    /// The per-query stats collected for the most recently executed
    /// statement (pipelines with per-stage row counts, confidence
    /// effort, rows returned).
    pub fn last_stats(&self) -> Option<&Arc<maybms_obs::QueryStats>> {
        self.last_stats.as_ref()
    }

    /// Register a certain relation as a table (programmatic loading).
    pub fn register(&mut self, name: &str, relation: Relation) -> Result<()> {
        self.register_u(name, URelation::from_certain(&relation))
    }

    /// Register a U-relation directly.
    pub fn register_u(&mut self, name: &str, u: URelation) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(CoreError::Engine(maybms_engine::EngineError::TableExists {
                name: name.to_string(),
            }));
        }
        let schema = Arc::new(u.schema().without_qualifiers());
        self.commit(Op::PutTable { name: key, table: u.with_schema(schema) })
    }

    /// Look up a stored table.
    pub fn table(&self, name: &str) -> Result<&URelation> {
        self.tables.get(&name.to_ascii_lowercase()).ok_or_else(|| {
            CoreError::Engine(maybms_engine::EngineError::TableNotFound {
                name: name.to_string(),
            })
        })
    }

    /// Names of all stored tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Parse and run one statement. The statement-root trace span opens
    /// here so parsing shows up as a child next to execution.
    pub fn run(&mut self, sql: &str) -> Result<StatementResult> {
        let root = maybms_obs::trace::span("statement");
        let stmt = {
            let _parse = maybms_obs::trace::span("parse");
            parse_statement(sql)?
        };
        self.execute_traced(&stmt, root)
    }

    /// Parse and run a `;`-separated script, returning every result.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        let stmts = parse_statements(sql)?;
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    /// Run a query and require a t-certain result.
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        match self.run(sql)? {
            StatementResult::Query(QueryOutput::Certain(r)) => Ok(r),
            StatementResult::Query(QueryOutput::Uncertain(_)) => Err(plan_err(
                "query produced an uncertain relation; use query_uncertain() or add \
                 a confidence construct (conf/tconf/possible)",
            )),
            StatementResult::Ok { message } => {
                Err(plan_err(format!("statement was not a query ({message})")))
            }
        }
    }

    /// Run a query, lifting the result to a U-relation.
    pub fn query_uncertain(&mut self, sql: &str) -> Result<URelation> {
        match self.run(sql)? {
            StatementResult::Query(out) => Ok(out.into_urelation()),
            StatementResult::Ok { message } => {
                Err(plan_err(format!("statement was not a query ({message})")))
            }
        }
    }

    /// Execute a parsed statement.
    ///
    /// Every statement runs with a fresh [`maybms_obs::QueryStats`]
    /// collector attached (allocation-light; never changes results),
    /// retrievable afterwards via [`MayBms::last_stats`]. The statement
    /// is timed into the process-wide query metrics and, when the
    /// slow-query log is enabled (`MAYBMS_SLOW_MS` or
    /// [`maybms_obs::set_slow_log_threshold`]), slow statements are
    /// reported on stderr with their stats summary.
    pub fn execute(&mut self, stmt: &Statement) -> Result<StatementResult> {
        let root = maybms_obs::trace::span("statement");
        self.execute_traced(stmt, root)
    }

    /// [`MayBms::execute`] under an already-open statement-root span
    /// ([`MayBms::run`] opens it before parsing).
    fn execute_traced(
        &mut self,
        stmt: &Statement,
        mut root: maybms_obs::trace::Span,
    ) -> Result<StatementResult> {
        // Arm the statement's governor limits (session timeout / memory
        // budget / pending `\cancel`); the guard disarms them on every
        // exit path, including panics.
        let gov = maybms_gov::begin_statement();
        let stats = Arc::new(maybms_obs::QueryStats::new());
        if root.is_active() {
            stats.set_root_span(root.id());
        }
        let m = maybms_obs::metrics();
        let fallbacks_before = m.scalar_fallbacks.get();
        let t0 = std::time::Instant::now();
        let result = {
            let _exec = maybms_obs::trace::span("execute");
            // Panic isolation: a statement that panics (in the planner,
            // an operator, or a kernel) is reported as an internal error
            // with the engine still usable — mutations reach the catalog
            // only through `commit`, which logs before installing, so a
            // mid-statement panic leaves it consistent.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute_inner(stmt, &stats)
            }))
            .unwrap_or_else(|payload| {
                m.gov_panics.inc();
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(CoreError::Internal { message })
            })
        };
        let elapsed = t0.elapsed();
        // Governor aborts: count by kind, once per statement (checks keep
        // failing after the first abort, so counting at check sites would
        // multiply). The label doubles as the root span's abort attribute.
        let gov_abort_label = match &result {
            Err(e) => match e.gov_abort() {
                Some(maybms_gov::GovError::Cancelled) => {
                    m.gov_cancelled.inc();
                    Some("cancelled")
                }
                Some(maybms_gov::GovError::DeadlineExceeded { .. }) => {
                    m.gov_deadline.inc();
                    Some("deadline")
                }
                Some(maybms_gov::GovError::MemBudgetExceeded { .. }) => {
                    m.gov_mem_rejected.inc();
                    Some("mem_budget")
                }
                None => {
                    if matches!(e, CoreError::Internal { .. }) {
                        Some("panic")
                    } else {
                        None
                    }
                }
            },
            Ok(_) => None,
        };
        let aborted = gov_abort_label.is_some();
        // Scalar fallbacks are observable only inside the vector kernels,
        // so attribute this statement's delta of the process-wide counter
        // (statements on one database run serially under `&mut self`).
        // `EXPLAIN ANALYZE` may have claimed part of the window already.
        let window = m.scalar_fallbacks.get().saturating_sub(fallbacks_before);
        stats.scalar_fallbacks.add(window.saturating_sub(stats.scalar_fallbacks.get()));
        if let Ok(StatementResult::Query(out)) = &result {
            stats.rows_returned.add(out.len() as u64);
        }
        m.queries.inc();
        m.query_seconds.observe(elapsed);
        // Statement kind for the sliding latency windows: conf-bearing
        // queries are classified after execution (whether conf() ran is
        // a property of the plan, not the statement's syntax alone).
        // Governor-aborted and panicked statements go to their own
        // `aborted` window so abort storms don't skew the per-kind
        // latency percentiles with artificially short samples.
        let kind = if aborted {
            maybms_obs::window::StatementKind::Aborted
        } else {
            match stmt {
                Statement::Select(_) | Statement::Explain { .. } => {
                    if stats.conf_calls.get() > 0 {
                        maybms_obs::window::StatementKind::Conf
                    } else {
                        maybms_obs::window::StatementKind::Select
                    }
                }
                _ => maybms_obs::window::StatementKind::Dml,
            }
        };
        maybms_obs::window::record_statement(kind, elapsed);
        root.attr("kind", kind.label());
        root.attr("rows", stats.rows_returned.get());
        if let Some(label) = gov_abort_label {
            root.attr("gov_abort", label);
        }
        if let Some(slack) = gov.deadline_slack_nanos() {
            root.attr("deadline_slack_ms", slack as f64 / 1e6);
        }
        if maybms_gov::statement_peak_bytes() > 0 {
            root.attr("peak_charged_bytes", maybms_gov::statement_peak_bytes());
        }
        if let Some(threshold) = maybms_obs::slow_log_threshold_ms() {
            if elapsed.as_millis() as u64 >= threshold {
                m.slow_queries.inc();
                eprintln!(
                    "[slow query] {:.3} ms ({}): {stmt}",
                    elapsed.as_secs_f64() * 1e3,
                    stats.summary(),
                );
                maybms_obs::slow_log_write(&format!(
                    "{{\"ms\":{:.3},\"kind\":\"{}\",\"statement\":\"{}\",\"summary\":\"{}\",\"root_span\":{},\"ok\":{}}}",
                    elapsed.as_secs_f64() * 1e3,
                    kind.label(),
                    maybms_obs::trace::json_escaped(&stmt.to_string()),
                    maybms_obs::trace::json_escaped(&stats.summary()),
                    stats.root_span().unwrap_or(0),
                    result.is_ok(),
                ));
            }
        }
        self.last_stats = Some(stats);
        result
    }

    fn execute_inner(
        &mut self,
        stmt: &Statement,
        stats: &Arc<maybms_obs::QueryStats>,
    ) -> Result<StatementResult> {
        match stmt {
            Statement::Select(q) => {
                let mut ctx = ExecCtx::new(&self.tables, &mut self.wt, self.conf);
                ctx.stats = Some(stats.clone());
                let out = eval_query(q, &mut ctx)?;
                Ok(StatementResult::Query(out))
            }
            Statement::Explain { query, analyze } => {
                let mut ctx = ExecCtx::new(&self.tables, &mut self.wt, self.conf);
                ctx.trace = Some(Vec::new());
                if *analyze {
                    ctx.stats = Some(stats.clone());
                }
                let m = maybms_obs::metrics();
                let fallbacks_before = m.scalar_fallbacks.get();
                let t0 = std::time::Instant::now();
                let out = eval_query(query, &mut ctx)?;
                let elapsed = t0.elapsed();
                if *analyze {
                    stats.scalar_fallbacks.add(
                        m.scalar_fallbacks.get().saturating_sub(fallbacks_before),
                    );
                    return Ok(StatementResult::Ok {
                        message: render_analyze(query, stats, &out, elapsed),
                    });
                }
                let pipelines = ctx.trace.take().unwrap_or_default();
                let mut message = format!("EXPLAIN {query}\n");
                message.push_str(
                    "pipeline decomposition (morsel-driven executor, executed):\n",
                );
                for (i, p) in pipelines.iter().enumerate() {
                    for (j, line) in p.lines().enumerate() {
                        if j == 0 {
                            message.push_str(&format!("#{} {line}\n", i + 1));
                        } else {
                            message.push_str(&format!("   {line}\n"));
                        }
                    }
                }
                let (rows, kind) = match &out {
                    QueryOutput::Certain(r) => (r.len(), "t-certain"),
                    QueryOutput::Uncertain(u) => (u.len(), "uncertain"),
                };
                message.push_str(&format!("result: {rows} {kind} rows\n"));
                Ok(StatementResult::Ok { message })
            }
            Statement::CreateTable { name, columns } => {
                let fields: Vec<Field> = columns
                    .iter()
                    .map(|c| Ok(Field::new(c.name.clone(), data_type_of(&c.type_name)?)))
                    .collect::<Result<_>>()?;
                let u = URelation::empty(Arc::new(Schema::new(fields)));
                self.register_u(name, u)?;
                Ok(StatementResult::Ok { message: "CREATE TABLE".into() })
            }
            Statement::CreateTableAs { name, query } => {
                let mut ctx = ExecCtx::new(&self.tables, &mut self.wt, self.conf);
                ctx.stats = Some(stats.clone());
                let out = eval_query(query, &mut ctx)?.into_urelation();
                self.register_u(name, out)?;
                Ok(StatementResult::Ok { message: "CREATE TABLE AS".into() })
            }
            Statement::Insert { table, columns, source } => {
                let n = self.insert(table, columns.as_deref(), source)?;
                Ok(StatementResult::Ok { message: format!("INSERT {n}") })
            }
            Statement::Update { table, assignments, filter } => {
                let n = self.update(table, assignments, filter.as_ref())?;
                Ok(StatementResult::Ok { message: format!("UPDATE {n}") })
            }
            Statement::Delete { table, filter } => {
                let n = self.delete(table, filter.as_ref())?;
                Ok(StatementResult::Ok { message: format!("DELETE {n}") })
            }
            Statement::Drop { table, if_exists } => {
                let key = table.to_ascii_lowercase();
                if self.tables.contains_key(&key) {
                    self.commit(Op::DropTable { name: key })?;
                } else if !if_exists {
                    return Err(CoreError::Engine(
                        maybms_engine::EngineError::TableNotFound { name: table.clone() },
                    ));
                }
                Ok(StatementResult::Ok { message: "DROP TABLE".into() })
            }
        }
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<usize> {
        // Evaluate the source first (it may read the target table).
        let rows: Vec<Tuple> = match source {
            InsertSource::Values(rows) => {
                let empty = Tuple::new(Vec::new());
                rows.iter()
                    .map(|row| {
                        let vals: Vec<Value> = row
                            .iter()
                            .map(|e| Ok(scalar(e)?.eval(&empty)?))
                            .collect::<Result<_>>()?;
                        Ok(Tuple::new(vals))
                    })
                    .collect::<Result<_>>()?
            }
            InsertSource::Query(q) => {
                let mut ctx = ExecCtx::new(&self.tables, &mut self.wt, self.conf);
                let out = eval_query(q, &mut ctx)?;
                match out {
                    QueryOutput::Certain(r) => r.into_tuples(),
                    QueryOutput::Uncertain(_) => {
                        return Err(unsupported(
                            "INSERT … SELECT from an uncertain query; materialise it with \
                             CREATE TABLE AS instead (conditions must be preserved)",
                        ))
                    }
                }
            }
        };
        let key = table.to_ascii_lowercase();
        let target = self.tables.get(&key).ok_or_else(|| {
            CoreError::Engine(maybms_engine::EngineError::TableNotFound {
                name: table.to_string(),
            })
        })?;
        let arity = target.schema().len();
        // Column mapping.
        let mapping: Option<Vec<usize>> = match columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| Ok(target.schema().index_of(None, c)?))
                    .collect::<Result<_>>()?,
            ),
        };
        // Validate every row and assemble the physical insert set before
        // anything is logged or installed: a mid-statement arity error
        // must leave both the WAL and the table untouched.
        let mut new_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let tuple = match &mapping {
                None => {
                    if row.arity() != arity {
                        return Err(CoreError::Engine(
                            maybms_engine::EngineError::SchemaMismatch {
                                message: format!(
                                    "INSERT row arity {} vs table arity {arity}",
                                    row.arity()
                                ),
                            },
                        ));
                    }
                    row
                }
                Some(map) => {
                    if row.arity() != map.len() {
                        return Err(CoreError::Engine(
                            maybms_engine::EngineError::SchemaMismatch {
                                message: format!(
                                    "INSERT row arity {} vs column list {}",
                                    row.arity(),
                                    map.len()
                                ),
                            },
                        ));
                    }
                    let mut vals = vec![Value::Null; arity];
                    for (v, &i) in row.values().iter().zip(map) {
                        vals[i] = v.clone();
                    }
                    Tuple::new(vals)
                }
            };
            new_rows.push(UTuple::certain(tuple));
        }
        let n = new_rows.len();
        if n > 0 {
            self.commit(Op::InsertRows { table: key, rows: new_rows })?;
        }
        Ok(n)
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[(String, maybms_sql::Expr)],
        filter: Option<&maybms_sql::Expr>,
    ) -> Result<usize> {
        let key = table.to_ascii_lowercase();
        let target = self.tables.get(&key).ok_or_else(|| {
            CoreError::Engine(maybms_engine::EngineError::TableNotFound {
                name: table.to_string(),
            })
        })?;
        let schema = target.schema().clone();
        let pred = filter.map(|f| Ok::<_, CoreError>(scalar(f)?.bind(&schema)?)).transpose()?;
        let sets: Vec<(usize, maybms_engine::Expr)> = assignments
            .iter()
            .map(|(c, e)| {
                Ok::<_, CoreError>((schema.index_of(None, c)?, scalar(e)?.bind(&schema)?))
            })
            .collect::<Result<_>>()?;
        // Build the full post-image off to the side (logged physically:
        // replaying expressions would be fragile), then commit it as one
        // atomic replace. An evaluation error leaves the table untouched.
        let mut rows = target.tuples().to_vec();
        let mut n = 0;
        for t in &mut rows {
            let hit = match &pred {
                None => true,
                Some(p) => p.eval_predicate(&t.data)?,
            };
            if hit {
                let mut vals = t.data.values().to_vec();
                for (i, e) in &sets {
                    vals[*i] = e.eval(&t.data)?;
                }
                t.data = Tuple::new(vals);
                n += 1;
            }
        }
        if n > 0 {
            self.commit(Op::ReplaceRows { table: key, rows })?;
        }
        Ok(n)
    }

    fn delete(&mut self, table: &str, filter: Option<&maybms_sql::Expr>) -> Result<usize> {
        let key = table.to_ascii_lowercase();
        let target = self.tables.get(&key).ok_or_else(|| {
            CoreError::Engine(maybms_engine::EngineError::TableNotFound {
                name: table.to_string(),
            })
        })?;
        let schema = target.schema().clone();
        let pred = filter.map(|f| Ok::<_, CoreError>(scalar(f)?.bind(&schema)?)).transpose()?;
        let before = target.len();
        // Compute the surviving rows first; a predicate error must leave
        // the table (and the log) untouched.
        let rows: Vec<UTuple> = match pred {
            None => Vec::new(),
            Some(p) => {
                let mut kept = Vec::new();
                for t in target.tuples() {
                    if !p.eval_predicate(&t.data)? {
                        kept.push(t.clone());
                    }
                }
                kept
            }
        };
        let n = before - rows.len();
        if n > 0 {
            self.commit(Op::ReplaceRows { table: key, rows })?;
        }
        Ok(n)
    }
}

/// Render the measured side of `EXPLAIN ANALYZE`: per-pipeline wall time
/// and morsel counts, per-stage `[in, out]` row counts (plus hash-join
/// build sizes and group counts), and the confidence-estimator effort.
fn render_analyze(
    query: &maybms_sql::Query,
    stats: &maybms_obs::QueryStats,
    out: &QueryOutput,
    elapsed: std::time::Duration,
) -> String {
    let mut s = format!("EXPLAIN ANALYZE {query}\n");
    s.push_str("pipeline decomposition (morsel-driven executor, measured):\n");
    for (i, p) in stats.pipelines().iter().enumerate() {
        if p.stages.is_empty() && p.morsels.get() == 0 {
            // A stage-less pipeline (bare scan feeding a breaker) passes
            // its source through without driving any morsels.
            s.push_str(&format!("#{} pipeline ({}) [source passthrough]\n", i + 1, p.label));
        } else {
            s.push_str(&format!(
                "#{} pipeline ({}) [{:.3} ms, {} morsel(s)]\n",
                i + 1,
                p.label,
                p.wall_nanos.get() as f64 / 1e6,
                p.morsels.get(),
            ));
        }
        s.push_str(&format!("   source: {}\n", p.source));
        for st in &p.stages {
            s.push_str(&format!(
                "   -> {} [in {}, out {}",
                st.label,
                st.rows_in.get(),
                st.rows_out.get()
            ));
            if st.build_rows.get() > 0 {
                s.push_str(&format!(", build {}", st.build_rows.get()));
            }
            s.push_str("]\n");
        }
        if p.groups.get() > 0 {
            s.push_str(&format!("   groups: {}\n", p.groups.get()));
        }
    }
    if stats.conf_calls.get() > 0 {
        s.push_str(&format!(
            "estimator: {} conf call(s), {} DNF clause(s), {} d-tree node(s), \
             {} sample(s) in {} batch(es)",
            stats.conf_calls.get(),
            stats.dnf_clauses.get(),
            stats.dtree_nodes.get(),
            stats.samples_drawn.get(),
            stats.sample_batches.get(),
        ));
        let rse = stats.max_rel_stderr();
        if rse > 0.0 {
            s.push_str(&format!(", max rel stderr {rse:.4}"));
        }
        s.push('\n');
        if stats.degraded_conf.get() > 0 {
            s.push_str(&format!(
                "warning: {} aconf estimate(s) cut early by the statement deadline \
                 (degraded: partial seeded mean, achieved stderr above)\n",
                stats.degraded_conf.get(),
            ));
        }
    }
    // Governor accounting: peak tracked working memory this statement
    // charged, and how much headroom the deadline (if armed) had left.
    let peak = maybms_gov::statement_peak_bytes();
    let slack = maybms_gov::deadline_slack_nanos();
    if peak > 0 || slack.is_some() {
        s.push_str(&format!("governor: peak {:.1} KiB charged", peak as f64 / 1024.0));
        if let Some(ns) = slack {
            s.push_str(&format!(", deadline slack {:.3} ms", ns as f64 / 1e6));
        }
        s.push('\n');
    }
    if stats.scalar_fallbacks.get() > 0 {
        s.push_str(&format!("scalar fallbacks: {}\n", stats.scalar_fallbacks.get()));
    }
    let (rows, kind) = match out {
        QueryOutput::Certain(r) => (r.len(), "t-certain"),
        QueryOutput::Uncertain(u) => (u.len(), "uncertain"),
    };
    s.push_str(&format!(
        "result: {rows} {kind} rows in {:.3} ms\n",
        elapsed.as_secs_f64() * 1e3
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType};

    fn db_with_games() -> MayBms {
        let mut db = MayBms::new();
        db.register(
            "games",
            rel(
                &[("player", DataType::Text), ("pts", DataType::Int)],
                vec![
                    vec!["Bryant".into(), 40.into()],
                    vec!["Duncan".into(), 25.into()],
                ],
            ),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let mut db = MayBms::new();
        db.run("create table t (a bigint, b text)").unwrap();
        db.run("insert into t values (1, 'x'), (2, 'y')").unwrap();
        let r = db.query("select a, b from t where a > 1").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].value(1), &Value::str("y"));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = MayBms::new();
        db.run("create table t (a bigint, b text, c double precision)").unwrap();
        db.run("insert into t (b, a) values ('x', 1)").unwrap();
        let r = db.query("select a, b, c from t").unwrap();
        assert_eq!(r.tuples()[0].value(0), &Value::Int(1));
        assert_eq!(r.tuples()[0].value(1), &Value::str("x"));
        assert_eq!(r.tuples()[0].value(2), &Value::Null);
    }

    #[test]
    fn update_and_delete() {
        let mut db = db_with_games();
        let StatementResult::Ok { message } =
            db.run("update games set pts = pts + 1 where player = 'Bryant'").unwrap()
        else {
            panic!()
        };
        assert_eq!(message, "UPDATE 1");
        let r = db.query("select pts from games where player = 'Bryant'").unwrap();
        assert_eq!(r.tuples()[0].value(0), &Value::Int(41));

        let StatementResult::Ok { message } =
            db.run("delete from games where pts < 30").unwrap()
        else {
            panic!()
        };
        assert_eq!(message, "DELETE 1");
        assert_eq!(db.table("games").unwrap().len(), 1);
    }

    #[test]
    fn drop_and_if_exists() {
        let mut db = db_with_games();
        db.run("drop table games").unwrap();
        assert!(db.run("drop table games").is_err());
        db.run("drop table if exists games").unwrap();
    }

    #[test]
    fn create_table_as_stores_uncertain_result() {
        let mut db = db_with_games();
        db.run("create table picks as select * from (pick tuples from games with probability 0.5) p")
            .unwrap();
        let t = db.table("picks").unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_t_certain());
        // Downstream conf query over the stored uncertain table.
        let r = db
            .query("select player, conf() as p from picks group by player")
            .unwrap();
        assert_eq!(r.len(), 2);
        for t in r.tuples() {
            assert_eq!(t.value(1), &Value::Float(0.5));
        }
    }

    #[test]
    fn insert_select_from_uncertain_rejected() {
        let mut db = db_with_games();
        db.run("create table t (player text, pts bigint)").unwrap();
        let err = db.run("insert into t select * from (pick tuples from games) p");
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_games();
        let err = db.run("create table games (x bigint)");
        assert!(err.is_err());
    }

    #[test]
    fn query_requires_certain_output() {
        let mut db = db_with_games();
        assert!(db.query("select * from (pick tuples from games) p").is_err());
        assert!(db.query_uncertain("select * from (pick tuples from games) p").is_ok());
    }

    #[test]
    fn explain_reports_pipeline_decomposition() {
        let mut db = db_with_games();
        db.register(
            "teams",
            rel(
                &[("player", DataType::Text), ("team", DataType::Text)],
                vec![
                    vec!["Bryant".into(), "LAL".into()],
                    vec!["Duncan".into(), "SAS".into()],
                ],
            ),
        )
        .unwrap();
        let StatementResult::Ok { message } = db
            .run(
                "explain select g.player from games g, teams t \
                 where g.player = t.player and g.pts > 30",
            )
            .unwrap()
        else {
            panic!("EXPLAIN must return a message")
        };
        assert!(message.contains("pipeline decomposition"), "{message}");
        assert!(message.contains("-> filter"), "{message}");
        assert!(message.contains("hash probe"), "{message}");
        assert!(message.contains("hash-join build side"), "{message}");
        assert!(message.contains("-> project"), "{message}");
        assert!(message.contains("result: 1 t-certain rows"), "{message}");
    }

    #[test]
    fn explain_marks_vectorised_stages() {
        // The columnar planner's per-stage decision surfaces in EXPLAIN:
        // a kernel-eligible filter is marked, so users can see which
        // stages run vectorised (default-on; MAYBMS_COLUMNAR=0 disables).
        if !maybms_pipe::columnar_default() {
            return;
        }
        let mut db = db_with_games();
        let StatementResult::Ok { message } =
            db.run("explain select player from games where pts > 30").unwrap()
        else {
            panic!("EXPLAIN must return a message")
        };
        assert!(message.contains("(vectorised)"), "{message}");
    }

    #[test]
    fn explain_aggregate_shows_streaming_breaker() {
        let mut db = db_with_games();
        let StatementResult::Ok { message } = db
            .run("explain select player, conf() as p from games group by player")
            .unwrap()
        else {
            panic!()
        };
        assert!(
            message.contains("grouped aggregation (streaming, 1 keys, 1 aggs)"),
            "{message}"
        );
        // The old full-input materialisation breaker is gone.
        assert!(!message.contains("aggregation breaker"), "{message}");
    }

    #[test]
    fn explain_grouped_aggregate_keeps_fused_stages() {
        // Pushed-down filters stay fused stages *inside* the grouped
        // aggregation's pipeline — nothing materialises before the fold.
        let mut db = db_with_games();
        let StatementResult::Ok { message } = db
            .run(
                "explain select player, count(*) as n from games \
                 where pts > 20 group by player",
            )
            .unwrap()
        else {
            panic!()
        };
        assert!(
            message.contains("grouped aggregation (streaming, 1 keys, 1 aggs)"),
            "{message}"
        );
        assert!(message.contains("-> filter"), "{message}");
    }

    #[test]
    fn explain_analyze_reports_measured_stage_stats() {
        // The acceptance query: join + GROUP BY + conf() over an
        // uncertain table. EXPLAIN ANALYZE must show per-stage measured
        // row counts, morsels, wall time, and the estimator's effort.
        let mut db = db_with_games();
        db.register(
            "teams",
            rel(
                &[("player", DataType::Text), ("team", DataType::Text)],
                vec![
                    vec!["Bryant".into(), "LAL".into()],
                    vec!["Duncan".into(), "SAS".into()],
                ],
            ),
        )
        .unwrap();
        db.run("create table picks as select * from (pick tuples from games with probability 0.5) p")
            .unwrap();
        let StatementResult::Ok { message } = db
            .run(
                "explain analyze select t.team, conf() as p, aconf(0.3, 0.3) as ap \
                 from picks g, teams t where g.player = t.player group by t.team",
            )
            .unwrap()
        else {
            panic!("EXPLAIN ANALYZE must return a message")
        };
        // Per-pipeline measured header: wall time + morsel count.
        assert!(message.contains("ms, "), "{message}");
        assert!(message.contains("morsel(s)]"), "{message}");
        // Both pipelines appear: the build side and the streaming
        // grouped-aggregation breaker, with per-stage [in, out] counts.
        assert!(message.contains("pipeline (hash-join build side)"), "{message}");
        assert!(
            message.contains("pipeline (grouped aggregation (streaming, 1 keys, 2 aggs))"),
            "{message}"
        );
        assert!(message.contains("-> hash probe"), "{message}");
        assert!(message.contains("[in 2, out 2"), "{message}");
        assert!(message.contains("build 2"), "{message}");
        assert!(message.contains("groups: 2"), "{message}");
        // Estimator effort: 2 conf + 2 aconf calls, with samples drawn.
        assert!(message.contains("estimator: 4 conf call(s)"), "{message}");
        assert!(message.contains("sample(s)"), "{message}");
        assert!(message.contains("max rel stderr"), "{message}");
        assert!(message.contains("result: 2 t-certain rows in"), "{message}");
        // The same stats are retrievable programmatically.
        let stats = db.last_stats().unwrap();
        assert_eq!(stats.conf_calls.get(), 4);
        assert!(stats.samples_drawn.get() > 0);
        assert_eq!(stats.pipeline_count(), 2);
    }

    #[test]
    fn every_statement_collects_stats() {
        let mut db = db_with_games();
        let r = db.query("select player from games where pts > 30").unwrap();
        assert_eq!(r.len(), 1);
        let stats = db.last_stats().unwrap();
        assert_eq!(stats.rows_returned.get(), 1);
        assert_eq!(stats.pipeline_count(), 1);
        let p = &stats.pipelines()[0];
        assert!(p.morsels.get() >= 1);
        assert_eq!(p.stages[0].rows_in.get(), 2);
        assert_eq!(p.stages[0].rows_out.get(), 1);
    }

    #[test]
    fn run_script_executes_all() {
        let mut db = MayBms::new();
        let results = db
            .run_script(
                "create table t (a bigint); insert into t values (1); select a from t;",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(matches!(results[2], StatementResult::Query(_)));
    }

    #[test]
    fn update_on_uncertain_representation() {
        // Updates are representation-level edits (§2.3).
        let mut db = db_with_games();
        db.run("create table picks as select * from (pick tuples from games) p").unwrap();
        db.run("update picks set pts = 0 where player = 'Bryant'").unwrap();
        let t = db.table("picks").unwrap();
        let bryant = t
            .tuples()
            .iter()
            .find(|t| t.data.value(0) == &Value::str("Bryant"))
            .unwrap();
        assert_eq!(bryant.data.value(1), &Value::Int(0));
        assert!(!bryant.wsd.is_tautology()); // condition untouched
    }
}
