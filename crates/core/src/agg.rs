//! Evaluation of the MayBMS aggregates over grouped U-relations (§2.2).
//!
//! * `conf` / `aconf` map uncertain tables to t-certain tables via the
//!   confidence engines of `maybms-conf`;
//! * `esum` / `ecount` use linearity of expectation — "while it may seem
//!   that these aggregates are at least as hard as confidence computation
//!   (which is #P-hard), this is in fact not so";
//! * `argmax` and the standard SQL aggregates require t-certain input —
//!   "we do not support the standard SQL aggregates such as sum or count
//!   on uncertain relations".
//!
//! Per-group aggregate evaluation (in particular the per-group `conf()`
//! calls, each an independent #P-hard subproblem) fans out to the
//! `maybms-par` pool; `aconf` seeds are numbered by (group, slot) rather
//! than a running counter, so the output is identical at any thread
//! count.

use std::sync::Arc;

use maybms_conf::{confidence, ConfMethod, Dnf};
use maybms_engine::ops::AggFunc;
use maybms_engine::{DataType, Expr, Field, Relation, Schema, Tuple, Value};
use maybms_urel::{URelation, WorldTable};

use crate::error::{plan_err, typing, Result};
use crate::translate::AggSpec;

/// How `conf()` should be computed (the executor threads this through so
/// benches can switch engines and `aconf` can carry its parameters).
#[derive(Debug, Clone, Copy)]
pub struct ConfContext {
    /// Method used by `conf()`.
    pub exact: ConfMethod,
    /// Seed source for `aconf` (bumped per call by the session).
    pub seed: u64,
    /// Use the tuple-independence fast path (SPROUT-style reduction of
    /// confidence to an aggregation) when the group's lineage allows it.
    pub sprout_fast_path: bool,
}

impl Default for ConfContext {
    fn default() -> Self {
        ConfContext { exact: ConfMethod::Exact, seed: 0x5eed, sprout_fast_path: true }
    }
}

/// One output group: indices of the member tuples in the input U-relation.
pub struct Groups {
    /// Group key values (empty when no GROUP BY).
    pub keys: Vec<Vec<Value>>,
    /// Tuple indices per group, parallel to `keys`.
    pub members: Vec<Vec<usize>>,
}

/// Group the tuples of `u` by the (bound) key expressions.
///
/// Groups by row index with a hashed, scratch-buffered key: key values are
/// staged in a reusable buffer and cloned only when they found a *new*
/// group, so grouping allocates per group, not per row.
pub fn group(u: &URelation, key_exprs: &[Expr]) -> Result<Groups> {
    use maybms_engine::hash::{fast_hash_one, FastMap};
    if key_exprs.is_empty() {
        return Ok(Groups { keys: vec![Vec::new()], members: vec![(0..u.len()).collect()] });
    }
    let mut buckets: FastMap<u64, Vec<usize>> = FastMap::default();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(key_exprs.len());
    for (i, t) in u.tuples().iter().enumerate() {
        scratch.clear();
        for e in key_exprs {
            scratch.push(e.eval(&t.data)?);
        }
        let h = fast_hash_one(&scratch[..]);
        let bucket = buckets.entry(h).or_default();
        match bucket.iter().find(|&&g| keys[g] == scratch) {
            Some(&g) => members[g].push(i),
            None => {
                bucket.push(keys.len());
                keys.push(scratch.clone());
                members.push(vec![i]);
            }
        }
    }
    Ok(Groups { keys, members })
}

/// Is the lineage of this group tuple-independent (each clause at most one
/// assignment, no variable shared between clauses)? If so `conf` reduces to
/// the aggregation `1 − Π(1 − pᵢ)` — the SPROUT fast path (§2.3).
fn independent_group(u: &URelation, members: &[usize]) -> bool {
    let mut seen = std::collections::HashSet::new();
    members.iter().all(|&i| {
        let wsd = &u.tuples()[i].wsd;
        wsd.len() <= 1 && wsd.vars().all(|v| seen.insert(v))
    })
}

/// Compute one confidence value for a group of tuples.
pub fn group_confidence(
    u: &URelation,
    members: &[usize],
    wt: &WorldTable,
    method: ConfMethod,
    ctx: &ConfContext,
) -> Result<f64> {
    if ctx.sprout_fast_path
        && matches!(method, ConfMethod::Exact)
        && independent_group(u, members)
    {
        let mut none = 1.0;
        for &i in members {
            none *= 1.0 - u.tuples()[i].wsd.prob(wt)?;
        }
        return Ok(1.0 - none);
    }
    let dnf = Dnf::from_wsds(members.iter().map(|&i| &u.tuples()[i].wsd));
    Ok(confidence(&dnf, wt, method)?)
}

/// Evaluate a list of aggregates over grouped input, producing a t-certain
/// relation `group keys ++ aggregate columns`.
///
/// `argmax` is special (it may emit several rows per group) and must be the
/// *only* aggregate when present.
pub fn aggregate_groups(
    u: &URelation,
    groups: &Groups,
    key_fields: Vec<Field>,
    aggs: &[(AggSpec, String)],
    wt: &WorldTable,
    ctx: &ConfContext,
) -> Result<Relation> {
    let input_certain = u.is_t_certain();
    // argmax special case.
    if let Some((AggSpec::ArgMax { .. }, _)) = aggs.iter().find(|(s, _)| matches!(s, AggSpec::ArgMax { .. })) {
        if aggs.len() != 1 {
            return Err(plan_err("argmax cannot be combined with other aggregates"));
        }
        let (AggSpec::ArgMax { arg, value }, name) = &aggs[0] else { unreachable!() };
        if !input_certain {
            return Err(typing(
                "argmax requires a t-certain input relation (§2.2)",
            ));
        }
        return eval_argmax(u, groups, key_fields, arg, value, name);
    }

    // Standard aggregates demand a t-certain input.
    for (spec, _) in aggs {
        if matches!(spec, AggSpec::Std { .. }) && !input_certain {
            return Err(typing(
                "standard SQL aggregates (sum/count/avg/min/max) are not supported on \
                 uncertain relations; use esum/ecount or conf (§2.2)",
            ));
        }
    }

    let mut fields = key_fields;
    for (spec, name) in aggs {
        let dtype = match spec {
            AggSpec::Conf | AggSpec::AConf { .. } | AggSpec::TConf => DataType::Float,
            AggSpec::ESum(_) | AggSpec::ECount(_) => DataType::Float,
            AggSpec::Std { func, arg } => match func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                _ => arg
                    .as_ref()
                    .map(|e| e.data_type(u.schema()))
                    .unwrap_or(DataType::Unknown),
            },
            AggSpec::ArgMax { .. } => unreachable!("handled above"),
        };
        fields.push(Field::new(name.clone(), dtype));
    }
    let schema = Arc::new(Schema::new(fields));

    // One output row per group, computed independently. `aconf` seeds are
    // numbered by (group, slot) — group g's j-th aconf call draws seed
    // `ctx.seed + g·n_aconf + j + 1`, exactly the sequence the old
    // sequential running bump produced — so the rows are identical
    // whether groups evaluate in a loop or fan out to the pool.
    let n_aconf =
        aggs.iter().filter(|(s, _)| matches!(s, AggSpec::AConf { .. })).count() as u64;
    let eval_row = |g: usize| -> Result<Tuple> {
        let members = &groups.members[g];
        let mut row = groups.keys[g].clone();
        let mut aconf_slot = 0u64;
        for (spec, _) in aggs {
            let v = match spec {
                AggSpec::Conf => Value::float(group_confidence(
                    u,
                    members,
                    wt,
                    ctx.exact,
                    ctx,
                )?)?,
                AggSpec::AConf { epsilon, delta } => {
                    aconf_slot += 1;
                    Value::float(group_confidence(
                        u,
                        members,
                        wt,
                        ConfMethod::Approx {
                            epsilon: *epsilon,
                            delta: *delta,
                            seed: ctx
                                .seed
                                .wrapping_add(g as u64 * n_aconf)
                                .wrapping_add(aconf_slot),
                        },
                        ctx,
                    )?)?
                }
                AggSpec::TConf => {
                    return Err(plan_err(
                        "tconf() is per-tuple and cannot be grouped; use it without GROUP BY",
                    ))
                }
                AggSpec::ESum(e) => {
                    let mut acc = 0.0;
                    for &i in members {
                        let t = &u.tuples()[i];
                        let v = e.eval(&t.data)?;
                        if v.is_null() {
                            continue;
                        }
                        let x = v.as_f64().ok_or_else(|| {
                            typing(format!("esum over non-numeric value {v}"))
                        })?;
                        acc += x * t.wsd.prob(wt)?;
                    }
                    Value::float(acc)?
                }
                AggSpec::ECount(e) => {
                    let mut acc = 0.0;
                    for &i in members {
                        let t = &u.tuples()[i];
                        if let Some(expr) = e {
                            if expr.eval(&t.data)?.is_null() {
                                continue;
                            }
                        }
                        acc += t.wsd.prob(wt)?;
                    }
                    Value::float(acc)?
                }
                AggSpec::Std { func, arg } => {
                    eval_std(u, members, *func, arg.as_ref())?
                }
                AggSpec::ArgMax { .. } => unreachable!(),
            };
            row.push(v);
        }
        Ok(Tuple::new(row))
    };

    let n_groups = groups.keys.len();
    let pool = maybms_par::pool();
    let out: Vec<Tuple> = if n_groups >= 8 && pool.threads() > 1 {
        // Per-group confidence computation (#P-hard in general) dominates;
        // fan groups out in small chunks and merge rows in group order.
        let chunk = maybms_par::auto_chunk(n_groups, pool.threads(), 1);
        let partials: Vec<Result<Vec<Tuple>>> =
            pool.par_map_chunks(n_groups, chunk, |range| range.map(&eval_row).collect());
        let mut out = Vec::with_capacity(n_groups);
        for p in partials {
            out.extend(p?);
        }
        out
    } else {
        (0..n_groups).map(eval_row).collect::<Result<_>>()?
    };
    Ok(Relation::new_unchecked(schema, out))
}

/// `tconf()`: per stored tuple, its marginal probability. Output: the
/// selected scalar columns plus the tconf column(s), one row per tuple.
pub fn eval_tconf(
    u: &URelation,
    scalar_items: &[(Expr, String)],
    tconf_names: &[String],
    wt: &WorldTable,
) -> Result<Relation> {
    let mut fields: Vec<Field> = scalar_items
        .iter()
        .map(|(e, n)| Field::new(n.clone(), e.data_type(u.schema())))
        .collect();
    for n in tconf_names {
        fields.push(Field::new(n.clone(), DataType::Float));
    }
    let schema = Arc::new(Schema::new(fields));
    let eval_row = |t: &maybms_urel::UTuple| -> Result<Tuple> {
        let mut row: Vec<Value> = scalar_items
            .iter()
            .map(|(e, _)| e.eval(&t.data))
            .collect::<std::result::Result<_, _>>()?;
        let p = Value::float(t.wsd.prob(wt)?)?;
        for _ in tconf_names {
            row.push(p.clone());
        }
        Ok(Tuple::new(row))
    };
    let pool = maybms_par::pool();
    if u.len() >= 8192 && pool.threads() > 1 {
        // Per-tuple marginals are independent; chunk rows and merge in
        // chunk order (identical output to the sequential scan).
        let chunk = maybms_par::auto_chunk(u.len(), pool.threads(), 2048);
        let partials: Vec<Result<Vec<Tuple>>> =
            pool.par_map_chunks(u.len(), chunk, |range| {
                range.map(|i| eval_row(&u.tuples()[i])).collect()
            });
        let mut out = Vec::with_capacity(u.len());
        for p in partials {
            out.extend(p?);
        }
        return Ok(Relation::new_unchecked(schema, out));
    }
    let mut out = Vec::with_capacity(u.len());
    for t in u.tuples() {
        out.push(eval_row(t)?);
    }
    Ok(Relation::new_unchecked(schema, out))
}

fn eval_std(
    u: &URelation,
    members: &[usize],
    func: AggFunc,
    arg: Option<&Expr>,
) -> Result<Value> {
    // Reuse the engine's aggregate by materialising the group.
    let rel = Relation::new_unchecked(
        u.schema().clone(),
        members.iter().map(|&i| u.tuples()[i].data.clone()).collect(),
    );
    let call = maybms_engine::ops::AggCall::new(func, arg.cloned(), "v");
    let out = maybms_engine::ops::aggregate(&rel, &[], &[], std::slice::from_ref(&call))?;
    Ok(out.tuples()[0].value(0).clone())
}

fn eval_argmax(
    u: &URelation,
    groups: &Groups,
    key_fields: Vec<Field>,
    arg: &Expr,
    value: &Expr,
    name: &str,
) -> Result<Relation> {
    let mut fields = key_fields;
    fields.push(Field::new(name.to_string(), arg.data_type(u.schema())));
    let schema = Arc::new(Schema::new(fields));
    let mut out = Vec::new();
    for (key, members) in groups.keys.iter().zip(&groups.members) {
        // Find the group's maximum value.
        let mut best: Option<Value> = None;
        for &i in members {
            let v = value.eval(&u.tuples()[i].data)?;
            if v.is_null() {
                continue;
            }
            if best.as_ref().is_none_or(|b| v > *b) {
                best = Some(v);
            }
        }
        let Some(best) = best else { continue };
        // Emit every arg value attaining it (distinct, first-seen order).
        let mut seen = std::collections::HashSet::new();
        for &i in members {
            let v = value.eval(&u.tuples()[i].data)?;
            if v == best {
                let a = arg.eval(&u.tuples()[i].data)?;
                if seen.insert(a.clone()) {
                    let mut row = key.clone();
                    row.push(a);
                    out.push(Tuple::new(row));
                }
            }
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType};
    use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
    use maybms_urel::repair::{repair_key, RepairKeyOptions};

    fn ti_setup() -> (WorldTable, URelation) {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("g", DataType::Text), ("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec!["a".into(), 10.into(), Value::Float(0.5)],
                vec!["a".into(), 20.into(), Value::Float(0.5)],
                vec!["b".into(), 30.into(), Value::Float(0.25)],
            ],
        );
        let u = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        (wt, u)
    }

    #[test]
    fn conf_groups_with_fast_path_and_dtree_agree() {
        let (wt, u) = ti_setup();
        let key = Expr::col("g").bind(u.schema()).unwrap();
        let groups = group(&u, &[key]).unwrap();
        let ctx_fast = ConfContext::default();
        let ctx_slow = ConfContext { sprout_fast_path: false, ..Default::default() };
        for members in &groups.members {
            let a = group_confidence(&u, members, &wt, ConfMethod::Exact, &ctx_fast)
                .unwrap();
            let b = group_confidence(&u, members, &wt, ConfMethod::Exact, &ctx_slow)
                .unwrap();
            assert!((a - b).abs() < 1e-12);
        }
        // Group "a": 1 - 0.5 * 0.5 = 0.75.
        let a_idx = groups
            .keys
            .iter()
            .position(|k| k[0] == Value::str("a"))
            .unwrap();
        let p = group_confidence(
            &u,
            &groups.members[a_idx],
            &wt,
            ConfMethod::Exact,
            &ctx_fast,
        )
        .unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn esum_ecount_linearity() {
        let (wt, u) = ti_setup();
        let key = Expr::col("g").bind(u.schema()).unwrap();
        let groups = group(&u, &[key]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![Field::new("g", DataType::Text)],
            &[
                (AggSpec::ESum(v.clone()), "es".into()),
                (AggSpec::ECount(None), "ec".into()),
            ],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        // group a: esum = 10*0.5 + 20*0.5 = 15; ecount = 1.0
        let a_row = out
            .tuples()
            .iter()
            .find(|t| t.value(0) == &Value::str("a"))
            .unwrap();
        assert_eq!(a_row.value(1), &Value::Float(15.0));
        assert_eq!(a_row.value(2), &Value::Float(1.0));
        // group b: esum = 30*0.25 = 7.5; ecount = 0.25
        let b_row = out
            .tuples()
            .iter()
            .find(|t| t.value(0) == &Value::str("b"))
            .unwrap();
        assert_eq!(b_row.value(1), &Value::Float(7.5));
        assert_eq!(b_row.value(2), &Value::Float(0.25));
    }

    #[test]
    fn esum_matches_brute_force_expectation() {
        let (wt, u) = ti_setup();
        let groups = group(&u, &[]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(AggSpec::ESum(v), "es".into())],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        let esum = out.tuples()[0].value(0).as_f64().unwrap();
        let brute = maybms_urel::worlds::expectation(&wt, &u, 1 << 10, |r| {
            r.tuples().iter().map(|t| t.value(1).as_f64().unwrap()).sum()
        })
        .unwrap();
        assert!((esum - brute).abs() < 1e-9, "esum {esum} brute {brute}");
    }

    #[test]
    fn std_aggregates_rejected_on_uncertain() {
        let (wt, u) = ti_setup();
        let groups = group(&u, &[]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(
                AggSpec::Std { func: AggFunc::Sum, arg: Some(v) },
                "s".into(),
            )],
            &wt,
            &ConfContext::default(),
        );
        assert!(matches!(out, Err(crate::error::CoreError::Typing { .. })));
    }

    #[test]
    fn std_aggregates_work_on_certain() {
        let wt = WorldTable::new();
        let u = URelation::from_certain(&rel(
            &[("v", DataType::Int)],
            vec![vec![1.into()], vec![2.into()]],
        ));
        let groups = group(&u, &[]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(AggSpec::Std { func: AggFunc::Sum, arg: Some(v) }, "s".into())],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Int(3));
    }

    #[test]
    fn argmax_outputs_all_maximisers() {
        let wt = WorldTable::new();
        let u = URelation::from_certain(&rel(
            &[("team", DataType::Text), ("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["LAL".into(), "Bryant".into(), 40.into()],
                vec!["LAL".into(), "Gasol".into(), 40.into()],
                vec!["LAL".into(), "Fisher".into(), 10.into()],
                vec!["SAS".into(), "Duncan".into(), 25.into()],
            ],
        ));
        let key = Expr::col("team").bind(u.schema()).unwrap();
        let groups = group(&u, &[key]).unwrap();
        let arg = Expr::col("player").bind(u.schema()).unwrap();
        let val = Expr::col("pts").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![Field::new("team", DataType::Text)],
            &[(AggSpec::ArgMax { arg, value: val }, "star".into())],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3); // Bryant, Gasol, Duncan
    }

    #[test]
    fn argmax_on_uncertain_rejected() {
        let (wt, u) = ti_setup();
        let groups = group(&u, &[]).unwrap();
        let arg = Expr::col("g").bind(u.schema()).unwrap();
        let val = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(AggSpec::ArgMax { arg, value: val }, "a".into())],
            &wt,
            &ConfContext::default(),
        );
        assert!(matches!(out, Err(crate::error::CoreError::Typing { .. })));
    }

    #[test]
    fn tconf_per_tuple() {
        let (wt, u) = ti_setup();
        let g = Expr::col("g").bind(u.schema()).unwrap();
        let out = eval_tconf(&u, &[(g, "g".into())], &["p".to_string()], &wt).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.tuples()[0].value(1), &Value::Float(0.5));
        assert_eq!(out.tuples()[2].value(1), &Value::Float(0.25));
    }

    #[test]
    fn conf_on_repair_key_groups_uses_dtree() {
        // Repair-key output is NOT tuple-independent: the fast path must
        // detect this and fall through to the d-tree.
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("v", DataType::Int)],
            vec![
                vec![1.into(), 1.into()],
                vec![1.into(), 2.into()],
                vec![1.into(), 3.into()],
            ],
        );
        let u = repair_key(&r, &[Expr::col("k")], &RepairKeyOptions::default(), &mut wt)
            .unwrap();
        let groups = group(&u, &[]).unwrap();
        // P(any tuple exists) = 1 (repair always keeps one).
        let p = group_confidence(
            &u,
            &groups.members[0],
            &wt,
            ConfMethod::Exact,
            &ConfContext::default(),
        )
        .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
