//! Evaluation of the MayBMS aggregates over grouped U-relations (§2.2).
//!
//! * `conf` / `aconf` map uncertain tables to t-certain tables via the
//!   confidence engines of `maybms-conf`;
//! * `esum` / `ecount` use linearity of expectation — "while it may seem
//!   that these aggregates are at least as hard as confidence computation
//!   (which is #P-hard), this is in fact not so";
//! * `argmax` and the standard SQL aggregates require t-certain input —
//!   "we do not support the standard SQL aggregates such as sum or count
//!   on uncertain relations".
//!
//! Per-group aggregate evaluation (in particular the per-group `conf()`
//! calls, each an independent #P-hard subproblem) fans out to the
//! `maybms-par` pool; `aconf` seeds are numbered by (group, slot) rather
//! than a running counter, so the output is identical at any thread
//! count.

use std::sync::Arc;

use maybms_conf::{confidence_with_effort, ConfEffort, ConfMethod, Dnf};
use maybms_engine::ops::{AggFunc, AggState, ExactSum};
use maybms_engine::{DataType, EngineError, Expr, Field, Relation, Schema, Tuple, Value};
use maybms_pipe::UStream;
use maybms_urel::{URelation, UrelError, WorldTable, Wsd};

use crate::error::{plan_err, typing, CoreError, Result};
use crate::translate::AggSpec;

/// §2.2 typing rule shared by the materialising and streaming paths (the
/// streaming fold raises it row-by-row as a tagged engine error that
/// [`aggregate_stream_with`] maps back to a typing error).
const STD_ON_UNCERTAIN: &str = "standard SQL aggregates (sum/count/avg/min/max) are \
                                not supported on uncertain relations; use esum/ecount \
                                or conf (§2.2)";
/// §2.2 typing rule for `argmax` (same mechanism).
const ARGMAX_ON_UNCERTAIN: &str = "argmax requires a t-certain input relation (§2.2)";
/// Prefix of the esum type error, shared between the materialising and
/// streaming paths (and the error remap) so the wording cannot drift.
const ESUM_NON_NUMERIC: &str = "esum over non-numeric value";

/// How `conf()` should be computed (the executor threads this through so
/// benches can switch engines and `aconf` can carry its parameters).
#[derive(Debug, Clone, Copy)]
pub struct ConfContext {
    /// Method used by `conf()`.
    pub exact: ConfMethod,
    /// Seed source for `aconf` (bumped per call by the session).
    pub seed: u64,
    /// Use the tuple-independence fast path (SPROUT-style reduction of
    /// confidence to an aggregation) when the group's lineage allows it.
    pub sprout_fast_path: bool,
}

impl Default for ConfContext {
    fn default() -> Self {
        ConfContext { exact: ConfMethod::Exact, seed: 0x5eed, sprout_fast_path: true }
    }
}

/// One output group: indices of the member tuples in the input U-relation.
pub struct Groups {
    /// Group key values (empty when no GROUP BY).
    pub keys: Vec<Vec<Value>>,
    /// Tuple indices per group, parallel to `keys`.
    pub members: Vec<Vec<usize>>,
}

/// Group the tuples of `u` by the (bound) key expressions.
///
/// Groups by row index with a hashed, scratch-buffered key: key values are
/// staged in a reusable buffer and cloned only when they found a *new*
/// group, so grouping allocates per group, not per row.
pub fn group(u: &URelation, key_exprs: &[Expr]) -> Result<Groups> {
    use maybms_engine::hash::{fast_hash_one, FastMap};
    if key_exprs.is_empty() {
        return Ok(Groups { keys: vec![Vec::new()], members: vec![(0..u.len()).collect()] });
    }
    let mut buckets: FastMap<u64, Vec<usize>> = FastMap::default();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(key_exprs.len());
    for (i, t) in u.tuples().iter().enumerate() {
        scratch.clear();
        for e in key_exprs {
            scratch.push(e.eval(&t.data)?);
        }
        let h = fast_hash_one(&scratch[..]);
        let bucket = buckets.entry(h).or_default();
        match bucket.iter().find(|&&g| keys[g] == scratch) {
            Some(&g) => members[g].push(i),
            None => {
                bucket.push(keys.len());
                keys.push(scratch.clone());
                members.push(vec![i]);
            }
        }
    }
    Ok(Groups { keys, members })
}

/// Is this lineage tuple-independent (each clause at most one
/// assignment, no variable shared between clauses)? If so `conf` reduces to
/// the aggregation `1 − Π(1 − pᵢ)` — the SPROUT fast path (§2.3).
fn independent_wsds<'a>(wsds: impl Iterator<Item = &'a Wsd>) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut wsds = wsds;
    wsds.all(|wsd| wsd.len() <= 1 && wsd.vars().all(|v| seen.insert(v)))
}

/// Record one confidence computation's effort into an attached per-query
/// collector. Everything added is an order-independent sum/max, so the
/// totals are identical at any thread count even though groups fan out.
fn record_effort(stats: Option<&maybms_obs::QueryStats>, effort: &ConfEffort) {
    if let Some(qs) = stats {
        qs.conf_calls.inc();
        qs.dnf_clauses.add(effort.dnf_clauses);
        qs.dtree_nodes.add(effort.dtree_nodes);
        qs.samples_drawn.add(effort.samples);
        qs.sample_batches.add(effort.batches);
        qs.record_rel_stderr(effort.rel_stderr);
        if effort.cut_batch.is_some() {
            qs.degraded_conf.inc();
        }
    }
}

/// Compute one confidence value from a group's member WSDs (what the
/// streaming grouped-aggregation breaker accumulates per group). With a
/// collector attached, the call's effort (d-tree nodes, samples drawn,
/// achieved relative standard error) is recorded into it.
pub fn wsds_confidence(
    wsds: &[Wsd],
    wt: &WorldTable,
    method: ConfMethod,
    ctx: &ConfContext,
    stats: Option<&maybms_obs::QueryStats>,
) -> Result<f64> {
    if ctx.sprout_fast_path
        && matches!(method, ConfMethod::Exact)
        && independent_wsds(wsds.iter())
    {
        // SPROUT fast path: no d-tree, no sampling — just the clauses.
        // Still a conf call, so it gets a `conf` span like the engines do.
        let mut span = maybms_obs::trace::span("conf");
        span.attr("method", "sprout");
        span.attr("dnf_clauses", wsds.len() as u64);
        record_effort(stats, &ConfEffort { dnf_clauses: wsds.len() as u64, ..Default::default() });
        let mut none = 1.0;
        for wsd in wsds {
            none *= 1.0 - wsd.prob(wt)?;
        }
        return Ok(1.0 - none);
    }
    let dnf = Dnf::from_wsds(wsds.iter());
    let (p, effort) = confidence_with_effort(&dnf, wt, method)?;
    record_effort(stats, &effort);
    Ok(p)
}

/// Compute one confidence value for a group of tuples.
pub fn group_confidence(
    u: &URelation,
    members: &[usize],
    wt: &WorldTable,
    method: ConfMethod,
    ctx: &ConfContext,
    stats: Option<&maybms_obs::QueryStats>,
) -> Result<f64> {
    if ctx.sprout_fast_path
        && matches!(method, ConfMethod::Exact)
        && independent_wsds(members.iter().map(|&i| &u.tuples()[i].wsd))
    {
        let mut span = maybms_obs::trace::span("conf");
        span.attr("method", "sprout");
        span.attr("dnf_clauses", members.len() as u64);
        record_effort(
            stats,
            &ConfEffort { dnf_clauses: members.len() as u64, ..Default::default() },
        );
        let mut none = 1.0;
        for &i in members {
            none *= 1.0 - u.tuples()[i].wsd.prob(wt)?;
        }
        return Ok(1.0 - none);
    }
    let dnf = Dnf::from_wsds(members.iter().map(|&i| &u.tuples()[i].wsd));
    let (p, effort) = confidence_with_effort(&dnf, wt, method)?;
    record_effort(stats, &effort);
    Ok(p)
}

/// Evaluate a list of aggregates over grouped input, producing a t-certain
/// relation `group keys ++ aggregate columns`.
///
/// `argmax` is special (it may emit several rows per group) and must be the
/// *only* aggregate when present.
pub fn aggregate_groups(
    u: &URelation,
    groups: &Groups,
    key_fields: Vec<Field>,
    aggs: &[(AggSpec, String)],
    wt: &WorldTable,
    ctx: &ConfContext,
) -> Result<Relation> {
    let input_certain = u.is_t_certain();
    // argmax special case.
    if let Some((AggSpec::ArgMax { .. }, _)) = aggs.iter().find(|(s, _)| matches!(s, AggSpec::ArgMax { .. })) {
        if aggs.len() != 1 {
            return Err(plan_err("argmax cannot be combined with other aggregates"));
        }
        let (AggSpec::ArgMax { arg, value }, name) = &aggs[0] else { unreachable!() };
        if !input_certain {
            return Err(typing(ARGMAX_ON_UNCERTAIN));
        }
        return eval_argmax(u, groups, key_fields, arg, value, name);
    }

    // Standard aggregates demand a t-certain input.
    for (spec, _) in aggs {
        if matches!(spec, AggSpec::Std { .. }) && !input_certain {
            return Err(typing(STD_ON_UNCERTAIN));
        }
    }

    let mut fields = key_fields;
    for (spec, name) in aggs {
        let dtype = match spec {
            AggSpec::Conf | AggSpec::AConf { .. } | AggSpec::TConf => DataType::Float,
            AggSpec::ESum(_) | AggSpec::ECount(_) => DataType::Float,
            AggSpec::Std { func, arg } => match func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                _ => arg
                    .as_ref()
                    .map(|e| e.data_type(u.schema()))
                    .unwrap_or(DataType::Unknown),
            },
            AggSpec::ArgMax { .. } => unreachable!("handled above"),
        };
        fields.push(Field::new(name.clone(), dtype));
    }
    let schema = Arc::new(Schema::new(fields));

    // One output row per group, computed independently. `aconf` seeds are
    // numbered by (group, slot) — group g's j-th aconf call draws seed
    // `ctx.seed + g·n_aconf + j + 1`, exactly the sequence the old
    // sequential running bump produced — so the rows are identical
    // whether groups evaluate in a loop or fan out to the pool.
    let n_aconf =
        aggs.iter().filter(|(s, _)| matches!(s, AggSpec::AConf { .. })).count() as u64;
    let eval_row = |g: usize| -> Result<Tuple> {
        let members = &groups.members[g];
        let mut row = groups.keys[g].clone();
        let mut aconf_slot = 0u64;
        for (spec, _) in aggs {
            let v = match spec {
                AggSpec::Conf => Value::float(group_confidence(
                    u,
                    members,
                    wt,
                    ctx.exact,
                    ctx,
                    None,
                )?)?,
                AggSpec::AConf { epsilon, delta } => {
                    aconf_slot += 1;
                    Value::float(group_confidence(
                        u,
                        members,
                        wt,
                        ConfMethod::Approx {
                            epsilon: *epsilon,
                            delta: *delta,
                            seed: ctx
                                .seed
                                .wrapping_add(g as u64 * n_aconf)
                                .wrapping_add(aconf_slot),
                        },
                        ctx,
                        None,
                    )?)?
                }
                AggSpec::TConf => {
                    return Err(plan_err(
                        "tconf() is per-tuple and cannot be grouped; use it without GROUP BY",
                    ))
                }
                AggSpec::ESum(e) => {
                    // ExactSum, like the streaming breaker: the rounded
                    // result is independent of fold order, so the two
                    // paths agree bit-for-bit.
                    let mut acc = ExactSum::new();
                    for &i in members {
                        let t = &u.tuples()[i];
                        let v = e.eval(&t.data)?;
                        if v.is_null() {
                            continue;
                        }
                        let x = v.as_f64().ok_or_else(|| {
                            typing(format!("{ESUM_NON_NUMERIC} {v}"))
                        })?;
                        acc.add(x * t.wsd.prob(wt)?);
                    }
                    Value::float(acc.round())?
                }
                AggSpec::ECount(e) => {
                    let mut acc = ExactSum::new();
                    for &i in members {
                        let t = &u.tuples()[i];
                        if let Some(expr) = e {
                            if expr.eval(&t.data)?.is_null() {
                                continue;
                            }
                        }
                        acc.add(t.wsd.prob(wt)?);
                    }
                    Value::float(acc.round())?
                }
                AggSpec::Std { func, arg } => {
                    eval_std(u, members, *func, arg.as_ref())?
                }
                AggSpec::ArgMax { .. } => unreachable!(),
            };
            row.push(v);
        }
        Ok(Tuple::new(row))
    };

    let n_groups = groups.keys.len();
    let pool = maybms_par::pool();
    let out: Vec<Tuple> = if n_groups >= 8 && pool.threads() > 1 {
        // Per-group confidence computation (#P-hard in general) dominates;
        // fan groups out in small chunks and merge rows in group order.
        let chunk = maybms_par::auto_chunk(n_groups, pool.threads(), 1);
        let partials: Vec<Result<Vec<Tuple>>> =
            pool.par_map_chunks(n_groups, chunk, |range| range.map(&eval_row).collect());
        let mut out = Vec::with_capacity(n_groups);
        for p in partials {
            out.extend(p?);
        }
        out
    } else {
        (0..n_groups).map(eval_row).collect::<Result<_>>()?
    };
    Ok(Relation::new_unchecked(schema, out))
}

// ---------------------------------------------------------------------
// Streaming grouped aggregation (the maybms-pipe breaker)
// ---------------------------------------------------------------------

/// One aggregate slot's morsel-mergeable partial state.
#[derive(Debug)]
enum Partial {
    /// `conf()` / `aconf()`: computed from the group's member WSDs at
    /// finish time (the whole lineage is needed — it *is* the DNF).
    Lineage,
    /// `esum` / `ecount`: the running expectation. [`ExactSum`] makes the
    /// per-morsel partial sums split-invariant, so the merged value is
    /// bit-identical to the sequential fold.
    Expect(ExactSum),
    /// A standard SQL aggregate's state.
    Std(AggState),
    /// `argmax`: the running group maximum plus the arg values of the
    /// rows attaining it, in member order (memory proportional to ties,
    /// not group size). The arg expression is evaluated only for rows
    /// that match or beat the best seen *so far* — losing rows never
    /// evaluate it, like the two-pass path's winners-only second scan.
    ArgMax {
        /// The largest non-NULL value seen.
        best: Option<Value>,
        /// Arg values of the rows attaining `best`, in member order
        /// (deduplicated first-seen at finish).
        args: Vec<Value>,
    },
}

impl Partial {
    fn new(spec: &AggSpec) -> Partial {
        match spec {
            AggSpec::Conf | AggSpec::AConf { .. } => Partial::Lineage,
            AggSpec::ESum(_) | AggSpec::ECount(_) => Partial::Expect(ExactSum::new()),
            AggSpec::Std { func, .. } => Partial::Std(AggState::new(*func)),
            AggSpec::ArgMax { .. } => Partial::ArgMax { best: None, args: Vec::new() },
            AggSpec::TConf => unreachable!("tconf is rejected before streaming"),
        }
    }
}

/// Per-group accumulator of the streaming grouped-aggregation breaker:
/// member WSDs (kept only when a `conf`/`aconf` slot needs the group's
/// lineage) plus one [`Partial`] per aggregate.
#[derive(Debug)]
pub struct StreamAcc {
    wsds: Vec<Wsd>,
    parts: Vec<Partial>,
}

/// Map the streaming fold's tagged engine errors back to the typing /
/// plan errors the materialising path raises.
fn remap_stream_err(e: UrelError) -> CoreError {
    if let UrelError::Engine(EngineError::TypeMismatch { message }) = &e {
        if message == STD_ON_UNCERTAIN
            || message == ARGMAX_ON_UNCERTAIN
            || message.starts_with(ESUM_NON_NUMERIC)
        {
            return typing(message.clone());
        }
    }
    e.into()
}

/// Evaluate grouped aggregates **streaming**: the pipeline's fused stage
/// chain runs morsel-by-morsel and every surviving row folds straight
/// into a morsel-local group table ([`maybms_pipe::GroupTable`]) — the
/// joined input is never materialised. Per group the fold accumulates
/// member WSDs and running `esum`/`ecount` partial sums; the
/// deterministic morsel-ordered merge then feeds the same per-group
/// `conf()` fan-out (and `(group, slot)` `aconf` seed numbering) as
/// [`aggregate_groups`], so the output is **bit-identical** to
/// materialising the stream and running the two-pass path, at any thread
/// count and morsel size.
///
/// `grouping` are the bound group-key expressions; only the first
/// `n_out_keys` of them are output columns (named by `key_fields`), the
/// rest are grouped-but-not-selected.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_stream(
    stream: UStream,
    grouping: &[Expr],
    n_out_keys: usize,
    key_fields: Vec<Field>,
    aggs: &[(AggSpec, String)],
    wt: &WorldTable,
    ctx: &ConfContext,
    stats: Option<&maybms_obs::QueryStats>,
) -> Result<Relation> {
    let pool = maybms_par::pool();
    aggregate_stream_with(
        stream,
        grouping,
        n_out_keys,
        key_fields,
        aggs,
        wt,
        ctx,
        stats,
        &pool,
        maybms_engine::ops::PAR_MIN_CHUNK,
    )
}

/// [`aggregate_stream`] on an explicit pool and minimum morsel size
/// (what the determinism property tests pin to 1/2/8 threads and
/// single-row morsels).
#[allow(clippy::too_many_arguments)]
pub fn aggregate_stream_with(
    stream: UStream,
    grouping: &[Expr],
    n_out_keys: usize,
    key_fields: Vec<Field>,
    aggs: &[(AggSpec, String)],
    wt: &WorldTable,
    ctx: &ConfContext,
    stats: Option<&maybms_obs::QueryStats>,
    pool: &maybms_par::ThreadPool,
    min_morsel: usize,
) -> Result<Relation> {
    // Shape rules first (same errors, same timing as the two-pass path).
    let has_argmax = aggs.iter().any(|(s, _)| matches!(s, AggSpec::ArgMax { .. }));
    if has_argmax && aggs.len() != 1 {
        return Err(plan_err("argmax cannot be combined with other aggregates"));
    }
    if aggs.iter().any(|(s, _)| matches!(s, AggSpec::TConf)) {
        return Err(plan_err(
            "tconf() is per-tuple and cannot be grouped; use it without GROUP BY",
        ));
    }
    let in_schema = stream.schema().clone();
    let needs_wsds =
        aggs.iter().any(|(s, _)| matches!(s, AggSpec::Conf | AggSpec::AConf { .. }));

    // ---- the morsel-local fold -------------------------------------
    let new_state =
        || StreamAcc { wsds: Vec::new(), parts: aggs.iter().map(|(s, _)| Partial::new(s)).collect() };
    let fold = |acc: &mut StreamAcc, row: &[Value], wsd: &Wsd| -> maybms_urel::Result<()> {
        if needs_wsds {
            acc.wsds.push(wsd.clone());
        }
        for (part, (spec, _)) in acc.parts.iter_mut().zip(aggs) {
            match (part, spec) {
                (Partial::Lineage, _) => {}
                (Partial::Expect(sum), AggSpec::ESum(e)) => {
                    let v = e.eval_values(row)?;
                    if !v.is_null() {
                        let x = v.as_f64().ok_or_else(|| EngineError::TypeMismatch {
                            message: format!("{ESUM_NON_NUMERIC} {v}"),
                        })?;
                        sum.add(x * wsd.prob(wt)?);
                    }
                }
                (Partial::Expect(sum), AggSpec::ECount(e)) => {
                    if let Some(expr) = e {
                        if expr.eval_values(row)?.is_null() {
                            continue;
                        }
                    }
                    sum.add(wsd.prob(wt)?);
                }
                (Partial::Std(st), AggSpec::Std { arg, .. }) => {
                    if !wsd.is_tautology() {
                        return Err(EngineError::TypeMismatch {
                            message: STD_ON_UNCERTAIN.to_string(),
                        }
                        .into());
                    }
                    match arg {
                        None => st.fold_present(),
                        Some(e) => st.fold(&e.eval_values(row)?)?,
                    }
                }
                (Partial::ArgMax { best, args }, AggSpec::ArgMax { arg, value }) => {
                    if !wsd.is_tautology() {
                        return Err(EngineError::TypeMismatch {
                            message: ARGMAX_ON_UNCERTAIN.to_string(),
                        }
                        .into());
                    }
                    let v = value.eval_values(row)?;
                    if v.is_null() {
                        continue;
                    }
                    match best {
                        Some(b) if v < *b => {}
                        Some(b) if v == *b => args.push(arg.eval_values(row)?),
                        _ => {
                            *best = Some(v);
                            args.clear();
                            args.push(arg.eval_values(row)?);
                        }
                    }
                }
                _ => unreachable!("partial/spec lists are parallel"),
            }
        }
        Ok(())
    };
    let merge = |a: &mut StreamAcc, b: StreamAcc| -> maybms_urel::Result<()> {
        a.wsds.extend(b.wsds);
        for (pa, pb) in a.parts.iter_mut().zip(b.parts) {
            match (pa, pb) {
                (Partial::Lineage, Partial::Lineage) => {}
                (Partial::Expect(x), Partial::Expect(y)) => x.merge(&y),
                (Partial::Std(x), Partial::Std(y)) => x.merge(y)?,
                (
                    Partial::ArgMax { best, args },
                    Partial::ArgMax { best: ob, args: oa },
                ) => match (&*best, ob) {
                    (_, None) => {}
                    (None, Some(b)) => {
                        *best = Some(b);
                        *args = oa;
                    }
                    (Some(a), Some(b)) => {
                        // `self` is the earlier morsel: on ties its args
                        // come first, matching the sequential member order.
                        if b > *a {
                            *best = Some(b);
                            *args = oa;
                        } else if b == *a {
                            args.extend(oa);
                        }
                    }
                },
                _ => unreachable!("partial lists are parallel"),
            }
        }
        Ok(())
    };
    let pipe_stats = stats.map(|qs| {
        let ps = Arc::new(stream.stats_skeleton(format!(
            "grouped aggregation (streaming, {} keys, {} aggs)",
            grouping.len(),
            aggs.len()
        )));
        qs.register_pipeline(ps.clone());
        ps
    });
    let (full_keys, states) = stream
        .collect_grouped_stats(
            grouping,
            pool,
            min_morsel,
            pipe_stats.as_deref(),
            new_state,
            fold,
            merge,
        )
        .map_err(remap_stream_err)?;
    // Reduce keys to the selected prefix for output.
    let keys: Vec<Vec<Value>> = full_keys
        .into_iter()
        .map(|mut k| {
            k.truncate(n_out_keys);
            k
        })
        .collect();

    // ---- finish ----------------------------------------------------
    if has_argmax {
        let (AggSpec::ArgMax { arg, .. }, name) = &aggs[0] else { unreachable!() };
        return finish_argmax(keys, states, key_fields, arg.data_type(&in_schema), name);
    }

    let mut fields = key_fields;
    for (spec, name) in aggs {
        let dtype = match spec {
            AggSpec::Conf | AggSpec::AConf { .. } | AggSpec::TConf => DataType::Float,
            AggSpec::ESum(_) | AggSpec::ECount(_) => DataType::Float,
            AggSpec::Std { func, arg } => match func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                _ => arg
                    .as_ref()
                    .map(|e| e.data_type(&in_schema))
                    .unwrap_or(DataType::Unknown),
            },
            AggSpec::ArgMax { .. } => unreachable!("handled above"),
        };
        fields.push(Field::new(name.clone(), dtype));
    }
    let schema = Arc::new(Schema::new(fields));

    // One output row per group. `aconf` seeds keep the (group, slot)
    // numbering of the two-pass path, so rows are identical whether
    // groups evaluate in a loop or fan out to the pool.
    let n_aconf =
        aggs.iter().filter(|(s, _)| matches!(s, AggSpec::AConf { .. })).count() as u64;
    let eval_row = |g: usize| -> Result<Tuple> {
        let acc = &states[g];
        let mut row = keys[g].clone();
        let mut aconf_slot = 0u64;
        for (part, (spec, _)) in acc.parts.iter().zip(aggs) {
            let v = match (part, spec) {
                (Partial::Lineage, AggSpec::Conf) => {
                    Value::float(wsds_confidence(&acc.wsds, wt, ctx.exact, ctx, stats)?)?
                }
                (Partial::Lineage, AggSpec::AConf { epsilon, delta }) => {
                    aconf_slot += 1;
                    Value::float(wsds_confidence(
                        &acc.wsds,
                        wt,
                        ConfMethod::Approx {
                            epsilon: *epsilon,
                            delta: *delta,
                            seed: ctx
                                .seed
                                .wrapping_add(g as u64 * n_aconf)
                                .wrapping_add(aconf_slot),
                        },
                        ctx,
                        stats,
                    )?)?
                }
                (Partial::Expect(sum), _) => Value::float(sum.round())?,
                (Partial::Std(st), _) => st.finish()?,
                _ => unreachable!("partial/spec lists are parallel"),
            };
            row.push(v);
        }
        Ok(Tuple::new(row))
    };

    let n_groups = keys.len();
    let out: Vec<Tuple> = if n_groups >= 8 && pool.threads() > 1 {
        // Per-group confidence computation (#P-hard in general) dominates;
        // fan groups out in small chunks and merge rows in group order.
        let chunk = maybms_par::auto_chunk(n_groups, pool.threads(), 1);
        let partials: Vec<Result<Vec<Tuple>>> =
            pool.par_map_chunks(n_groups, chunk, |range| range.map(&eval_row).collect());
        let mut out = Vec::with_capacity(n_groups);
        for p in partials {
            out.extend(p?);
        }
        out
    } else {
        (0..n_groups).map(eval_row).collect::<Result<_>>()?
    };
    Ok(Relation::new_unchecked(schema, out))
}

/// `argmax` finish over the streamed per-group maxima: all distinct arg
/// values attaining each group's maximum, in first-seen member order —
/// the same rows as [`eval_argmax`] on a materialised input.
fn finish_argmax(
    keys: Vec<Vec<Value>>,
    states: Vec<StreamAcc>,
    key_fields: Vec<Field>,
    arg_dtype: DataType,
    name: &str,
) -> Result<Relation> {
    let mut fields = key_fields;
    fields.push(Field::new(name.to_string(), arg_dtype));
    let schema = Arc::new(Schema::new(fields));
    let mut out = Vec::new();
    for (key, acc) in keys.into_iter().zip(states) {
        let [Partial::ArgMax { best, args }] = &acc.parts[..] else {
            unreachable!("argmax is the only aggregate on this path")
        };
        if best.is_none() {
            continue; // no non-NULL value in the group
        }
        let mut seen = std::collections::HashSet::new();
        for a in args {
            if seen.insert(a.clone()) {
                let mut row = key.clone();
                row.push(a.clone());
                out.push(Tuple::new(row));
            }
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

/// `tconf()`: per stored tuple, its marginal probability. Output: the
/// selected scalar columns plus the tconf column(s), one row per tuple.
pub fn eval_tconf(
    u: &URelation,
    scalar_items: &[(Expr, String)],
    tconf_names: &[String],
    wt: &WorldTable,
) -> Result<Relation> {
    let mut fields: Vec<Field> = scalar_items
        .iter()
        .map(|(e, n)| Field::new(n.clone(), e.data_type(u.schema())))
        .collect();
    for n in tconf_names {
        fields.push(Field::new(n.clone(), DataType::Float));
    }
    let schema = Arc::new(Schema::new(fields));
    let eval_row = |t: &maybms_urel::UTuple| -> Result<Tuple> {
        let mut row: Vec<Value> = scalar_items
            .iter()
            .map(|(e, _)| e.eval(&t.data))
            .collect::<std::result::Result<_, _>>()?;
        let p = Value::float(t.wsd.prob(wt)?)?;
        for _ in tconf_names {
            row.push(p.clone());
        }
        Ok(Tuple::new(row))
    };
    let pool = maybms_par::pool();
    if u.len() >= 8192 && pool.threads() > 1 {
        // Per-tuple marginals are independent; chunk rows and merge in
        // chunk order (identical output to the sequential scan).
        let chunk = maybms_par::auto_chunk(u.len(), pool.threads(), 2048);
        let partials: Vec<Result<Vec<Tuple>>> =
            pool.par_map_chunks(u.len(), chunk, |range| {
                range.map(|i| eval_row(&u.tuples()[i])).collect()
            });
        let mut out = Vec::with_capacity(u.len());
        for p in partials {
            out.extend(p?);
        }
        return Ok(Relation::new_unchecked(schema, out));
    }
    let mut out = Vec::with_capacity(u.len());
    for t in u.tuples() {
        out.push(eval_row(t)?);
    }
    Ok(Relation::new_unchecked(schema, out))
}

fn eval_std(
    u: &URelation,
    members: &[usize],
    func: AggFunc,
    arg: Option<&Expr>,
) -> Result<Value> {
    // Reuse the engine's aggregate by materialising the group.
    let rel = Relation::new_unchecked(
        u.schema().clone(),
        members.iter().map(|&i| u.tuples()[i].data.clone()).collect(),
    );
    let call = maybms_engine::ops::AggCall::new(func, arg.cloned(), "v");
    let out = maybms_engine::ops::aggregate(&rel, &[], &[], std::slice::from_ref(&call))?;
    Ok(out.tuples()[0].value(0).clone())
}

fn eval_argmax(
    u: &URelation,
    groups: &Groups,
    key_fields: Vec<Field>,
    arg: &Expr,
    value: &Expr,
    name: &str,
) -> Result<Relation> {
    let mut fields = key_fields;
    fields.push(Field::new(name.to_string(), arg.data_type(u.schema())));
    let schema = Arc::new(Schema::new(fields));
    let mut out = Vec::new();
    for (key, members) in groups.keys.iter().zip(&groups.members) {
        // Find the group's maximum value.
        let mut best: Option<Value> = None;
        for &i in members {
            let v = value.eval(&u.tuples()[i].data)?;
            if v.is_null() {
                continue;
            }
            if best.as_ref().is_none_or(|b| v > *b) {
                best = Some(v);
            }
        }
        let Some(best) = best else { continue };
        // Emit every arg value attaining it (distinct, first-seen order).
        let mut seen = std::collections::HashSet::new();
        for &i in members {
            let v = value.eval(&u.tuples()[i].data)?;
            if v == best {
                let a = arg.eval(&u.tuples()[i].data)?;
                if seen.insert(a.clone()) {
                    let mut row = key.clone();
                    row.push(a);
                    out.push(Tuple::new(row));
                }
            }
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType};
    use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
    use maybms_urel::repair::{repair_key, RepairKeyOptions};

    fn ti_setup() -> (WorldTable, URelation) {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("g", DataType::Text), ("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec!["a".into(), 10.into(), Value::Float(0.5)],
                vec!["a".into(), 20.into(), Value::Float(0.5)],
                vec!["b".into(), 30.into(), Value::Float(0.25)],
            ],
        );
        let u = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        (wt, u)
    }

    #[test]
    fn conf_groups_with_fast_path_and_dtree_agree() {
        let (wt, u) = ti_setup();
        let key = Expr::col("g").bind(u.schema()).unwrap();
        let groups = group(&u, &[key]).unwrap();
        let ctx_fast = ConfContext::default();
        let ctx_slow = ConfContext { sprout_fast_path: false, ..Default::default() };
        for members in &groups.members {
            let a = group_confidence(&u, members, &wt, ConfMethod::Exact, &ctx_fast, None)
                .unwrap();
            let b = group_confidence(&u, members, &wt, ConfMethod::Exact, &ctx_slow, None)
                .unwrap();
            assert!((a - b).abs() < 1e-12);
        }
        // Group "a": 1 - 0.5 * 0.5 = 0.75.
        let a_idx = groups
            .keys
            .iter()
            .position(|k| k[0] == Value::str("a"))
            .unwrap();
        let p = group_confidence(
            &u,
            &groups.members[a_idx],
            &wt,
            ConfMethod::Exact,
            &ctx_fast,
            None,
        )
        .unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn esum_ecount_linearity() {
        let (wt, u) = ti_setup();
        let key = Expr::col("g").bind(u.schema()).unwrap();
        let groups = group(&u, &[key]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![Field::new("g", DataType::Text)],
            &[
                (AggSpec::ESum(v.clone()), "es".into()),
                (AggSpec::ECount(None), "ec".into()),
            ],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        // group a: esum = 10*0.5 + 20*0.5 = 15; ecount = 1.0
        let a_row = out
            .tuples()
            .iter()
            .find(|t| t.value(0) == &Value::str("a"))
            .unwrap();
        assert_eq!(a_row.value(1), &Value::Float(15.0));
        assert_eq!(a_row.value(2), &Value::Float(1.0));
        // group b: esum = 30*0.25 = 7.5; ecount = 0.25
        let b_row = out
            .tuples()
            .iter()
            .find(|t| t.value(0) == &Value::str("b"))
            .unwrap();
        assert_eq!(b_row.value(1), &Value::Float(7.5));
        assert_eq!(b_row.value(2), &Value::Float(0.25));
    }

    #[test]
    fn esum_matches_brute_force_expectation() {
        let (wt, u) = ti_setup();
        let groups = group(&u, &[]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(AggSpec::ESum(v), "es".into())],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        let esum = out.tuples()[0].value(0).as_f64().unwrap();
        let brute = maybms_urel::worlds::expectation(&wt, &u, 1 << 10, |r| {
            r.tuples().iter().map(|t| t.value(1).as_f64().unwrap()).sum()
        })
        .unwrap();
        assert!((esum - brute).abs() < 1e-9, "esum {esum} brute {brute}");
    }

    #[test]
    fn std_aggregates_rejected_on_uncertain() {
        let (wt, u) = ti_setup();
        let groups = group(&u, &[]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(
                AggSpec::Std { func: AggFunc::Sum, arg: Some(v) },
                "s".into(),
            )],
            &wt,
            &ConfContext::default(),
        );
        assert!(matches!(out, Err(crate::error::CoreError::Typing { .. })));
    }

    #[test]
    fn std_aggregates_work_on_certain() {
        let wt = WorldTable::new();
        let u = URelation::from_certain(&rel(
            &[("v", DataType::Int)],
            vec![vec![1.into()], vec![2.into()]],
        ));
        let groups = group(&u, &[]).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(AggSpec::Std { func: AggFunc::Sum, arg: Some(v) }, "s".into())],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        assert_eq!(out.tuples()[0].value(0), &Value::Int(3));
    }

    #[test]
    fn argmax_outputs_all_maximisers() {
        let wt = WorldTable::new();
        let u = URelation::from_certain(&rel(
            &[("team", DataType::Text), ("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["LAL".into(), "Bryant".into(), 40.into()],
                vec!["LAL".into(), "Gasol".into(), 40.into()],
                vec!["LAL".into(), "Fisher".into(), 10.into()],
                vec!["SAS".into(), "Duncan".into(), 25.into()],
            ],
        ));
        let key = Expr::col("team").bind(u.schema()).unwrap();
        let groups = group(&u, &[key]).unwrap();
        let arg = Expr::col("player").bind(u.schema()).unwrap();
        let val = Expr::col("pts").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![Field::new("team", DataType::Text)],
            &[(AggSpec::ArgMax { arg, value: val }, "star".into())],
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3); // Bryant, Gasol, Duncan
    }

    #[test]
    fn argmax_on_uncertain_rejected() {
        let (wt, u) = ti_setup();
        let groups = group(&u, &[]).unwrap();
        let arg = Expr::col("g").bind(u.schema()).unwrap();
        let val = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_groups(
            &u,
            &groups,
            vec![],
            &[(AggSpec::ArgMax { arg, value: val }, "a".into())],
            &wt,
            &ConfContext::default(),
        );
        assert!(matches!(out, Err(crate::error::CoreError::Typing { .. })));
    }

    #[test]
    fn streaming_grouped_aggregation_matches_two_pass() {
        // The streaming breaker must be bit-identical to materialising
        // the stream and running group + aggregate_groups — at any
        // thread count, down to single-row morsels.
        let (wt, u) = ti_setup();
        let key = Expr::col("g").bind(u.schema()).unwrap();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let aggs = [
            (AggSpec::Conf, "p".to_string()),
            (AggSpec::ESum(v.clone()), "es".to_string()),
            (AggSpec::ECount(None), "ec".to_string()),
            (AggSpec::AConf { epsilon: 0.4, delta: 0.4 }, "ap".to_string()),
        ];
        let ctx = ConfContext::default();
        let groups = group(&u, std::slice::from_ref(&key)).unwrap();
        let want = aggregate_groups(
            &u,
            &groups,
            vec![Field::new("g", DataType::Text)],
            &aggs,
            &wt,
            &ctx,
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            let pool = maybms_par::ThreadPool::new(threads);
            let got = aggregate_stream_with(
                UStream::new(u.clone()),
                std::slice::from_ref(&key),
                1,
                vec![Field::new("g", DataType::Text)],
                &aggs,
                &wt,
                &ctx,
                None,
                &pool,
                1,
            )
            .unwrap();
            assert_eq!(got.tuples(), want.tuples(), "threads {threads}");
        }
    }

    #[test]
    fn streaming_std_on_uncertain_is_typing_error() {
        let (wt, u) = ti_setup();
        let v = Expr::col("v").bind(u.schema()).unwrap();
        let out = aggregate_stream(
            UStream::new(u),
            &[],
            0,
            vec![],
            &[(AggSpec::Std { func: AggFunc::Sum, arg: Some(v) }, "s".to_string())],
            &wt,
            &ConfContext::default(),
            None,
        );
        assert!(matches!(out, Err(crate::error::CoreError::Typing { .. })), "{out:?}");
    }

    #[test]
    fn streaming_argmax_matches_two_pass() {
        let wt = WorldTable::new();
        let u = URelation::from_certain(&rel(
            &[("team", DataType::Text), ("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["LAL".into(), "Bryant".into(), 40.into()],
                vec!["LAL".into(), "Gasol".into(), 40.into()],
                vec!["LAL".into(), "Fisher".into(), 10.into()],
                vec!["SAS".into(), "Duncan".into(), 25.into()],
            ],
        ));
        let key = Expr::col("team").bind(u.schema()).unwrap();
        let arg = Expr::col("player").bind(u.schema()).unwrap();
        let val = Expr::col("pts").bind(u.schema()).unwrap();
        let aggs =
            [(AggSpec::ArgMax { arg, value: val }, "star".to_string())];
        let groups = group(&u, std::slice::from_ref(&key)).unwrap();
        let want = aggregate_groups(
            &u,
            &groups,
            vec![Field::new("team", DataType::Text)],
            &aggs,
            &wt,
            &ConfContext::default(),
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            let pool = maybms_par::ThreadPool::new(threads);
            let got = aggregate_stream_with(
                UStream::new(u.clone()),
                std::slice::from_ref(&key),
                1,
                vec![Field::new("team", DataType::Text)],
                &aggs,
                &wt,
                &ConfContext::default(),
                None,
                &pool,
                1,
            )
            .unwrap();
            assert_eq!(got.tuples(), want.tuples(), "threads {threads}");
        }
    }

    #[test]
    fn streaming_global_group_over_empty_input() {
        // No GROUP BY over an empty stream still yields one row (SQL
        // scalar-aggregate behaviour), exactly like the two-pass path.
        let wt = WorldTable::new();
        let u = URelation::from_certain(&rel(&[("v", DataType::Int)], vec![]));
        let out = aggregate_stream(
            UStream::new(u),
            &[],
            0,
            vec![],
            &[
                (AggSpec::ECount(None), "ec".to_string()),
                (AggSpec::Conf, "p".to_string()),
            ],
            &wt,
            &ConfContext::default(),
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), &Value::Float(0.0));
        assert_eq!(out.tuples()[0].value(1), &Value::Float(0.0));
    }

    #[test]
    fn tconf_per_tuple() {
        let (wt, u) = ti_setup();
        let g = Expr::col("g").bind(u.schema()).unwrap();
        let out = eval_tconf(&u, &[(g, "g".into())], &["p".to_string()], &wt).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.tuples()[0].value(1), &Value::Float(0.5));
        assert_eq!(out.tuples()[2].value(1), &Value::Float(0.25));
    }

    #[test]
    fn conf_on_repair_key_groups_uses_dtree() {
        // Repair-key output is NOT tuple-independent: the fast path must
        // detect this and fall through to the d-tree.
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("v", DataType::Int)],
            vec![
                vec![1.into(), 1.into()],
                vec![1.into(), 2.into()],
                vec![1.into(), 3.into()],
            ],
        );
        let u = repair_key(&r, &[Expr::col("k")], &RepairKeyOptions::default(), &mut wt)
            .unwrap();
        let groups = group(&u, &[]).unwrap();
        // P(any tuple exists) = 1 (repair always keeps one).
        let p = group_confidence(
            &u,
            &groups.members[0],
            &wt,
            ConfMethod::Exact,
            &ConfContext::default(),
            None,
        )
        .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
