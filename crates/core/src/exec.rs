//! The MayBMS query executor.
//!
//! Evaluates parsed queries over the catalog of U-relations:
//!
//! 1. FROM items become U-relations (`repair key` / `pick tuples` extend
//!    the hypothesis space, §2.2);
//! 2. WHERE is split into conjuncts: single-source predicates are pushed
//!    down, equality conjuncts drive hash joins, `IN (SELECT …)`
//!    conjuncts are rewritten to joins (positive occurrence only), and the
//!    rest filter the joined result — the parsimonious translation of
//!    §2.3 throughout;
//! 3. the SELECT list maps to projections and the uncertainty-aware
//!    aggregates (`conf`, `aconf`, `tconf`, `possible`, `esum`, `ecount`,
//!    `argmax`), enforcing the typing rules of §2.2;
//! 4. UNION is multiset union; ORDER BY orders the representation; LIMIT
//!    is only allowed on t-certain results.
//!
//! The select/project/join chain of a SELECT block is threaded through a
//! [`maybms_pipe::UStream`]: pushed-down filters, hash-join probes, and
//! the final projection accumulate as **fused stages** over the first
//! FROM source and run in one morsel-driven pass — no intermediate
//! U-relation is materialised. Grouped aggregation is a **streaming
//! breaker**: the accumulated pipeline's rows fold straight into
//! morsel-local group tables ([`agg::aggregate_stream`]), so `GROUP BY
//! conf()/esum/ecount` plans stream end-to-end. Materialisation happens
//! only at the remaining breakers (hash-join build sides, nested-loop
//! joins, `IN`-subquery rewrites, `select possible`, DISTINCT, tconf,
//! union) and at the final output. `EXPLAIN` records every collected
//! pipeline via [`ExecCtx::trace`].

use std::collections::BTreeMap;
use std::sync::Arc;

use maybms_engine::ops::ProjectItem;
use maybms_engine::{BinaryOp, Expr as EExpr, Field, Relation, Schema, Tuple};
use maybms_pipe::UStream;
use maybms_sql::{Expr as SExpr, FromItem, Query, QueryInput, Select, SelectItem};
use maybms_urel::{
    algebra, pick_tuples_u, repair_key_u, PickTuplesOptions, RepairKeyOptions, URelation,
    WorldTable,
};

use crate::agg::{self, ConfContext};
use crate::error::{plan_err, typing, Result};
use crate::translate::{classify_item, scalar, AggSpec, Item};

/// The mutable database state a query runs against.
pub struct ExecCtx<'a> {
    /// Stored tables.
    pub catalog: &'a BTreeMap<String, URelation>,
    /// The shared world table (mutable: `repair key` / `pick tuples`
    /// register fresh variables).
    pub wt: &'a mut WorldTable,
    /// Confidence-computation configuration.
    pub conf: ConfContext,
    /// When set, every pipeline the executor collects appends its
    /// decomposition (source, fused stages, breaker reason) — the
    /// `EXPLAIN` implementation.
    pub trace: Option<Vec<String>>,
    /// When attached, every pipeline registers a per-stage stats
    /// collector and the aggregates record confidence-computation effort
    /// — the `EXPLAIN ANALYZE` / slow-query-log implementation. Never
    /// changes results: everything collected is an order-independent
    /// sum or max.
    pub stats: Option<std::sync::Arc<maybms_obs::QueryStats>>,
}

impl<'a> ExecCtx<'a> {
    /// A context without explain tracing or stats collection.
    pub fn new(
        catalog: &'a BTreeMap<String, URelation>,
        wt: &'a mut WorldTable,
        conf: ConfContext,
    ) -> ExecCtx<'a> {
        ExecCtx { catalog, wt, conf, trace: None, stats: None }
    }
}

/// Materialise a pipeline, recording its decomposition when the context
/// traces for `EXPLAIN` and registering a per-stage stats collector when
/// the context carries one (`EXPLAIN ANALYZE`).
fn collect_traced(
    stream: UStream,
    ctx: &mut ExecCtx<'_>,
    reason: &str,
) -> Result<URelation> {
    if let Some(trace) = &mut ctx.trace {
        let mut entry = format!("pipeline ({reason})\n");
        for line in stream.describe().lines() {
            entry.push_str("  ");
            entry.push_str(line);
            entry.push('\n');
        }
        trace.push(entry);
    }
    let pipe_stats = ctx.stats.as_ref().map(|qs| {
        let ps = std::sync::Arc::new(stream.stats_skeleton(reason));
        qs.register_pipeline(ps.clone());
        ps
    });
    let pool = maybms_par::pool();
    Ok(stream.collect_stats(
        &pool,
        maybms_engine::ops::PAR_MIN_CHUNK,
        maybms_pipe::columnar_default(),
        pipe_stats.as_deref(),
    )?)
}

/// The result of a query: a t-certain table or an uncertain one.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// A typed-certain table (§2.2): plain relational output.
    Certain(Relation),
    /// An uncertain table: the U-relational representation.
    Uncertain(URelation),
}

impl QueryOutput {
    /// View as a U-relation (lifting certain tables).
    pub fn into_urelation(self) -> URelation {
        match self {
            QueryOutput::Certain(r) => URelation::from_certain(&r),
            QueryOutput::Uncertain(u) => u,
        }
    }

    /// The number of stored (representation) rows.
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Certain(r) => r.len(),
            QueryOutput::Uncertain(u) => u.len(),
        }
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The certain relation, if this output is t-certain.
    pub fn as_certain(&self) -> Option<&Relation> {
        match self {
            QueryOutput::Certain(r) => Some(r),
            QueryOutput::Uncertain(_) => None,
        }
    }
}

/// Evaluate a full query (UNION chain + ORDER BY/LIMIT).
pub fn eval_query(q: &Query, ctx: &mut ExecCtx<'_>) -> Result<QueryOutput> {
    let mut result = eval_select(&q.first, ctx)?;
    for (all, s) in &q.rest {
        let next = eval_select(s, ctx)?;
        result = match (result, next) {
            (QueryOutput::Certain(a), QueryOutput::Certain(b)) => {
                // Certain UNION deduplicates (left-associatively, as in
                // SQL); UNION ALL keeps the bag.
                let merged = maybms_engine::ops::union_all(&[&a, &b])?;
                let merged =
                    if *all { merged } else { maybms_engine::ops::distinct(&merged) };
                QueryOutput::Certain(merged)
            }
            (a, b) => {
                // Uncertain union is multiset union of representations in
                // both spellings (§2.2: "the multiset union of uncertain
                // queries (using SQL union)") — distinct would require
                // conditions beyond per-tuple conjunctions.
                let (ua, ub) = (a.into_urelation(), b.into_urelation());
                QueryOutput::Uncertain(algebra::union_all(&[&ua, &ub])?)
            }
        };
    }
    // ORDER BY orders the stored representation. Keys resolve against the
    // select list first (`ORDER BY r2.final` after `r2.final AS state`),
    // then against the output schema, with a qualifier-dropping fallback.
    if !q.order_by.is_empty() {
        let schema_for_keys = match &result {
            QueryOutput::Certain(r) => r.schema().clone(),
            QueryOutput::Uncertain(u) => u.schema().clone(),
        };
        // Output-position map for non-wildcard select lists of a plain
        // (non-union) query.
        let item_positions: Option<Vec<&SExpr>> = if q.rest.is_empty()
            && q.first.items.iter().all(|i| matches!(i, SelectItem::Expr { .. }))
        {
            Some(
                q.first
                    .items
                    .iter()
                    .map(|i| match i {
                        SelectItem::Expr { expr, .. } => expr,
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            None
        };
        let keys: Vec<maybms_engine::ops::SortKey> = q
            .order_by
            .iter()
            .map(|k| {
                // `ORDER BY 2` — positional reference to an output column.
                if let SExpr::Lit(maybms_sql::Lit::Int(n)) = &k.expr {
                    let n = *n;
                    if n < 1 || n as usize > schema_for_keys.len() {
                        return Err(plan_err(format!(
                            "ORDER BY position {n} is out of range 1..={}",
                            schema_for_keys.len()
                        )));
                    }
                    return Ok(maybms_engine::ops::SortKey {
                        expr: EExpr::ColumnIdx(n as usize - 1),
                        ascending: k.ascending,
                    });
                }
                let expr = match &item_positions {
                    Some(items) => match items.iter().position(|e| **e == k.expr) {
                        Some(i) => EExpr::ColumnIdx(i),
                        None => bind_with_fallback(&scalar(&k.expr)?, &schema_for_keys)?,
                    },
                    None => bind_with_fallback(&scalar(&k.expr)?, &schema_for_keys)?,
                };
                Ok(maybms_engine::ops::SortKey { expr, ascending: k.ascending })
            })
            .collect::<Result<_>>()?;
        result = match result {
            QueryOutput::Certain(r) => {
                QueryOutput::Certain(maybms_engine::ops::sort(&r, &keys)?)
            }
            QueryOutput::Uncertain(u) => {
                // Stable sort of the representation by data columns.
                let bound: Vec<(EExpr, bool)> = keys
                    .iter()
                    .map(|k| Ok((k.expr.bind(u.schema())?, k.ascending)))
                    .collect::<Result<_>>()?;
                let mut idx: Vec<usize> = (0..u.len()).collect();
                let mut sort_err = None;
                idx.sort_by(|&a, &b| {
                    for (e, asc) in &bound {
                        let va = e.eval(&u.tuples()[a].data);
                        let vb = e.eval(&u.tuples()[b].data);
                        match (va, vb) {
                            (Ok(va), Ok(vb)) => {
                                let ord = va.cmp(&vb);
                                let ord = if *asc { ord } else { ord.reverse() };
                                if ord != std::cmp::Ordering::Equal {
                                    return ord;
                                }
                            }
                            (Err(e), _) | (_, Err(e)) => {
                                sort_err.get_or_insert(e);
                                return std::cmp::Ordering::Equal;
                            }
                        }
                    }
                    a.cmp(&b)
                });
                if let Some(e) = sort_err {
                    return Err(e.into());
                }
                QueryOutput::Uncertain(u.gather(&idx))
            }
        };
    }
    if let Some(n) = q.limit {
        result = match result {
            QueryOutput::Certain(r) => {
                QueryOutput::Certain(maybms_engine::ops::limit(&r, n as usize))
            }
            QueryOutput::Uncertain(_) => {
                return Err(typing(
                    "LIMIT on an uncertain relation would truncate the representation, \
                     changing its possible-worlds semantics; compute a t-certain result first",
                ))
            }
        };
    }
    Ok(result)
}

/// Evaluate one SELECT block.
pub fn eval_select(s: &Select, ctx: &mut ExecCtx<'_>) -> Result<QueryOutput> {
    // ---- FROM --------------------------------------------------------
    // Every FROM item becomes a pipeline head; pushed-down predicates,
    // probes, and the final projection fuse onto these streams.
    let mut sources: Vec<UStream> = Vec::with_capacity(s.from.len());
    for item in &s.from {
        sources.push(UStream::new(eval_from_item(item, ctx)?));
    }
    if sources.is_empty() {
        // SELECT without FROM: one empty tuple.
        sources.push(UStream::new(URelation::new(
            Schema::empty(),
            vec![maybms_urel::UTuple::certain(Tuple::new(Vec::new()))],
        )));
    }

    // ---- WHERE: conjunct split --------------------------------------
    let mut conjuncts: Vec<SExpr> = Vec::new();
    if let Some(w) = &s.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }
    // IN (SELECT …) conjuncts are handled after the joins.
    let (in_selects, plain): (Vec<SExpr>, Vec<SExpr>) = conjuncts
        .into_iter()
        .partition(|c| matches!(c, SExpr::InSelect { .. }));
    let mut predicates: Vec<EExpr> =
        plain.iter().map(scalar).collect::<Result<_>>()?;

    // Push single-source predicates down (fused σ stages, not
    // materialised selects).
    let mut filtered = Vec::with_capacity(sources.len());
    for mut src in sources {
        let mut kept = Vec::new();
        for p in predicates.drain(..) {
            if p.bind(src.schema()).is_ok() {
                src = src.filter(&p)?;
            } else {
                kept.push(p);
            }
        }
        predicates = kept;
        filtered.push(src);
    }
    let mut sources = filtered;

    // Greedy join of the sources using equality conjuncts.
    // (predicate idx, source idx, [(left col, left qual, right col, right qual)])
    type JoinChoice = (usize, usize, Vec<(String, Option<String>, String, Option<String>)>);
    let mut joined = sources.remove(0);
    while !sources.is_empty() {
        // Find a predicate linking `joined` to some remaining source.
        let mut choice: Option<JoinChoice> = None;
        'outer: for (pi, p) in predicates.iter().enumerate() {
            if let Some((lq, ln, rq, rn)) = as_column_equality(p) {
                for (si, src) in sources.iter().enumerate() {
                    let l_in_joined = joined.schema().index_of(lq.as_deref(), &ln).is_ok();
                    let r_in_src = src.schema().index_of(rq.as_deref(), &rn).is_ok();
                    let r_in_joined = joined.schema().index_of(rq.as_deref(), &rn).is_ok();
                    let l_in_src = src.schema().index_of(lq.as_deref(), &ln).is_ok();
                    if l_in_joined && r_in_src {
                        choice = Some((pi, si, vec![(ln, lq, rn, rq)]));
                        break 'outer;
                    }
                    if r_in_joined && l_in_src {
                        choice = Some((pi, si, vec![(rn, rq, ln, lq)]));
                        break 'outer;
                    }
                }
            }
        }
        match choice {
            Some((pi, si, keys)) => {
                predicates.remove(pi);
                let src = sources.remove(si);
                let (jn, jq, sn, sq) = &keys[0];
                let lk = joined.schema().index_of(jq.as_deref(), jn)?;
                let rk = src.schema().index_of(sq.as_deref(), sn)?;
                // The new source is the build side (a breaker: it
                // materialises, morsel-locally hashed); `joined` keeps
                // streaming through the probe stage.
                let build = collect_traced(src, ctx, "hash-join build side")?;
                joined = joined.hash_join(build, &[lk], &[rk])?;
            }
            None => {
                // No equality conjunct: a nested-loop join breaks the
                // pipeline on both sides.
                let src = sources.remove(0);
                let left = collect_traced(joined, ctx, "nested-loop join input")?;
                let right = collect_traced(src, ctx, "nested-loop join input")?;
                joined = UStream::new(algebra::nested_loop_join(&left, &right, None)?);
            }
        }
        // Apply any predicates that became fully bound.
        let mut kept = Vec::new();
        for p in predicates.drain(..) {
            match p.bind(joined.schema()) {
                Ok(bound) => joined = joined.filter(&bound)?,
                Err(_) => kept.push(p),
            }
        }
        predicates = kept;
    }
    // Any remaining predicate must now bind.
    for p in predicates {
        let bound = p.bind(joined.schema())?;
        joined = joined.filter(&bound)?;
    }

    // ---- IN (SELECT …) rewrites --------------------------------------
    for in_sel in &in_selects {
        let SExpr::InSelect { expr, query } = in_sel else { unreachable!() };
        let materialized = collect_traced(joined, ctx, "IN-subquery rewrite")?;
        joined = UStream::new(rewrite_in_select(materialized, expr, query, ctx)?);
    }

    // ---- SELECT list --------------------------------------------------
    let items = expand_items(s, joined.schema())?;

    if s.possible {
        return eval_possible(joined, &items, ctx);
    }

    let has_aggs = items.iter().any(|i| matches!(i, Item::Agg { .. }));
    let has_tconf = items
        .iter()
        .any(|i| matches!(i, Item::Agg { spec: AggSpec::TConf, .. }));

    if has_tconf {
        if !s.group_by.is_empty() {
            return Err(plan_err(
                "tconf() computes per-tuple marginals and cannot be combined with GROUP BY",
            ));
        }
        if items.iter().any(|i| {
            matches!(i, Item::Agg { spec, .. } if !matches!(spec, AggSpec::TConf))
        }) {
            return Err(plan_err("tconf() cannot be combined with other aggregates"));
        }
        // tconf() is per-tuple, not grouped: HAVING has no groups to
        // filter here, exactly as on the plain-projection path.
        if s.having.is_some() {
            return Err(plan_err(
                "HAVING requires GROUP BY or aggregates (tconf() is per-tuple)",
            ));
        }
        let mut scalars = Vec::new();
        let mut tconf_names = Vec::new();
        for item in &items {
            match item {
                Item::Scalar { expr, name } => {
                    scalars.push((expr.bind(joined.schema())?, name.clone()))
                }
                Item::Agg { name, .. } => tconf_names.push(name.clone()),
            }
        }
        let joined = collect_traced(joined, ctx, "tconf breaker")?;
        let rel = agg::eval_tconf(&joined, &scalars, &tconf_names, ctx.wt)?;
        // Reorder columns to the select order.
        let rel = reorder_to_select_order(rel, &items)?;
        return Ok(QueryOutput::Certain(rel));
    }

    if has_aggs || !s.group_by.is_empty() {
        let out = eval_aggregate_select(s, joined, &items, ctx)?;
        return Ok(QueryOutput::Certain(apply_having(out, s)?));
    }

    if s.having.is_some() {
        return Err(plan_err("HAVING requires GROUP BY or aggregates"));
    }

    // Plain projection: one more fused stage, then the single
    // materialisation of the whole block.
    let proj: Vec<ProjectItem> = items
        .iter()
        .map(|i| match i {
            Item::Scalar { expr, name } => Ok(ProjectItem::new(expr.clone(), name.clone())),
            Item::Agg { .. } => unreachable!("no aggregates on this path"),
        })
        .collect::<Result<_>>()?;
    let reason = if s.distinct { "distinct breaker" } else { "output" };
    let projected = collect_traced(joined.project(&proj)?, ctx, reason)?;
    if s.distinct {
        if !projected.is_t_certain() {
            return Err(typing(
                "SELECT DISTINCT is not supported on uncertain relations (§2.2); \
                 use `select possible` or a confidence aggregate",
            ));
        }
        let r = maybms_engine::ops::distinct(&projected.into_certain());
        return Ok(QueryOutput::Certain(r));
    }
    if projected.is_t_certain() {
        Ok(QueryOutput::Certain(projected.into_certain()))
    } else {
        Ok(QueryOutput::Uncertain(projected))
    }
}

/// `select possible …` (§2.2): project, drop zero-probability tuples,
/// deduplicate — mapping uncertain to t-certain. The projection fuses
/// onto the incoming stream; dedup is the breaker.
fn eval_possible(
    joined: UStream,
    items: &[Item],
    ctx: &mut ExecCtx<'_>,
) -> Result<QueryOutput> {
    let proj: Vec<ProjectItem> = items
        .iter()
        .map(|i| match i {
            Item::Scalar { expr, name } => Ok(ProjectItem::new(expr.clone(), name.clone())),
            Item::Agg { .. } => Err(plan_err(
                "select possible cannot be combined with aggregates",
            )),
        })
        .collect::<Result<_>>()?;
    let projected = collect_traced(joined.project(&proj)?, ctx, "select possible breaker")?;
    // Dedup by row reference, gathering only the surviving rows at the
    // end (final clones are Arc bumps).
    let mut sel = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, t) in projected.tuples().iter().enumerate() {
        if t.wsd.prob(ctx.wt)? > 0.0 && seen.insert(&t.data) {
            sel.push(i);
        }
    }
    let tuples = sel
        .iter()
        .map(|&i| projected.tuples()[i].data.clone())
        .collect();
    Ok(QueryOutput::Certain(Relation::new_unchecked(
        Arc::new(projected.schema().without_qualifiers()),
        tuples,
    )))
}

/// Grouped/aggregate SELECT evaluation — the **streaming
/// grouped-aggregation breaker**: the accumulated pipeline is not
/// materialised; its fused stages run morsel-by-morsel and every
/// surviving row folds into a morsel-local group table
/// ([`agg::aggregate_stream`]). Output is bit-identical to collecting
/// the stream and running the two-pass [`agg::aggregate_groups`] path.
fn eval_aggregate_select(
    s: &Select,
    joined: UStream,
    items: &[Item],
    ctx: &mut ExecCtx<'_>,
) -> Result<Relation> {
    let schema = joined.schema().clone();
    // Bind group-by expressions.
    let group_exprs: Vec<EExpr> = s
        .group_by
        .iter()
        .map(|e| Ok(scalar(e)?.bind(&schema)?))
        .collect::<Result<_>>()?;
    // Every scalar select item must match a group-by expression.
    let mut key_fields = Vec::new();
    let mut key_exprs = Vec::new();
    let mut aggs: Vec<(AggSpec, String)> = Vec::new();
    for item in items {
        match item {
            Item::Scalar { expr, name } => {
                let bound = expr.bind(&schema)?;
                if !group_exprs.contains(&bound) {
                    return Err(plan_err(format!(
                        "select item `{name}` must appear in GROUP BY or be aggregated"
                    )));
                }
                key_fields.push(Field::new(name.clone(), bound.data_type(&schema)));
                key_exprs.push(bound);
            }
            Item::Agg { spec, name } => {
                let spec = bind_agg(spec, &schema)?;
                aggs.push((spec, name.clone()));
            }
        }
    }
    // Group on the union: selected keys first, then any extra GROUP BY
    // expressions (grouped but not output).
    let mut grouping = key_exprs.clone();
    for g in &group_exprs {
        if !grouping.contains(g) {
            grouping.push(g.clone());
        }
    }
    if let Some(trace) = &mut ctx.trace {
        let mut entry = format!(
            "pipeline (grouped aggregation (streaming, {} keys, {} aggs))\n",
            grouping.len(),
            aggs.len()
        );
        for line in joined.describe().lines() {
            entry.push_str("  ");
            entry.push_str(line);
            entry.push('\n');
        }
        trace.push(entry);
    }
    let rel = agg::aggregate_stream(
        joined,
        &grouping,
        key_exprs.len(),
        key_fields,
        &aggs,
        ctx.wt,
        &ctx.conf,
        ctx.stats.as_deref(),
    )?;
    reorder_to_select_order(rel, items)
}

/// Bind the inner expressions of an aggregate spec.
fn bind_agg(spec: &AggSpec, schema: &Schema) -> Result<AggSpec> {
    Ok(match spec {
        AggSpec::ESum(e) => AggSpec::ESum(e.bind(schema)?),
        AggSpec::ECount(e) => {
            AggSpec::ECount(e.as_ref().map(|x| x.bind(schema)).transpose()?)
        }
        AggSpec::ArgMax { arg, value } => {
            AggSpec::ArgMax { arg: arg.bind(schema)?, value: value.bind(schema)? }
        }
        AggSpec::Std { func, arg } => AggSpec::Std {
            func: *func,
            arg: arg.as_ref().map(|x| x.bind(schema)).transpose()?,
        },
        other => other.clone(),
    })
}

/// The aggregate evaluator outputs keys-then-aggregates; restore the
/// original select order.
fn reorder_to_select_order(rel: Relation, items: &[Item]) -> Result<Relation> {
    // Current layout: scalars (in item order) then aggregates (in item
    // order). Compute the permutation back to select order.
    let n_scalars = items.iter().filter(|i| matches!(i, Item::Scalar { .. })).count();
    let mut scalar_seen = 0usize;
    let mut agg_seen = 0usize;
    let mut perm = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Item::Scalar { .. } => {
                perm.push(scalar_seen);
                scalar_seen += 1;
            }
            Item::Agg { .. } => {
                perm.push(n_scalars + agg_seen);
                agg_seen += 1;
            }
        }
    }
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        return Ok(rel);
    }
    let fields: Vec<Field> =
        perm.iter().map(|&i| rel.schema().field(i).clone()).collect();
    let schema = Arc::new(Schema::new(fields));
    let tuples = rel.tuples().iter().map(|t| t.take(&perm)).collect();
    Ok(Relation::new_unchecked(schema, tuples))
}

/// Apply HAVING to an aggregate output. The predicate binds against the
/// output schema (so aliases like `p` work) with the same
/// qualifier-stripping fallback ORDER BY gets: aggregate outputs lose
/// their qualifiers, but `GROUP BY r1.player … HAVING r1.player = 'X'`
/// is idiomatic SQL.
fn apply_having(rel: Relation, s: &Select) -> Result<Relation> {
    match &s.having {
        None => Ok(rel),
        Some(h) => {
            let pred = bind_with_fallback(&scalar(h)?, rel.schema())?;
            Ok(maybms_engine::ops::filter(&rel, &pred)?)
        }
    }
}

/// Expand wildcards and classify the select list.
fn expand_items(s: &Select, schema: &Schema) -> Result<Vec<Item>> {
    let mut items = Vec::new();
    for (pos, item) in s.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (i, f) in schema.fields().iter().enumerate() {
                    items.push(Item::Scalar {
                        expr: EExpr::ColumnIdx(i),
                        name: f.name.clone(),
                    });
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for (i, f) in schema.fields().iter().enumerate() {
                    if f.qualifier.as_deref().is_some_and(|fq| fq.eq_ignore_ascii_case(q)) {
                        items.push(Item::Scalar {
                            expr: EExpr::ColumnIdx(i),
                            name: f.name.clone(),
                        });
                        any = true;
                    }
                }
                if !any {
                    return Err(plan_err(format!("unknown relation alias `{q}.*`")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                items.push(classify_item(expr, alias.as_deref(), pos)?);
            }
        }
    }
    Ok(items)
}

/// Evaluate one FROM item to a qualified U-relation.
fn eval_from_item(item: &FromItem, ctx: &mut ExecCtx<'_>) -> Result<URelation> {
    match item {
        FromItem::Table { name, alias } => {
            let u = ctx
                .catalog
                .get(&name.to_ascii_lowercase())
                .ok_or_else(|| {
                    crate::error::CoreError::Engine(
                        maybms_engine::EngineError::TableNotFound { name: name.clone() },
                    )
                })?
                .clone();
            let q = alias.as_deref().unwrap_or(name);
            let schema = Arc::new(u.schema().without_qualifiers().with_qualifier(q));
            Ok(u.with_schema(schema))
        }
        FromItem::Subquery { query, alias } => {
            let u = eval_query(query, ctx)?.into_urelation();
            let schema = Arc::new(u.schema().without_qualifiers().with_qualifier(alias));
            Ok(u.with_schema(schema))
        }
        FromItem::RepairKey { key, input, weight, alias } => {
            let input = eval_query_input(input, ctx)?;
            let key_exprs: Vec<EExpr> =
                key.iter().map(|k| EExpr::col(k.clone())).collect();
            let options = RepairKeyOptions {
                weight: weight.as_ref().map(scalar).transpose()?,
            };
            let out = repair_key_u(&input, &key_exprs, &options, ctx.wt)?;
            Ok(apply_alias(out, alias.as_deref()))
        }
        FromItem::PickTuples { input, independently: _, probability, alias } => {
            // `independently` is the only supported semantics (see
            // DESIGN.md §5.5); the keyword is accepted in both spellings.
            let input = eval_query_input(input, ctx)?;
            let options = PickTuplesOptions {
                probability: probability.as_ref().map(scalar).transpose()?,
            };
            let out = pick_tuples_u(&input, &options, ctx.wt)?;
            Ok(apply_alias(out, alias.as_deref()))
        }
        FromItem::Join { left, right, on } => {
            let l = eval_from_item(left, ctx)?;
            let r = eval_from_item(right, ctx)?;
            let pred = scalar(on)?;
            Ok(algebra::nested_loop_join(&l, &r, Some(&pred))?)
        }
    }
}

fn apply_alias(u: URelation, alias: Option<&str>) -> URelation {
    match alias {
        Some(a) => {
            let schema = Arc::new(u.schema().without_qualifiers().with_qualifier(a));
            u.with_schema(schema)
        }
        None => u,
    }
}

/// Evaluate the `<t-certain-query>` input of repair-key/pick-tuples.
fn eval_query_input(input: &QueryInput, ctx: &mut ExecCtx<'_>) -> Result<URelation> {
    match input {
        QueryInput::Table(name) => {
            let u = ctx
                .catalog
                .get(&name.to_ascii_lowercase())
                .ok_or_else(|| {
                    crate::error::CoreError::Engine(
                        maybms_engine::EngineError::TableNotFound { name: name.clone() },
                    )
                })?
                .clone();
            Ok(u)
        }
        QueryInput::Select(q) => Ok(eval_query(q, ctx)?.into_urelation()),
    }
}

/// `x IN (SELECT …)` rewritten to join + project-back. Correct for
/// confidence computation because downstream aggregation treats duplicate
/// tuples disjunctively — the reason the language restricts IN-subqueries
/// to positive occurrences (§2.2).
fn rewrite_in_select(
    joined: URelation,
    probe: &SExpr,
    query: &Query,
    ctx: &mut ExecCtx<'_>,
) -> Result<URelation> {
    let sub = eval_query(query, ctx)?.into_urelation();
    if sub.schema().len() != 1 {
        return Err(plan_err(format!(
            "IN-subquery must produce exactly one column, got {}",
            sub.schema().len()
        )));
    }
    let n = joined.schema().len();
    // Append the probe value as a synthetic column, hash-join against the
    // subquery, then project the original columns back.
    let mut proj: Vec<ProjectItem> = (0..n)
        .map(|i| {
            ProjectItem::new(EExpr::ColumnIdx(i), joined.schema().field(i).name.clone())
        })
        .collect();
    proj.push(ProjectItem::new(scalar(probe)?, "__probe".to_string()));
    let with_probe = algebra::project(&joined, &proj)?;
    // Keep original qualified schema plus the probe column.
    let mut fields = joined.schema().fields().to_vec();
    fields.push(Field::new(
        "__probe",
        with_probe.schema().field(n).dtype,
    ));
    let with_probe = with_probe.with_schema(Arc::new(Schema::new(fields)));
    let joined2 = algebra::hash_join(&with_probe, &sub, &[n], &[0])?;
    // Project back to the original columns.
    let keep: Vec<usize> = (0..n).collect();
    let fields: Vec<Field> = joined.schema().fields().to_vec();
    let schema = Arc::new(Schema::new(fields));
    let tuples = joined2
        .tuples()
        .iter()
        .map(|t| maybms_urel::UTuple::new(t.data.take(&keep), t.wsd.clone()))
        .collect();
    Ok(URelation::new(schema, tuples))
}

/// Bind an expression, retrying qualified column references without their
/// qualifier when they fail — aggregate outputs lose their qualifiers, but
/// `ORDER BY r1.player` after `GROUP BY r1.player` is idiomatic SQL.
fn bind_with_fallback(e: &EExpr, schema: &Schema) -> Result<EExpr> {
    match e.bind(schema) {
        Ok(b) => Ok(b),
        Err(first_err) => {
            let stripped = strip_qualifiers(e);
            stripped.bind(schema).map_err(|_| first_err.into())
        }
    }
}

/// A copy of the expression with all column qualifiers removed.
fn strip_qualifiers(e: &EExpr) -> EExpr {
    match e {
        EExpr::Column { name, .. } => EExpr::Column { qualifier: None, name: name.clone() },
        EExpr::ColumnIdx(i) => EExpr::ColumnIdx(*i),
        EExpr::Literal(v) => EExpr::Literal(v.clone()),
        EExpr::Binary { left, op, right } => EExpr::Binary {
            left: Box::new(strip_qualifiers(left)),
            op: *op,
            right: Box::new(strip_qualifiers(right)),
        },
        EExpr::Unary { op, expr } => {
            EExpr::Unary { op: *op, expr: Box::new(strip_qualifiers(expr)) }
        }
        EExpr::IsNull { expr, negated } => EExpr::IsNull {
            expr: Box::new(strip_qualifiers(expr)),
            negated: *negated,
        },
        EExpr::InList { expr, list, negated } => EExpr::InList {
            expr: Box::new(strip_qualifiers(expr)),
            list: list.iter().map(strip_qualifiers).collect(),
            negated: *negated,
        },
        EExpr::Case { branches, else_expr } => EExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| (strip_qualifiers(c), strip_qualifiers(r)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(strip_qualifiers(x))),
        },
        EExpr::Cast { expr, dtype } => {
            EExpr::Cast { expr: Box::new(strip_qualifiers(expr)), dtype: *dtype }
        }
    }
}

/// Split an expression into top-level AND conjuncts.
fn split_conjuncts(e: &SExpr, out: &mut Vec<SExpr>) {
    if let SExpr::Binary { left, op: maybms_sql::BinOp::And, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Recognise `col = col` equality predicates (for hash-join planning).
#[allow(clippy::type_complexity)]
fn as_column_equality(
    e: &EExpr,
) -> Option<(Option<String>, String, Option<String>, String)> {
    if let EExpr::Binary { left, op: BinaryOp::Eq, right } = e {
        if let (
            EExpr::Column { qualifier: lq, name: ln },
            EExpr::Column { qualifier: rq, name: rn },
        ) = (left.as_ref(), right.as_ref())
        {
            return Some((lq.clone(), ln.clone(), rq.clone(), rn.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType, Value};
    use maybms_sql::parse_query;

    fn fixture() -> (BTreeMap<String, URelation>, WorldTable) {
        let mut catalog = BTreeMap::new();
        catalog.insert(
            "games".to_string(),
            URelation::from_certain(&rel(
                &[
                    ("player", DataType::Text),
                    ("team", DataType::Text),
                    ("pts", DataType::Int),
                ],
                vec![
                    vec!["Bryant".into(), "LAL".into(), 40.into()],
                    vec!["Bryant".into(), "LAL".into(), 30.into()],
                    vec!["Duncan".into(), "SAS".into(), 25.into()],
                ],
            )),
        );
        catalog.insert(
            "teams".to_string(),
            URelation::from_certain(&rel(
                &[("team", DataType::Text), ("city", DataType::Text)],
                vec![
                    vec!["LAL".into(), "Los Angeles".into()],
                    vec!["SAS".into(), "San Antonio".into()],
                ],
            )),
        );
        (catalog, WorldTable::new())
    }

    fn run(sql: &str) -> Result<QueryOutput> {
        let (catalog, mut wt) = fixture();
        let mut ctx = ExecCtx::new(&catalog, &mut wt, ConfContext::default());
        let q = parse_query(sql).unwrap();
        eval_query(&q, &mut ctx)
    }

    fn certain(sql: &str) -> Relation {
        match run(sql).unwrap() {
            QueryOutput::Certain(r) => r,
            QueryOutput::Uncertain(_) => panic!("expected certain output"),
        }
    }

    #[test]
    fn select_star() {
        let r = certain("select * from games");
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema().names(), vec!["player", "team", "pts"]);
    }

    #[test]
    fn filter_and_projection() {
        let r = certain("select player, pts * 2 as double_pts from games where pts > 28");
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().names(), vec!["player", "double_pts"]);
        assert_eq!(r.tuples()[0].value(1), &Value::Int(80));
    }

    #[test]
    fn equi_join_via_where() {
        let r = certain(
            "select g.player, t.city from games g, teams t where g.team = t.team and g.pts > 30",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].value(1), &Value::str("Los Angeles"));
    }

    #[test]
    fn join_on_sugar() {
        let r = certain("select g.player, t.city from games g join teams t on g.team = t.team");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn aggregates_on_certain() {
        let r = certain(
            "select player, sum(pts) as total, count(*) as n from games group by player",
        );
        assert_eq!(r.len(), 2);
        let bryant = r
            .tuples()
            .iter()
            .find(|t| t.value(0) == &Value::str("Bryant"))
            .unwrap();
        assert_eq!(bryant.value(1), &Value::Int(70));
        assert_eq!(bryant.value(2), &Value::Int(2));
    }

    #[test]
    fn select_item_not_in_group_by_rejected() {
        assert!(run("select player, pts from games group by player").is_err());
    }

    #[test]
    fn having_filters_groups() {
        let r = certain(
            "select player, sum(pts) as total from games group by player having total > 30",
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn having_with_qualified_column_binds_with_fallback() {
        // Aggregate outputs lose their qualifiers; HAVING gets the same
        // qualifier-stripping fallback ORDER BY has.
        let r = certain(
            "select g.player, sum(pts) as total from games g \
             group by g.player having g.player = 'Bryant'",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].value(0), &Value::str("Bryant"));
        assert_eq!(r.tuples()[0].value(1), &Value::Int(70));
        // The matching ORDER BY spelling worked before; both must agree.
        let r = certain(
            "select g.player, sum(pts) as total from games g \
             group by g.player order by g.player",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn having_on_tconf_rejected() {
        // tconf() is per-tuple, not grouped: HAVING must be rejected just
        // like on the plain-projection path, not silently applied.
        let err = run(
            "select player, tconf() as p from (pick tuples from games) g having p > 0.5",
        )
        .unwrap_err();
        assert!(
            matches!(err, crate::error::CoreError::Plan { ref message }
                if message.contains("HAVING")),
            "{err:?}"
        );
    }

    #[test]
    fn having_without_group_by_or_aggregates_rejected() {
        let err = run("select player from games having player = 'Bryant'").unwrap_err();
        assert!(err.to_string().contains("HAVING"), "{err}");
    }

    #[test]
    fn order_by_and_limit() {
        let r = certain("select player, pts from games order by pts desc limit 2");
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].value(1), &Value::Int(40));
    }

    #[test]
    fn union_and_union_all() {
        let r = certain("select team from teams union all select team from teams");
        assert_eq!(r.len(), 4);
        let r = certain("select team from teams union select team from teams");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_on_certain() {
        let r = certain("select distinct player from games");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn in_list_predicate() {
        let r = certain("select player from games where pts in (25, 40)");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn in_select_rewrite() {
        let r = certain(
            "select player from games where team in (select team from teams where city = 'Los Angeles')",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_without_from() {
        let r = certain("select 1 as one, 'x' as s");
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].value(0), &Value::Int(1));
    }

    #[test]
    fn argmax_query() {
        let r = certain("select team, argmax(player, pts) as star from games group by team");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn cross_join_cardinality() {
        let r = certain("select * from games, teams");
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn qualified_wildcard() {
        let r = certain("select t.* from games g, teams t where g.team = t.team");
        assert_eq!(r.schema().names(), vec!["team", "city"]);
    }

    #[test]
    fn unknown_table_errors() {
        assert!(run("select * from nope").is_err());
    }

    #[test]
    fn unknown_alias_in_wildcard_errors() {
        assert!(run("select z.* from games g").is_err());
    }

    #[test]
    fn conf_on_certain_input_is_one() {
        let r = certain("select player, conf() as p from games group by player");
        for t in r.tuples() {
            assert_eq!(t.value(1), &Value::Float(1.0));
        }
    }

    #[test]
    fn extra_group_by_columns_not_in_select() {
        // Grouping by (player, team) but selecting only player: Bryant's
        // two games share a team, so two groups collapse into one row key
        // appearing once... player appears once per (player, team) group.
        let r = certain("select player, count(*) as n from games group by player, team");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn three_way_join_chain_uses_hash_joins() {
        // joined via two equality conjuncts across three sources.
        let r = certain(
            "select a.player from games a, games b, teams t
             where a.player = b.player and a.team = t.team and a.pts > b.pts",
        );
        assert_eq!(r.len(), 1); // Bryant 40 > Bryant 30
    }

    #[test]
    fn query_output_helpers() {
        let out = run("select * from games").unwrap();
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        assert!(out.as_certain().is_some());
        let u = out.into_urelation();
        assert!(u.is_t_certain());
    }

    #[test]
    fn order_by_on_uncertain_representation() {
        let (catalog, mut wt) = fixture();
        let mut ctx = ExecCtx::new(&catalog, &mut wt, ConfContext::default());
        let q = parse_query(
            "select * from (pick tuples from games) p order by pts desc",
        )
        .unwrap();
        let QueryOutput::Uncertain(u) = eval_query(&q, &mut ctx).unwrap() else {
            panic!("expected uncertain output")
        };
        let pts: Vec<i64> = u
            .tuples()
            .iter()
            .map(|t| t.data.value(2).as_int().unwrap())
            .collect();
        assert_eq!(pts, vec![40, 30, 25]);
    }

    #[test]
    fn in_select_against_uncertain_subquery() {
        // Positive IN over an uncertain subquery: rewrites to a join; the
        // result is uncertain (conditions ride along).
        let (catalog, mut wt) = fixture();
        let mut ctx = ExecCtx::new(&catalog, &mut wt, ConfContext::default());
        let q = parse_query(
            "select player from games where team in
               (select team from (pick tuples from teams) pt)",
        )
        .unwrap();
        let QueryOutput::Uncertain(u) = eval_query(&q, &mut ctx).unwrap() else {
            panic!("expected uncertain output")
        };
        assert_eq!(u.len(), 3);
        assert!(u.tuples().iter().all(|t| !t.wsd.is_tautology()));
    }
}
