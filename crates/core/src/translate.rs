//! Translation from the SQL AST (`maybms-sql`) to engine expressions, plus
//! classification of select items into plain expressions and the MayBMS
//! aggregates (§2.2).

use maybms_engine::{BinaryOp, DataType, Expr as EExpr, UnaryOp, Value};
use maybms_sql::{BinOp, Expr as SExpr, Lit};

use crate::error::{plan_err, unsupported, Result};

/// Map a SQL type name to an engine data type.
pub fn data_type_of(type_name: &str) -> Result<DataType> {
    let t = type_name.to_ascii_lowercase();
    Ok(match t.as_str() {
        "bigint" | "int" | "integer" | "smallint" | "int8" | "int4" => DataType::Int,
        "double precision" | "double" | "float" | "float8" | "real" | "numeric"
        | "decimal" => DataType::Float,
        "text" | "varchar" | "char" | "character varying" | "string" => DataType::Text,
        "boolean" | "bool" => DataType::Bool,
        other => return Err(unsupported(format!("unknown type name `{other}`"))),
    })
}

/// Translate a literal.
pub fn value_of(lit: &Lit) -> Result<Value> {
    Ok(match lit {
        Lit::Null => Value::Null,
        Lit::Bool(b) => Value::Bool(*b),
        Lit::Int(i) => Value::Int(*i),
        Lit::Float(x) => Value::float(*x).map_err(crate::error::CoreError::Engine)?,
        Lit::Str(s) => Value::str(s),
    })
}

fn binop_of(op: BinOp) -> BinaryOp {
    match op {
        BinOp::Add => BinaryOp::Add,
        BinOp::Sub => BinaryOp::Sub,
        BinOp::Mul => BinaryOp::Mul,
        BinOp::Div => BinaryOp::Div,
        BinOp::Mod => BinaryOp::Mod,
        BinOp::Eq => BinaryOp::Eq,
        BinOp::NotEq => BinaryOp::NotEq,
        BinOp::Lt => BinaryOp::Lt,
        BinOp::LtEq => BinaryOp::LtEq,
        BinOp::Gt => BinaryOp::Gt,
        BinOp::GtEq => BinaryOp::GtEq,
        BinOp::And => BinaryOp::And,
        BinOp::Or => BinaryOp::Or,
        BinOp::Concat => BinaryOp::Concat,
    }
}

/// Translate a *scalar* SQL expression to an engine expression. Function
/// calls and IN-subqueries are rejected here — aggregates are handled at
/// the select-item level and IN-subqueries by the executor's rewrite.
pub fn scalar(e: &SExpr) -> Result<EExpr> {
    Ok(match e {
        SExpr::Ident { qualifier, name } => EExpr::Column {
            qualifier: qualifier.clone(),
            name: name.clone(),
        },
        SExpr::Lit(l) => EExpr::Literal(value_of(l)?),
        SExpr::Binary { left, op, right } => EExpr::Binary {
            left: Box::new(scalar(left)?),
            op: binop_of(*op),
            right: Box::new(scalar(right)?),
        },
        SExpr::Not(x) => EExpr::Unary { op: UnaryOp::Not, expr: Box::new(scalar(x)?) },
        SExpr::Neg(x) => EExpr::Unary { op: UnaryOp::Neg, expr: Box::new(scalar(x)?) },
        SExpr::IsNull { expr, negated } => EExpr::IsNull {
            expr: Box::new(scalar(expr)?),
            negated: *negated,
        },
        SExpr::InList { expr, list, negated } => EExpr::InList {
            expr: Box::new(scalar(expr)?),
            list: list.iter().map(scalar).collect::<Result<_>>()?,
            negated: *negated,
        },
        SExpr::InSelect { .. } => {
            return Err(plan_err(
                "IN (SELECT …) may only appear as a top-level positive conjunct of WHERE",
            ))
        }
        SExpr::Case { branches, else_expr } => EExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| Ok((scalar(c)?, scalar(r)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(x) => Some(Box::new(scalar(x)?)),
                None => None,
            },
        },
        SExpr::Cast { expr, type_name } => EExpr::Cast {
            expr: Box::new(scalar(expr)?),
            dtype: data_type_of(type_name)?,
        },
        SExpr::Func { name, .. } => {
            return Err(plan_err(format!(
                "aggregate or function `{name}` is not allowed in a scalar context"
            )))
        }
    })
}

/// The MayBMS aggregates (§2.2) plus standard SQL aggregates.
#[derive(Debug, Clone)]
pub enum AggSpec {
    /// `conf()` — exact confidence of each group (t-certain output).
    Conf,
    /// `aconf(ε, δ)` — (ε, δ)-approximate confidence.
    AConf {
        /// Relative error bound.
        epsilon: f64,
        /// Failure probability.
        delta: f64,
    },
    /// `tconf()` — per-tuple marginal probability (not grouped).
    TConf,
    /// `esum(expr)` — expected sum, by linearity of expectation.
    ESum(EExpr),
    /// `ecount()` / `ecount(expr)` — expected count.
    ECount(Option<EExpr>),
    /// `argmax(arg, value)` — all arg values attaining the group maximum.
    ArgMax {
        /// Output expression.
        arg: EExpr,
        /// Ranked expression.
        value: EExpr,
    },
    /// Standard SQL aggregate (t-certain input only): sum/count/avg/min/max.
    Std {
        /// Which function.
        func: maybms_engine::ops::AggFunc,
        /// Argument (`None` = `count(*)`).
        arg: Option<EExpr>,
    },
}

/// A classified select item: either a scalar expression or an aggregate.
#[derive(Debug, Clone)]
pub enum Item {
    /// Plain expression (must be matched by GROUP BY when aggregating).
    Scalar {
        /// The translated expression.
        expr: EExpr,
        /// Output name.
        name: String,
    },
    /// Aggregate call.
    Agg {
        /// The aggregate.
        spec: AggSpec,
        /// Output name.
        name: String,
    },
}

/// Classify one select item. `default_name` feeds unnamed expressions.
pub fn classify_item(expr: &SExpr, alias: Option<&str>, position: usize) -> Result<Item> {
    if let SExpr::Func { name, args, star } = expr {
        let lname = name.to_ascii_lowercase();
        let out_name =
            alias.map(str::to_string).unwrap_or_else(|| lname.clone());
        let float_arg = |e: &SExpr, what: &str| -> Result<f64> {
            match e {
                SExpr::Lit(Lit::Float(x)) => Ok(*x),
                SExpr::Lit(Lit::Int(i)) => Ok(*i as f64),
                _ => Err(plan_err(format!("{what} expects a numeric literal"))),
            }
        };
        let spec = match lname.as_str() {
            "conf" => {
                if !args.is_empty() || *star {
                    return Err(plan_err("conf() takes no arguments"));
                }
                AggSpec::Conf
            }
            "aconf" => {
                if args.len() != 2 {
                    return Err(plan_err("aconf(epsilon, delta) takes two arguments"));
                }
                AggSpec::AConf {
                    epsilon: float_arg(&args[0], "aconf epsilon")?,
                    delta: float_arg(&args[1], "aconf delta")?,
                }
            }
            "tconf" => {
                if !args.is_empty() || *star {
                    return Err(plan_err("tconf() takes no arguments"));
                }
                AggSpec::TConf
            }
            "esum" => {
                if args.len() != 1 {
                    return Err(plan_err("esum(expr) takes one argument"));
                }
                AggSpec::ESum(scalar(&args[0])?)
            }
            "ecount" => match args.len() {
                0 => AggSpec::ECount(None),
                1 => AggSpec::ECount(Some(scalar(&args[0])?)),
                _ => return Err(plan_err("ecount([expr]) takes at most one argument")),
            },
            "argmax" => {
                if args.len() != 2 {
                    return Err(plan_err("argmax(arg, value) takes two arguments"));
                }
                AggSpec::ArgMax { arg: scalar(&args[0])?, value: scalar(&args[1])? }
            }
            "sum" | "count" | "avg" | "min" | "max" => {
                use maybms_engine::ops::AggFunc;
                let func = match lname.as_str() {
                    "sum" => AggFunc::Sum,
                    "count" => AggFunc::Count,
                    "avg" => AggFunc::Avg,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    _ => unreachable!(),
                };
                let arg = if *star {
                    if lname != "count" {
                        return Err(plan_err(format!("{lname}(*) is not valid")));
                    }
                    None
                } else if args.is_empty() {
                    if lname == "count" {
                        None
                    } else {
                        return Err(plan_err(format!("{lname}() requires an argument")));
                    }
                } else if args.len() == 1 {
                    Some(scalar(&args[0])?)
                } else {
                    return Err(plan_err(format!("{lname}() takes one argument")));
                };
                AggSpec::Std { func, arg }
            }
            other => {
                return Err(unsupported(format!("unknown function `{other}`")));
            }
        };
        return Ok(Item::Agg { spec, name: out_name });
    }
    // Scalar item: derive a name.
    let name = alias.map(str::to_string).unwrap_or_else(|| match expr {
        SExpr::Ident { name, .. } => name.clone(),
        _ => format!("column{}", position + 1),
    });
    Ok(Item::Scalar { expr: scalar(expr)?, name })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_sql::parse_expr;

    #[test]
    fn scalar_translation_basics() {
        let e = scalar(&parse_expr("r1.p * 2 + 1").unwrap()).unwrap();
        assert_eq!(e.to_string(), "((r1.p * 2) + 1)");
        let e = scalar(&parse_expr("x is not null and y in (1, 2)").unwrap()).unwrap();
        assert_eq!(e.to_string(), "((x IS NOT NULL) AND (y IN (1, 2)))");
    }

    #[test]
    fn type_names() {
        assert_eq!(data_type_of("bigint").unwrap(), DataType::Int);
        assert_eq!(data_type_of("DOUBLE PRECISION").unwrap(), DataType::Float);
        assert_eq!(data_type_of("text").unwrap(), DataType::Text);
        assert!(data_type_of("jsonb").is_err());
    }

    #[test]
    fn classify_conf_and_aconf() {
        let item = classify_item(&parse_expr("conf()").unwrap(), Some("p"), 0).unwrap();
        assert!(matches!(item, Item::Agg { spec: AggSpec::Conf, ref name } if name == "p"));
        let item = classify_item(&parse_expr("aconf(0.1, 0.05)").unwrap(), None, 0).unwrap();
        match item {
            Item::Agg { spec: AggSpec::AConf { epsilon, delta }, name } => {
                assert_eq!(epsilon, 0.1);
                assert_eq!(delta, 0.05);
                assert_eq!(name, "aconf");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn classify_expectation_aggregates() {
        assert!(matches!(
            classify_item(&parse_expr("esum(salary)").unwrap(), None, 0).unwrap(),
            Item::Agg { spec: AggSpec::ESum(_), .. }
        ));
        assert!(matches!(
            classify_item(&parse_expr("ecount()").unwrap(), None, 0).unwrap(),
            Item::Agg { spec: AggSpec::ECount(None), .. }
        ));
    }

    #[test]
    fn classify_std_aggregates_and_count_star() {
        assert!(matches!(
            classify_item(&parse_expr("count(*)").unwrap(), None, 0).unwrap(),
            Item::Agg { spec: AggSpec::Std { arg: None, .. }, .. }
        ));
        assert!(classify_item(&parse_expr("sum(*)").unwrap(), None, 0).is_err());
        assert!(classify_item(&parse_expr("sum()").unwrap(), None, 0).is_err());
    }

    #[test]
    fn bad_aggregate_arguments_rejected() {
        assert!(classify_item(&parse_expr("conf(1)").unwrap(), None, 0).is_err());
        assert!(classify_item(&parse_expr("aconf(0.1)").unwrap(), None, 0).is_err());
        assert!(classify_item(&parse_expr("aconf(x, 0.1)").unwrap(), None, 0).is_err());
        assert!(classify_item(&parse_expr("argmax(a)").unwrap(), None, 0).is_err());
        assert!(classify_item(&parse_expr("frobnicate(x)").unwrap(), None, 0).is_err());
    }

    #[test]
    fn scalar_rejects_nested_aggregates() {
        assert!(scalar(&parse_expr("conf() + 1").unwrap()).is_err());
    }

    #[test]
    fn default_names() {
        let item = classify_item(&parse_expr("a + 1").unwrap(), None, 2).unwrap();
        assert!(matches!(item, Item::Scalar { ref name, .. } if name == "column3"));
        let item = classify_item(&parse_expr("player").unwrap(), None, 0).unwrap();
        assert!(matches!(item, Item::Scalar { ref name, .. } if name == "player"));
    }
}
