//! Acceptance: a kernel-eligible σ/π chain over a columnar-at-rest base
//! table runs end-to-end with ZERO row→column pivots — the scan hands
//! the vectorised prefix borrowed column slices straight out of the
//! stored `ColumnBatch` — and both EXPLAIN and EXPLAIN ANALYZE mark the
//! scan as columnar.
//!
//! One test function, in its own integration-test binary: the pivot
//! counters are process-global, so nothing else may pivot between the
//! snapshot and the assertion.

use maybms_core::{MayBms, StatementResult};
use maybms_engine::{rel, DataType, Value};

#[test]
fn kernel_eligible_scan_is_zero_pivot_and_marked_in_explain() {
    if !maybms_engine::columnar_store_default() {
        // Legacy row-store leg (MAYBMS_COLUMNAR_STORE=0): scans pivot
        // per-morsel by design; the zero-pivot contract doesn't apply.
        return;
    }
    let mut db = MayBms::new();
    let rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::str(format!("p{}", i % 7)),
                (i % 50).into(),
                Value::Float(i as f64 / 10.0),
            ]
        })
        .collect();
    db.register(
        "games",
        rel(
            &[
                ("player", DataType::Text),
                ("pts", DataType::Int),
                ("mins", DataType::Float),
            ],
            rows,
        ),
    )
    .unwrap();
    // Registration installed the table columnar-at-rest (that was the
    // one pivot this data ever pays). From here on: zero.
    assert!(db.table("games").unwrap().is_columnar());
    let m = maybms_obs::metrics();
    let pivots_before = m.pivots.get();
    let pivot_rows_before = m.pivot_rows.get();

    let r = db
        .query("select player, pts from games where pts > 25 and mins < 90.0")
        .unwrap();
    assert_eq!(r.len(), (0..1000).filter(|i| i % 50 > 25 && (i / 10) < 90).count());

    assert_eq!(
        m.pivots.get(),
        pivots_before,
        "kernel-eligible σ/π chain over a columnar base table must not pivot"
    );
    assert_eq!(m.pivot_rows.get(), pivot_rows_before);

    // The scan advertises the zero-pivot path in both EXPLAIN flavours.
    let StatementResult::Ok { message: plain } = db
        .run("explain select player, pts from games where pts > 25")
        .unwrap()
    else {
        panic!("EXPLAIN must return a message")
    };
    assert!(plain.contains("(columnar, zero-pivot)"), "{plain}");
    let StatementResult::Ok { message: analyzed } = db
        .run("explain analyze select player, pts from games where pts > 25")
        .unwrap()
    else {
        panic!("EXPLAIN ANALYZE must return a message")
    };
    assert!(analyzed.contains("(columnar, zero-pivot)"), "{analyzed}");

    // EXPLAIN ANALYZE executed the query — still not a single pivot.
    assert_eq!(m.pivots.get(), pivots_before);
}
