//! Catalog-level property: the columnar-at-rest store is invisible.
//!
//! Random DML sequences (INSERT / UPDATE / DELETE / CREATE TABLE AS)
//! drive a live `MayBms` catalog — whose tables sit columnar-at-rest
//! with dictionary-encoded text under the default gate — while the same
//! sequence is applied to a plain row-major oracle `Vec`. After every
//! statement the stored table must match the oracle **by variant and
//! bit**: an `Int` must come back `Int` (never a numerically-equal
//! `Float`), floats must round-trip to the exact bit pattern, and NULLs
//! must stay NULL. A final query runs on 1-, 2-, and 8-thread pools and
//! must be bit-identical across all three.

use maybms_core::MayBms;
use maybms_engine::Value;
use proptest::prelude::*;

/// One generated statement, with enough structure to mirror it onto the
/// oracle without re-implementing SQL.
#[derive(Debug, Clone)]
enum Dml {
    /// `insert into t values (s, n, f)`.
    Insert(Option<&'static str>, Option<i64>, Option<i64>),
    /// `update t set n = c where n > k`.
    Update(i64, i64),
    /// `delete from t where n < k`.
    Delete(i64),
    /// `create table uN as select * from t where n >= k`.
    Ctas(i64),
}

fn arb_dml() -> impl Strategy<Value = Dml> {
    let key = prop::option::of(prop::sample::select(vec!["a", "b", "c"]));
    prop_oneof![
        (key, prop::option::of(0i64..6), prop::option::of(0i64..8))
            .prop_map(|(s, n, f)| Dml::Insert(s, n, f)),
        (0i64..6, 0i64..6).prop_map(|(c, k)| Dml::Update(c, k)),
        (0i64..6).prop_map(Dml::Delete),
        (0i64..6).prop_map(Dml::Ctas),
    ]
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("'{s}'"),
        Value::Bool(b) => b.to_string(),
    }
}

/// Variant- and bit-exact comparison: `Int(1)` ≠ `Float(1.0)` here even
/// though SQL comparison calls them equal, and floats compare by bits.
fn assert_cell(got: &Value, want: &Value, ctx: &str) {
    match (got, want) {
        (Value::Float(a), Value::Float(b)) => {
            assert_eq!(a.to_bits(), b.to_bits(), "float bits, {ctx}")
        }
        (a, b) => assert_eq!(
            std::mem::discriminant(a),
            std::mem::discriminant(b),
            "variant, {ctx}: {a:?} vs {b:?}"
        ),
    }
    assert_eq!(got, want, "{ctx}");
}

fn check_table(db: &MayBms, name: &str, oracle: &[Vec<Value>], ctx: &str) {
    let table = db.table(name).unwrap();
    let got = table.tuples();
    assert_eq!(got.len(), oracle.len(), "row count of {name}, {ctx}");
    for (i, (g, w)) in got.iter().zip(oracle).enumerate() {
        assert_eq!(g.data.arity(), w.len());
        for (c, (gv, wv)) in g.data.values().iter().zip(w).enumerate() {
            assert_cell(gv, wv, &format!("{name}[{i}][{c}], {ctx}"));
        }
    }
}

fn as_int(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dml_on_columnar_store_matches_row_oracle(ops in prop::collection::vec(arb_dml(), 0..12)) {
        let mut db = MayBms::new();
        db.run("create table t (s text, n int, f float)").unwrap();
        let mut oracle: Vec<Vec<Value>> = Vec::new();
        let mut ctas: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Dml::Insert(s, n, f) => {
                    let row = vec![
                        s.map_or(Value::Null, Value::str),
                        n.map_or(Value::Null, Value::Int),
                        // Halves are exactly representable, so the SQL
                        // literal round-trips bit-exactly.
                        f.map_or(Value::Null, |x| Value::Float(x as f64 / 2.0)),
                    ];
                    let lits: Vec<String> = row.iter().map(sql_literal).collect();
                    db.run(&format!("insert into t values ({})", lits.join(", ")))
                        .unwrap();
                    oracle.push(row);
                }
                Dml::Update(c, k) => {
                    db.run(&format!("update t set n = {c} where n > {k}")).unwrap();
                    for row in &mut oracle {
                        if as_int(&row[1]).is_some_and(|n| n > *k) {
                            row[1] = Value::Int(*c);
                        }
                    }
                }
                Dml::Delete(k) => {
                    db.run(&format!("delete from t where n < {k}")).unwrap();
                    oracle.retain(|row| as_int(&row[1]).is_none_or(|n| n >= *k));
                }
                Dml::Ctas(k) => {
                    let name = format!("u{i}");
                    db.run(&format!(
                        "create table {name} as select * from t where n >= {k}"
                    ))
                    .unwrap();
                    let snap: Vec<Vec<Value>> = oracle
                        .iter()
                        .filter(|row| as_int(&row[1]).is_some_and(|n| n >= *k))
                        .cloned()
                        .collect();
                    ctas.push((name, snap));
                }
            }
            check_table(&db, "t", &oracle, &format!("after op {i} ({op:?})"));
        }
        for (name, snap) in &ctas {
            check_table(&db, name, snap, "final");
        }
        // The same query must come back bit-identical at 1/2/8 threads.
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            maybms_par::set_threads(threads);
            let r = db
                .query("select s, count(*) as n, sum(f) as sf from t group by s")
                .unwrap();
            results.push((threads, r));
        }
        for w in results.windows(2) {
            let (ta, a) = &w[0];
            let (tb, b) = &w[1];
            prop_assert_eq!(a.tuples(), b.tuples(), "threads {} vs {}", ta, tb);
        }
    }
}
