//! Possible-worlds semantics as an executable oracle.
//!
//! A U-relational database represents a finite set of possible worlds
//! (§2.1). These helpers *enumerate* that set — exponential by design —
//! so tests can compare the fast representation-level operators against
//! ground truth.

use std::collections::HashMap;

use maybms_engine::{Relation, Tuple};

use crate::error::Result;
use crate::urelation::URelation;
use crate::world_table::WorldTable;

/// Default cap on oracle enumeration.
pub const DEFAULT_WORLD_LIMIT: u128 = 1 << 20;

/// For each world: instantiate `u` and pass the certain relation to `f`,
/// accumulating `(result, world probability)`.
pub fn map_worlds<T>(
    wt: &WorldTable,
    u: &URelation,
    limit: u128,
    mut f: impl FnMut(&Relation) -> T,
) -> Result<Vec<(T, f64)>> {
    let mut out = Vec::new();
    for (world, p) in wt.enumerate_worlds(limit)? {
        out.push((f(&u.instantiate(&world)), p));
    }
    Ok(out)
}

/// Ground-truth marginal probability that `tuple` appears (at least once)
/// in `u`, by world enumeration.
pub fn tuple_marginal(
    wt: &WorldTable,
    u: &URelation,
    tuple: &Tuple,
    limit: u128,
) -> Result<f64> {
    let mut p = 0.0;
    for (world, wp) in wt.enumerate_worlds(limit)? {
        if u.instantiate(&world).tuples().contains(tuple) {
            p += wp;
        }
    }
    Ok(p)
}

/// Ground-truth distribution over distinct result tuples: for every tuple
/// possible in some world, the total probability of the worlds containing
/// it. This is exactly what `conf()` must compute (§2.2, construct 1).
pub fn tuple_distribution(
    wt: &WorldTable,
    u: &URelation,
    limit: u128,
) -> Result<HashMap<Tuple, f64>> {
    let mut dist: HashMap<Tuple, f64> = HashMap::new();
    for (world, wp) in wt.enumerate_worlds(limit)? {
        let inst = u.instantiate(&world);
        let mut seen = std::collections::HashSet::new();
        for t in inst.tuples() {
            if seen.insert(t.clone()) {
                *dist.entry(t.clone()).or_insert(0.0) += wp;
            }
        }
    }
    Ok(dist)
}

/// Ground-truth expected value of a per-world scalar (e.g. a sum or count),
/// by enumeration.
pub fn expectation(
    wt: &WorldTable,
    u: &URelation,
    limit: u128,
    f: impl Fn(&Relation) -> f64,
) -> Result<f64> {
    let mut e = 0.0;
    for (world, wp) in wt.enumerate_worlds(limit)? {
        e += wp * f(&u.instantiate(&world));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pick::{pick_tuples, PickTuplesOptions};
    use crate::repair::{repair_key, RepairKeyOptions};
    use maybms_engine::{rel, DataType, Expr, Value};

    #[test]
    fn tuple_marginal_on_pick_tuples() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.3)],
                vec![2.into(), Value::Float(0.6)],
            ],
        );
        let u = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        let t = Tuple::new(vec![1.into(), Value::Float(0.3)]);
        let p = tuple_marginal(&wt, &u, &t, 100).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tuple_distribution_sums_group_masses() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int)],
            vec![vec![1.into()], vec![1.into()], vec![2.into()]],
        );
        let u = repair_key(&r, &[Expr::col("k")], &RepairKeyOptions::default(), &mut wt)
            .unwrap();
        let dist = tuple_distribution(&wt, &u, 100).unwrap();
        // Key 2's single tuple is certain; key 1's duplicates: the two
        // alternatives are the *same* tuple value (1), so tuple (1) appears
        // in every world.
        assert!((dist[&Tuple::new(vec![2.into()])] - 1.0).abs() < 1e-12);
        assert!((dist[&Tuple::new(vec![1.into()])] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_count() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.5)],
                vec![2.into(), Value::Float(0.5)],
            ],
        );
        let u = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        let e = expectation(&wt, &u, 100, |rel| rel.len() as f64).unwrap();
        assert!((e - 1.0).abs() < 1e-12); // E[count] = 0.5 + 0.5
    }

    #[test]
    fn map_worlds_probabilities_sum_to_one() {
        let mut wt = WorldTable::new();
        wt.new_var(&[0.25, 0.75]).unwrap();
        let u = URelation::from_certain(&rel(&[("x", DataType::Int)], vec![]));
        let rs = map_worlds(&wt, &u, 100, |r| r.len()).unwrap();
        let total: f64 = rs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
