//! `repair key` (§2.2, construct 2): the hypothesis-space generator.
//!
//! Conceptually, `repair key K in R` "nondeterministically chooses a
//! maximal repair of key K in R": it removes a minimal set of tuples so
//! that K becomes a key, and each way of doing so is one possible world.
//! Operationally (Figure 1): group `R` by `K`; for each group introduce a
//! fresh random variable whose alternatives are the group's tuples, with
//! probabilities proportional to the `weight by` expression (uniform when
//! absent); emit every tuple conditioned on its `(variable ↦ alternative)`
//! pair. Choices of different groups are pairwise independent; the
//! alternatives within a group are mutually exclusive.

use maybms_engine::ops::group_indices;
use maybms_engine::{Expr, Relation, Value};

use crate::error::{Result, UrelError};
use crate::urelation::{URelation, UTuple};
use crate::world_table::WorldTable;
use crate::wsd::Wsd;

/// Options for [`repair_key`].
#[derive(Debug, Clone, Default)]
pub struct RepairKeyOptions {
    /// `weight by` expression (evaluated per input tuple); `None` = uniform.
    pub weight: Option<Expr>,
}

/// Apply `repair key` to a certain relation, registering fresh variables in
/// `wt`. `key_exprs` are the key attributes (any scalar expressions over
/// the input are accepted, matching `repair key <attributes>`).
///
/// Tuples with weight 0 are possible in *no* repair and are dropped.
/// Negative, NaN, or non-numeric weights are errors, as is a group whose
/// weights sum to 0.
///
/// The output schema equals the input schema (Figure 1: `R2` has the same
/// data columns as `FT`, plus conditions).
pub fn repair_key(
    input: &Relation,
    key_exprs: &[Expr],
    options: &RepairKeyOptions,
    wt: &mut WorldTable,
) -> Result<URelation> {
    // Evaluate weights up front.
    let weights: Vec<f64> = match &options.weight {
        None => vec![1.0; input.len()],
        Some(w) => {
            let bound = w.bind(input.schema())?;
            let mut ws = Vec::with_capacity(input.len());
            for t in input.tuples() {
                let v = bound.eval(t)?;
                let x = v.as_f64().ok_or_else(|| UrelError::BadWeight {
                    message: format!("weight expression produced non-numeric value {v}"),
                })?;
                if !x.is_finite() || x < 0.0 {
                    return Err(UrelError::BadWeight {
                        message: format!("weight {x} is negative or not finite"),
                    });
                }
                ws.push(x);
            }
            ws
        }
    };

    let groups = group_indices(input, key_exprs)?;
    let mut out = Vec::with_capacity(input.len());
    // Scratch buffers reused across groups (no per-group allocation).
    let mut alive: Vec<usize> = Vec::new();
    let mut probs: Vec<f64> = Vec::new();
    for (_key, indices) in groups {
        // Keep only alternatives with positive weight.
        alive.clear();
        alive.extend(indices.iter().copied().filter(|&i| weights[i] > 0.0));
        if alive.is_empty() {
            if indices.is_empty() {
                continue;
            }
            return Err(UrelError::BadWeight {
                message: "all weights in a repair-key group are zero".into(),
            });
        }
        if alive.len() == 1 {
            // A single alternative is chosen with probability 1: the tuple
            // stays certain and no variable is spent.
            out.push(UTuple::certain(input.tuples()[alive[0]].clone()));
            continue;
        }
        let total: f64 = alive.iter().map(|&i| weights[i]).sum();
        probs.clear();
        probs.extend(alive.iter().map(|&i| weights[i] / total));
        let var = wt.new_var(&probs)?;
        for (alt, &i) in alive.iter().enumerate() {
            out.push(UTuple::new(input.tuples()[i].clone(), Wsd::of(var, alt as u16)));
        }
    }
    Ok(URelation::new(input.schema().clone(), out))
}

/// Convenience: `repair key` over a U-relation input, enforcing the
/// language's typing rule that the input must be t-certain (§2.2 maps
/// t-certain → uncertain).
pub fn repair_key_u(
    input: &URelation,
    key_exprs: &[Expr],
    options: &RepairKeyOptions,
    wt: &mut WorldTable,
) -> Result<URelation> {
    if !input.is_t_certain() {
        return Err(UrelError::NotTCertain { operation: "repair key".into() });
    }
    let certain = Relation::new_unchecked(
        input.schema().clone(),
        input.tuples().iter().map(|t| t.data.clone()).collect(),
    );
    repair_key(&certain, key_exprs, options, wt)
}

/// Total probability mass a value carries in a column of a U-relation
/// (test helper for distribution checks).
pub fn column_mass(u: &URelation, col: usize, value: &Value, wt: &WorldTable) -> f64 {
    u.tuples()
        .iter()
        .filter(|t| t.data.value(col) == value)
        .map(|t| t.wsd.prob(wt).unwrap_or(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType};

    /// The paper's FT fragment for Bryant (Figure 1).
    fn ft_bryant() -> Relation {
        rel(
            &[
                ("player", DataType::Text),
                ("init", DataType::Text),
                ("final", DataType::Text),
                ("p", DataType::Float),
            ],
            vec![
                vec!["Bryant".into(), "F".into(), "F".into(), Value::Float(0.8)],
                vec!["Bryant".into(), "F".into(), "SE".into(), Value::Float(0.05)],
                vec!["Bryant".into(), "F".into(), "SL".into(), Value::Float(0.15)],
                vec!["Bryant".into(), "SE".into(), "F".into(), Value::Float(0.1)],
                vec!["Bryant".into(), "SE".into(), "SE".into(), Value::Float(0.6)],
                vec!["Bryant".into(), "SE".into(), "SL".into(), Value::Float(0.3)],
                vec!["Bryant".into(), "SL".into(), "F".into(), Value::Float(0.8)],
                vec!["Bryant".into(), "SL".into(), "SL".into(), Value::Float(0.2)],
            ],
        )
    }

    #[test]
    fn figure1_r2_shape() {
        // repair key Player, Init in FT weight by p  →  Figure 1's R2.
        let mut wt = WorldTable::new();
        let r2 = repair_key(
            &ft_bryant(),
            &[Expr::col("player"), Expr::col("init")],
            &RepairKeyOptions { weight: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        // Three groups (F, SE, SL) → three variables x, y, z.
        assert_eq!(wt.num_vars(), 3);
        assert_eq!(r2.len(), 8);
        // Group F: probabilities 0.8 / 0.05 / 0.15 as printed in Figure 1.
        let p: Vec<f64> =
            r2.tuples()[..3].iter().map(|t| t.wsd.prob(&wt).unwrap()).collect();
        assert!((p[0] - 0.8).abs() < 1e-12);
        assert!((p[1] - 0.05).abs() < 1e-12);
        assert!((p[2] - 0.15).abs() < 1e-12);
        // Alternatives within a group are mutually exclusive: same var.
        let vars: Vec<_> = r2.tuples()[..3].iter().map(|t| t.wsd.assignments()[0].var).collect();
        assert_eq!(vars[0], vars[1]);
        assert_eq!(vars[1], vars[2]);
        // Different groups use different (independent) variables.
        let v_f = r2.tuples()[0].wsd.assignments()[0].var;
        let v_se = r2.tuples()[3].wsd.assignments()[0].var;
        assert_ne!(v_f, v_se);
    }

    #[test]
    fn uniform_weights_when_absent() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("v", DataType::Int)],
            vec![
                vec![1.into(), 10.into()],
                vec![1.into(), 20.into()],
                vec![1.into(), 30.into()],
            ],
        );
        let out = repair_key(&r, &[Expr::col("k")], &RepairKeyOptions::default(), &mut wt)
            .unwrap();
        for t in out.tuples() {
            assert!((t.wsd.prob(&wt).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tuple_group_stays_certain() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int)],
            vec![vec![1.into()], vec![2.into()]],
        );
        let out =
            repair_key(&r, &[Expr::col("k")], &RepairKeyOptions::default(), &mut wt).unwrap();
        assert!(out.is_t_certain());
        assert_eq!(wt.num_vars(), 0);
    }

    #[test]
    fn empty_key_list_makes_one_group() {
        // repair key over no attributes: exactly one tuple survives per
        // world — a categorical choice over all tuples.
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int)],
            vec![vec![1.into()], vec![2.into()], vec![3.into()], vec![4.into()]],
        );
        let out = repair_key(&r, &[], &RepairKeyOptions::default(), &mut wt).unwrap();
        assert_eq!(wt.num_vars(), 1);
        assert_eq!(wt.domain_size(crate::var::Var(0)).unwrap(), 4);
        let total: f64 = out.tuples().iter().map(|t| t.wsd.prob(&wt).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_alternatives_dropped() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("w", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.0)],
                vec![1.into(), Value::Float(2.0)],
                vec![1.into(), Value::Float(6.0)],
            ],
        );
        let out = repair_key(
            &r,
            &[Expr::col("k")],
            &RepairKeyOptions { weight: Some(Expr::col("w")) },
            &mut wt,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let p: Vec<f64> = out.tuples().iter().map(|t| t.wsd.prob(&wt).unwrap()).collect();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn negative_weight_rejected() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("w", DataType::Float)],
            vec![vec![1.into(), Value::Float(-1.0)]],
        );
        let out = repair_key(
            &r,
            &[Expr::col("k")],
            &RepairKeyOptions { weight: Some(Expr::col("w")) },
            &mut wt,
        );
        assert!(matches!(out, Err(UrelError::BadWeight { .. })));
    }

    #[test]
    fn all_zero_group_rejected() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("w", DataType::Float)],
            vec![vec![1.into(), Value::Float(0.0)], vec![1.into(), Value::Float(0.0)]],
        );
        let out = repair_key(
            &r,
            &[Expr::col("k")],
            &RepairKeyOptions { weight: Some(Expr::col("w")) },
            &mut wt,
        );
        assert!(matches!(out, Err(UrelError::BadWeight { .. })));
    }

    #[test]
    fn non_numeric_weight_rejected() {
        let mut wt = WorldTable::new();
        let r = rel(&[("k", DataType::Text)], vec![vec!["a".into()]]);
        let out = repair_key(
            &r,
            &[],
            &RepairKeyOptions { weight: Some(Expr::col("k")) },
            &mut wt,
        );
        // single-tuple group short-circuits before weights matter... but
        // weights are evaluated up front, so the error still fires.
        assert!(matches!(out, Err(UrelError::BadWeight { .. })));
    }

    #[test]
    fn repair_key_u_requires_t_certain() {
        let mut wt = WorldTable::new();
        let r = rel(&[("k", DataType::Int)], vec![vec![1.into()], vec![1.into()]]);
        let mut u = URelation::from_certain(&r);
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        let out = repair_key_u(&u, &[Expr::col("k")], &RepairKeyOptions::default(), &mut wt);
        assert!(matches!(out, Err(UrelError::NotTCertain { .. })));
    }

    /// Semantics check against brute-force possible worlds: each world keeps
    /// exactly one tuple per key group, with the right joint probability.
    #[test]
    fn worlds_are_maximal_repairs_with_correct_probabilities() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("k", DataType::Int), ("w", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(1.0)],
                vec![1.into(), Value::Float(3.0)],
                vec![2.into(), Value::Float(1.0)],
                vec![2.into(), Value::Float(1.0)],
            ],
        );
        let out = repair_key(
            &r,
            &[Expr::col("k")],
            &RepairKeyOptions { weight: Some(Expr::col("w")) },
            &mut wt,
        )
        .unwrap();
        let mut seen = 0usize;
        for (world, p) in wt.enumerate_worlds(100).unwrap() {
            let inst = out.instantiate(&world);
            // Exactly one tuple per key group.
            assert_eq!(inst.len(), 2, "world {world:?}");
            seen += 1;
            assert!(p > 0.0);
        }
        assert_eq!(seen, 4); // 2 alternatives × 2 alternatives
    }
}
