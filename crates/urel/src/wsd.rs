//! World-set descriptors (WSDs): the per-tuple condition columns of a
//! U-relation.
//!
//! A WSD is a conjunction of variable assignments — "the special
//! conjunctions that can be stored with each tuple in U-relations" (§2.2).
//! A tuple is present exactly in the worlds satisfying its WSD. The empty
//! conjunction is the tautology (tuple certain); a conjunction mentioning
//! the same variable with two different alternatives is unsatisfiable and
//! is represented by [`Wsd::conjoin`] returning `None` — such tuples are
//! dropped by the join translation.

use std::fmt;

use crate::error::Result;
use crate::var::{Assignment, Var};
use crate::world_table::WorldTable;

/// A satisfiable conjunction of assignments over *distinct* variables,
/// sorted by variable id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Wsd(Vec<Assignment>);

impl Wsd {
    /// The empty conjunction (true in every world).
    pub fn tautology() -> Wsd {
        Wsd(Vec::new())
    }

    /// A single-assignment WSD.
    pub fn of(var: Var, alt: u16) -> Wsd {
        Wsd(vec![Assignment::new(var, alt)])
    }

    /// Build from assignments. Returns `None` when two assignments bind the
    /// same variable to different alternatives (unsatisfiable).
    pub fn from_assignments(mut assignments: Vec<Assignment>) -> Option<Wsd> {
        assignments.sort_unstable();
        assignments.dedup();
        for w in assignments.windows(2) {
            if w[0].var == w[1].var {
                return None; // same var, different alt (dedup removed equals)
            }
        }
        Some(Wsd(assignments))
    }

    /// The assignments, sorted by variable.
    pub fn assignments(&self) -> &[Assignment] {
        &self.0
    }

    /// True iff this is the tautology.
    pub fn is_tautology(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no assignments (same as [`Wsd::is_tautology`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.0.iter().map(|a| a.var)
    }

    /// The alternative this WSD binds `var` to, if any.
    pub fn get(&self, var: Var) -> Option<u16> {
        self.0
            .binary_search_by_key(&var, |a| a.var)
            .ok()
            .map(|i| self.0[i].alt)
    }

    /// Conjunction. `None` when the result is unsatisfiable — this is the
    /// workhorse of the join translation: joined tuples whose conditions
    /// conflict exist in no common world and are dropped.
    pub fn conjoin(&self, other: &Wsd) -> Option<Wsd> {
        let (a, b) = (&self.0, &other.0);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].var.cmp(&b[j].var) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a[i].alt != b[j].alt {
                        return None;
                    }
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(Wsd(out))
    }

    /// Probability of the conjunction: the product of the assignments'
    /// probabilities (variables are independent and distinct within a WSD).
    pub fn prob(&self, wt: &WorldTable) -> Result<f64> {
        let mut p = 1.0;
        for &a in &self.0 {
            p *= wt.prob(a)?;
        }
        Ok(p)
    }

    /// Whether a full world satisfies this conjunction.
    pub fn satisfied_by(&self, world: &[u16]) -> bool {
        self.0.iter().all(|a| world.get(a.var.0 as usize) == Some(&a.alt))
    }

    /// Condition on `var = alt`: `Some(reduced)` when compatible (with the
    /// binding removed), `None` when this WSD requires a different
    /// alternative. Used by the exact algorithm's variable elimination.
    pub fn condition(&self, var: Var, alt: u16) -> Option<Wsd> {
        match self.get(var) {
            None => Some(self.clone()),
            Some(a) if a == alt => {
                let reduced =
                    self.0.iter().copied().filter(|x| x.var != var).collect();
                Some(Wsd(reduced))
            }
            Some(_) => None,
        }
    }
}

impl fmt::Display for Wsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("⊤");
        }
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(v: u32, a: u16) -> Assignment {
        Assignment::new(Var(v), a)
    }

    #[test]
    fn from_assignments_sorts_and_dedups() {
        let w = Wsd::from_assignments(vec![asg(2, 1), asg(0, 3), asg(2, 1)]).unwrap();
        assert_eq!(w.assignments(), &[asg(0, 3), asg(2, 1)]);
    }

    #[test]
    fn from_assignments_detects_conflict() {
        assert!(Wsd::from_assignments(vec![asg(1, 0), asg(1, 1)]).is_none());
    }

    #[test]
    fn conjoin_merges_sorted() {
        let a = Wsd::from_assignments(vec![asg(0, 1), asg(2, 0)]).unwrap();
        let b = Wsd::from_assignments(vec![asg(1, 5), asg(2, 0)]).unwrap();
        let c = a.conjoin(&b).unwrap();
        assert_eq!(c.assignments(), &[asg(0, 1), asg(1, 5), asg(2, 0)]);
    }

    #[test]
    fn conjoin_conflict_is_none() {
        let a = Wsd::of(Var(3), 0);
        let b = Wsd::of(Var(3), 1);
        assert!(a.conjoin(&b).is_none());
    }

    #[test]
    fn conjoin_with_tautology_is_identity() {
        let a = Wsd::from_assignments(vec![asg(0, 1)]).unwrap();
        assert_eq!(a.conjoin(&Wsd::tautology()).unwrap(), a);
        assert_eq!(Wsd::tautology().conjoin(&a).unwrap(), a);
    }

    #[test]
    fn conjoin_is_commutative_and_idempotent() {
        let a = Wsd::from_assignments(vec![asg(0, 1), asg(4, 2)]).unwrap();
        let b = Wsd::from_assignments(vec![asg(2, 3)]).unwrap();
        assert_eq!(a.conjoin(&b), b.conjoin(&a));
        assert_eq!(a.conjoin(&a).unwrap(), a);
    }

    #[test]
    fn prob_is_product() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let w = Wsd::from_assignments(vec![
            Assignment::new(x, 1),
            Assignment::new(y, 0),
        ])
        .unwrap();
        assert!((w.prob(&wt).unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(Wsd::tautology().prob(&wt).unwrap(), 1.0);
    }

    #[test]
    fn satisfied_by_checks_all_assignments() {
        let w = Wsd::from_assignments(vec![asg(0, 1), asg(1, 0)]).unwrap();
        assert!(w.satisfied_by(&[1, 0]));
        assert!(!w.satisfied_by(&[1, 1]));
        assert!(Wsd::tautology().satisfied_by(&[9, 9]));
    }

    #[test]
    fn condition_reduces_or_kills() {
        let w = Wsd::from_assignments(vec![asg(0, 1), asg(1, 0)]).unwrap();
        // Compatible binding: assignment removed.
        let r = w.condition(Var(0), 1).unwrap();
        assert_eq!(r.assignments(), &[asg(1, 0)]);
        // Conflicting binding: clause dies.
        assert!(w.condition(Var(0), 2).is_none());
        // Unmentioned variable: unchanged.
        assert_eq!(w.condition(Var(7), 3).unwrap(), w);
    }

    #[test]
    fn get_binary_search() {
        let w = Wsd::from_assignments(vec![asg(2, 9), asg(5, 1)]).unwrap();
        assert_eq!(w.get(Var(2)), Some(9));
        assert_eq!(w.get(Var(5)), Some(1));
        assert_eq!(w.get(Var(3)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Wsd::tautology().to_string(), "⊤");
        let w = Wsd::of(Var(0), 0);
        assert_eq!(w.to_string(), "x0 ↦ 1");
    }
}
