//! World-set descriptors (WSDs): the per-tuple condition columns of a
//! U-relation.
//!
//! A WSD is a conjunction of variable assignments — "the special
//! conjunctions that can be stored with each tuple in U-relations" (§2.2).
//! A tuple is present exactly in the worlds satisfying its WSD. The empty
//! conjunction is the tautology (tuple certain); a conjunction mentioning
//! the same variable with two different alternatives is unsatisfiable and
//! is represented by [`Wsd::conjoin`] returning `None` — such tuples are
//! dropped by the join translation.
//!
//! # Representation (zero-clone execution core)
//!
//! The paper's point (§2.4) is that conditions are just "pairs of
//! integers" riding on relational tuples, and almost every WSD produced by
//! `repair key` / `pick tuples` and their joins holds **0–2** assignments.
//! [`Wsd`] therefore stores up to [`INLINE_WSD`] assignments inline
//! (no heap allocation at all) and spills to a `Vec` only beyond that.
//! Constructing, cloning, and conjoining the common small conjunctions is
//! allocation-free, which is what keeps per-output-row cost of the
//! U-relational join near the certain join's. The assignment list is
//! always sorted by variable id and mentions each variable at most once —
//! every constructor establishes this invariant, so `conjoin` can merge
//! linearly.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::Result;
use crate::var::{Assignment, Var};
use crate::world_table::WorldTable;

/// Number of assignments a [`Wsd`] stores without heap allocation.
pub const INLINE_WSD: usize = 2;

/// Padding value for unused inline slots (never observed through the
/// public API, which always bounds reads by `len`).
const PAD: Assignment = Assignment { var: Var(0), alt: 0 };

/// Inline-or-heap storage for the sorted assignment list.
#[derive(Clone)]
enum Repr {
    /// Up to [`INLINE_WSD`] assignments stored in place.
    Inline { len: u8, buf: [Assignment; INLINE_WSD] },
    /// Longer conjunctions spill to the heap.
    Heap(Vec<Assignment>),
}

/// A satisfiable conjunction of assignments over *distinct* variables,
/// sorted by variable id. Small conjunctions (the overwhelmingly common
/// case) are stored inline — see the module docs.
#[derive(Clone)]
pub struct Wsd(Repr);

impl Default for Wsd {
    fn default() -> Wsd {
        Wsd::tautology()
    }
}

// Equality/order/hash are over the logical assignment slice, independent
// of inline-vs-heap representation.
impl PartialEq for Wsd {
    fn eq(&self, other: &Wsd) -> bool {
        self.assignments() == other.assignments()
    }
}

impl Eq for Wsd {}

impl PartialOrd for Wsd {
    fn partial_cmp(&self, other: &Wsd) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Wsd {
    fn cmp(&self, other: &Wsd) -> std::cmp::Ordering {
        self.assignments().cmp(other.assignments())
    }
}

impl Hash for Wsd {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.assignments().hash(state);
    }
}

impl fmt::Debug for Wsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Wsd").field(&self.assignments()).finish()
    }
}

impl Wsd {
    /// The empty conjunction (true in every world).
    pub fn tautology() -> Wsd {
        Wsd(Repr::Inline { len: 0, buf: [PAD; INLINE_WSD] })
    }

    /// A single-assignment WSD (allocation-free).
    pub fn of(var: Var, alt: u16) -> Wsd {
        let mut buf = [PAD; INLINE_WSD];
        buf[0] = Assignment::new(var, alt);
        Wsd(Repr::Inline { len: 1, buf })
    }

    /// Build from a sorted, conflict-free assignment list (the invariant
    /// every public constructor establishes); inlines short lists.
    fn from_sorted(assignments: Vec<Assignment>) -> Wsd {
        if assignments.len() <= INLINE_WSD {
            let mut buf = [PAD; INLINE_WSD];
            buf[..assignments.len()].copy_from_slice(&assignments);
            Wsd(Repr::Inline { len: assignments.len() as u8, buf })
        } else {
            Wsd(Repr::Heap(assignments))
        }
    }

    /// Build from assignments. Returns `None` when two assignments bind the
    /// same variable to different alternatives (unsatisfiable).
    pub fn from_assignments(mut assignments: Vec<Assignment>) -> Option<Wsd> {
        assignments.sort_unstable();
        assignments.dedup();
        for w in assignments.windows(2) {
            if w[0].var == w[1].var {
                return None; // same var, different alt (dedup removed equals)
            }
        }
        Some(Wsd::from_sorted(assignments))
    }

    /// The assignments, sorted by variable.
    pub fn assignments(&self) -> &[Assignment] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// True iff this is the tautology.
    pub fn is_tautology(&self) -> bool {
        self.assignments().is_empty()
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.assignments().len()
    }

    /// True iff no assignments (same as [`Wsd::is_tautology`]).
    pub fn is_empty(&self) -> bool {
        self.assignments().is_empty()
    }

    /// The variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.assignments().iter().map(|a| a.var)
    }

    /// The alternative this WSD binds `var` to, if any.
    pub fn get(&self, var: Var) -> Option<u16> {
        let slice = self.assignments();
        slice
            .binary_search_by_key(&var, |a| a.var)
            .ok()
            .map(|i| slice[i].alt)
    }

    /// Conjunction. `None` when the result is unsatisfiable — this is the
    /// workhorse of the join translation: joined tuples whose conditions
    /// conflict exist in no common world and are dropped.
    ///
    /// Allocation-free whenever the result fits inline (both operands hold
    /// at most [`INLINE_WSD`] assignments combined — the common case for
    /// joins of `repair key` / `pick tuples` outputs).
    pub fn conjoin(&self, other: &Wsd) -> Option<Wsd> {
        let (a, b) = (self.assignments(), other.assignments());
        // Tautologies are identities; the clone below is an inline copy or
        // a cheap Vec clone, never a merge.
        if b.is_empty() {
            return Some(self.clone());
        }
        if a.is_empty() {
            return Some(other.clone());
        }
        if a.len() + b.len() <= INLINE_WSD {
            let mut buf = [PAD; INLINE_WSD];
            let len = merge_into(a, b, &mut buf)?;
            return Some(Wsd(Repr::Inline { len: len as u8, buf }));
        }
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].var.cmp(&b[j].var) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a[i].alt != b[j].alt {
                        return None;
                    }
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(Wsd::from_sorted(out))
    }

    /// Probability of the conjunction: the product of the assignments'
    /// probabilities (variables are independent and distinct within a WSD).
    pub fn prob(&self, wt: &WorldTable) -> Result<f64> {
        let mut p = 1.0;
        for &a in self.assignments() {
            p *= wt.prob(a)?;
        }
        Ok(p)
    }

    /// Whether a full world satisfies this conjunction.
    pub fn satisfied_by(&self, world: &[u16]) -> bool {
        self.assignments()
            .iter()
            .all(|a| world.get(a.var.0 as usize) == Some(&a.alt))
    }

    /// Condition on `var = alt`: `Some(reduced)` when compatible (with the
    /// binding removed), `None` when this WSD requires a different
    /// alternative. Used by the exact algorithm's variable elimination.
    pub fn condition(&self, var: Var, alt: u16) -> Option<Wsd> {
        match self.get(var) {
            None => Some(self.clone()),
            Some(a) if a == alt => {
                let reduced =
                    self.assignments().iter().copied().filter(|x| x.var != var).collect();
                Some(Wsd::from_sorted(reduced))
            }
            Some(_) => None,
        }
    }
}

/// Merge two sorted conflict-checked slices into `buf`; returns the merged
/// length or `None` on a variable conflict. Caller guarantees
/// `a.len() + b.len() <= buf.len()`.
fn merge_into(
    a: &[Assignment],
    b: &[Assignment],
    buf: &mut [Assignment; INLINE_WSD],
) -> Option<usize> {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].var.cmp(&b[j].var) {
            std::cmp::Ordering::Less => {
                buf[n] = a[i];
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                buf[n] = b[j];
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if a[i].alt != b[j].alt {
                    return None;
                }
                buf[n] = a[i];
                i += 1;
                j += 1;
            }
        }
        n += 1;
    }
    for &x in &a[i..] {
        buf[n] = x;
        n += 1;
    }
    for &x in &b[j..] {
        buf[n] = x;
        n += 1;
    }
    Some(n)
}

impl fmt::Display for Wsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tautology() {
            return f.write_str("⊤");
        }
        for (i, a) in self.assignments().iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(v: u32, a: u16) -> Assignment {
        Assignment::new(Var(v), a)
    }

    #[test]
    fn from_assignments_sorts_and_dedups() {
        let w = Wsd::from_assignments(vec![asg(2, 1), asg(0, 3), asg(2, 1)]).unwrap();
        assert_eq!(w.assignments(), &[asg(0, 3), asg(2, 1)]);
    }

    #[test]
    fn from_assignments_detects_conflict() {
        assert!(Wsd::from_assignments(vec![asg(1, 0), asg(1, 1)]).is_none());
    }

    #[test]
    fn conjoin_merges_sorted() {
        let a = Wsd::from_assignments(vec![asg(0, 1), asg(2, 0)]).unwrap();
        let b = Wsd::from_assignments(vec![asg(1, 5), asg(2, 0)]).unwrap();
        let c = a.conjoin(&b).unwrap();
        assert_eq!(c.assignments(), &[asg(0, 1), asg(1, 5), asg(2, 0)]);
    }

    #[test]
    fn conjoin_conflict_is_none() {
        let a = Wsd::of(Var(3), 0);
        let b = Wsd::of(Var(3), 1);
        assert!(a.conjoin(&b).is_none());
    }

    #[test]
    fn conjoin_with_tautology_is_identity() {
        let a = Wsd::from_assignments(vec![asg(0, 1)]).unwrap();
        assert_eq!(a.conjoin(&Wsd::tautology()).unwrap(), a);
        assert_eq!(Wsd::tautology().conjoin(&a).unwrap(), a);
    }

    #[test]
    fn conjoin_is_commutative_and_idempotent() {
        let a = Wsd::from_assignments(vec![asg(0, 1), asg(4, 2)]).unwrap();
        let b = Wsd::from_assignments(vec![asg(2, 3)]).unwrap();
        assert_eq!(a.conjoin(&b), b.conjoin(&a));
        assert_eq!(a.conjoin(&a).unwrap(), a);
    }

    #[test]
    fn prob_is_product() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let w = Wsd::from_assignments(vec![
            Assignment::new(x, 1),
            Assignment::new(y, 0),
        ])
        .unwrap();
        assert!((w.prob(&wt).unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(Wsd::tautology().prob(&wt).unwrap(), 1.0);
    }

    #[test]
    fn satisfied_by_checks_all_assignments() {
        let w = Wsd::from_assignments(vec![asg(0, 1), asg(1, 0)]).unwrap();
        assert!(w.satisfied_by(&[1, 0]));
        assert!(!w.satisfied_by(&[1, 1]));
        assert!(Wsd::tautology().satisfied_by(&[9, 9]));
    }

    #[test]
    fn condition_reduces_or_kills() {
        let w = Wsd::from_assignments(vec![asg(0, 1), asg(1, 0)]).unwrap();
        // Compatible binding: assignment removed.
        let r = w.condition(Var(0), 1).unwrap();
        assert_eq!(r.assignments(), &[asg(1, 0)]);
        // Conflicting binding: clause dies.
        assert!(w.condition(Var(0), 2).is_none());
        // Unmentioned variable: unchanged.
        assert_eq!(w.condition(Var(7), 3).unwrap(), w);
    }

    #[test]
    fn get_binary_search() {
        let w = Wsd::from_assignments(vec![asg(2, 9), asg(5, 1)]).unwrap();
        assert_eq!(w.get(Var(2)), Some(9));
        assert_eq!(w.get(Var(5)), Some(1));
        assert_eq!(w.get(Var(3)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Wsd::tautology().to_string(), "⊤");
        let w = Wsd::of(Var(0), 0);
        assert_eq!(w.to_string(), "x0 ↦ 1");
    }

    /// Inline and heap representations must be indistinguishable through
    /// the public API: equality, ordering, and hashing are over the
    /// logical assignment list.
    #[test]
    fn inline_heap_boundary_is_invisible() {
        use std::collections::HashSet;
        // 0, 1, 2 assignments: inline; 3+: heap.
        let sizes: Vec<Wsd> = (0..5)
            .map(|n| {
                Wsd::from_assignments((0..n).map(|v| asg(v, 1)).collect()).unwrap()
            })
            .collect();
        for (n, w) in sizes.iter().enumerate() {
            assert_eq!(w.len(), n);
            assert_eq!(w.assignments().len(), n);
            assert!(w.assignments().windows(2).all(|p| p[0] < p[1]));
        }
        // Conjoin across the boundary: 2 + 2 distinct vars = 4 (heap),
        // result equal to direct construction.
        let a = Wsd::from_assignments(vec![asg(0, 1), asg(1, 0)]).unwrap();
        let b = Wsd::from_assignments(vec![asg(2, 1), asg(3, 0)]).unwrap();
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(
            ab,
            Wsd::from_assignments(vec![asg(0, 1), asg(1, 0), asg(2, 1), asg(3, 0)])
                .unwrap()
        );
        // Conditioning a heap WSD back down to inline sizes keeps
        // equality/hash consistent.
        let reduced = ab.condition(Var(0), 1).unwrap().condition(Var(1), 0).unwrap();
        assert_eq!(reduced, b);
        let mut set = HashSet::new();
        set.insert(reduced);
        assert!(set.contains(&b));
    }

    #[test]
    fn conjoin_small_is_inline_and_correct() {
        let a = Wsd::of(Var(3), 1);
        let b = Wsd::of(Var(1), 0);
        let c = a.conjoin(&b).unwrap();
        assert_eq!(c.assignments(), &[asg(1, 0), asg(3, 1)]);
        // Identical singletons conjoin to themselves.
        assert_eq!(a.conjoin(&a).unwrap(), a);
    }
}
