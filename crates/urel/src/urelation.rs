//! U-relations: "standard relations extended with condition … columns to
//! encode correlations between the uncertain values and probability
//! distribution for the set of possible worlds" (§2.1).
//!
//! A [`URelation`] pairs each data tuple with a [`Wsd`]. A U-relation with
//! only tautological WSDs is a *typed-certain (t-certain) table* (§2.2).
//!
//! # Sharing invariants (zero-clone execution core)
//!
//! A [`UTuple`] is cheap to clone by construction: its `data` is an
//! `Arc`-backed engine [`Tuple`] (clone = refcount bump) and its `wsd`
//! stores small conjunctions inline (clone = a few words copied, no
//! allocation for ≤ 2 assignments). Operators that only choose rows —
//! selection, ordering, dedup — therefore run on selection vectors and
//! materialise once through [`URelation::gather`]; only operators that
//! build new rows (projection over expressions, join concatenation)
//! allocate.

//! # Columnar at rest
//!
//! Like the engine's `Relation`, a [`URelation`] may be backed by a
//! column-major [`ColumnBatch`] over the data columns (dictionary-encoded
//! strings included) with the per-tuple WSDs kept as a parallel sidecar
//! vector — the at-rest representation catalog installs produce via
//! [`URelation::compact`]. The `UTuple` row view is materialised lazily,
//! once; mutation ([`URelation::tuples_mut`]) decays the store to rows
//! first, so the at-rest batch never changes after construction and scans
//! can borrow column slices from it without per-morsel pivots.

use std::sync::{Arc, OnceLock};

use maybms_engine::tuple::TupleBatch;
use maybms_engine::{ColumnBatch, Relation, Schema, Tuple};

use crate::error::Result;
use crate::world_table::WorldTable;
use crate::wsd::Wsd;

/// Zip batch-built data rows with their WSDs into `UTuple`s (shared by
/// the algebra operators and the vertical-decomposition row builders).
pub(crate) fn zip_batch(batch: TupleBatch, wsds: Vec<Wsd>) -> Vec<UTuple> {
    batch
        .finish()
        .into_iter()
        .zip(wsds)
        .map(|(data, wsd)| UTuple::new(data, wsd))
        .collect()
}

/// One uncertain tuple: data plus the condition under which it exists.
#[derive(Debug, Clone, PartialEq)]
pub struct UTuple {
    /// The data columns.
    pub data: Tuple,
    /// The world-set descriptor (condition columns).
    pub wsd: Wsd,
}

impl UTuple {
    /// A certain tuple (tautological condition).
    pub fn certain(data: Tuple) -> UTuple {
        UTuple { data, wsd: Wsd::tautology() }
    }

    /// A conditioned tuple.
    pub fn new(data: Tuple, wsd: Wsd) -> UTuple {
        UTuple { data, wsd }
    }
}

/// The physical backing of a [`URelation`] (see the module docs on
/// columnar at rest).
#[derive(Debug, Clone)]
enum Store {
    /// Row-major: the working representation updates mutate.
    Rows(Vec<UTuple>),
    /// Column-major data at rest plus WSD sidecar, shared via `Arc`.
    Columnar(Arc<ColumnarURel>),
}

/// An immutable columnar U-relation body: data columns, parallel WSDs,
/// and the lazily materialised `UTuple` view (built at most once; all
/// clones share it through the `Arc`).
#[derive(Debug)]
struct ColumnarURel {
    batch: ColumnBatch,
    wsds: Vec<Wsd>,
    rows: OnceLock<Vec<UTuple>>,
}

impl ColumnarURel {
    fn new(batch: ColumnBatch, wsds: Vec<Wsd>) -> ColumnarURel {
        debug_assert_eq!(batch.rows(), wsds.len(), "WSD sidecar length mismatch");
        ColumnarURel { batch, wsds, rows: OnceLock::new() }
    }

    fn rows(&self) -> &[UTuple] {
        self.rows.get_or_init(|| {
            zip_batch(self.batch.to_tuple_batch(), self.wsds.clone())
        })
    }

    fn into_rows(self) -> Vec<UTuple> {
        match self.rows.into_inner() {
            Some(rows) => rows,
            None => zip_batch(self.batch.to_tuple_batch(), self.wsds),
        }
    }
}

/// A U-relation: schema over the *data* columns plus per-tuple WSDs.
#[derive(Debug, Clone)]
pub struct URelation {
    schema: Arc<Schema>,
    store: Store,
}

// Equality is logical — columnar-at-rest equals its row-major twin.
impl PartialEq for URelation {
    fn eq(&self, other: &URelation) -> bool {
        self.schema == other.schema && self.tuples() == other.tuples()
    }
}

impl URelation {
    /// Empty U-relation.
    pub fn empty(schema: Arc<Schema>) -> URelation {
        URelation { schema, store: Store::Rows(Vec::new()) }
    }

    /// Build from parts (arity unchecked; callers construct from typed
    /// operators).
    pub fn new(schema: Arc<Schema>, tuples: Vec<UTuple>) -> URelation {
        URelation { schema, store: Store::Rows(tuples) }
    }

    /// Build directly over an at-rest data batch plus WSD sidecar (the
    /// storage decode / compaction path). Caller guarantees the batch
    /// arity matches the schema and `wsds.len() == batch.rows()`, like
    /// [`URelation::new`]'s unchecked discipline.
    pub fn from_batch(schema: Arc<Schema>, batch: ColumnBatch, wsds: Vec<Wsd>) -> URelation {
        debug_assert_eq!(batch.arity(), schema.len(), "batch arity mismatch");
        URelation { schema, store: Store::Columnar(Arc::new(ColumnarURel::new(batch, wsds))) }
    }

    /// Lift a certain relation into a (t-certain) U-relation. A
    /// columnar-at-rest input whose row view is cold keeps its columns
    /// (tautological WSD sidecar, dictionaries shared).
    pub fn from_certain(rel: &Relation) -> URelation {
        if let Some(batch) = rel.at_rest() {
            return URelation::from_batch(
                rel.schema().clone(),
                batch.clone(),
                vec![Wsd::tautology(); batch.rows()],
            );
        }
        URelation {
            schema: rel.schema().clone(),
            store: Store::Rows(rel.tuples().iter().cloned().map(UTuple::certain).collect()),
        }
    }

    /// The data schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The tuples. For a columnar-at-rest store the `UTuple` view is
    /// materialised once, on first call, and cached.
    pub fn tuples(&self) -> &[UTuple] {
        match &self.store {
            Store::Rows(t) => t,
            Store::Columnar(c) => c.rows(),
        }
    }

    /// The at-rest data batch and WSD sidecar, if stored columnar —
    /// the zero-pivot scan path.
    pub fn at_rest(&self) -> Option<(&ColumnBatch, &[Wsd])> {
        match &self.store {
            Store::Rows(_) => None,
            Store::Columnar(c) => Some((&c.batch, &c.wsds)),
        }
    }

    /// True iff the canonical storage is column-major.
    pub fn is_columnar(&self) -> bool {
        matches!(self.store, Store::Columnar(_))
    }

    /// A columnar-at-rest copy: data columns pivoted once (counted by
    /// the pivot metrics) and dictionary-encoded, WSDs in a parallel
    /// sidecar. Already-columnar input returns a cheap `Arc` clone.
    pub fn compact(&self) -> URelation {
        match &self.store {
            Store::Columnar(_) => self.clone(),
            Store::Rows(tuples) => {
                let cols: Vec<usize> = (0..self.schema.len()).collect();
                let batch = ColumnBatch::pivot(
                    tuples.len(),
                    tuples.iter().map(|t| t.data.values()),
                    &cols,
                )
                .dict_encode();
                let wsds = tuples.iter().map(|t| t.wsd.clone()).collect();
                URelation {
                    schema: self.schema.clone(),
                    store: Store::Columnar(Arc::new(ColumnarURel::new(batch, wsds))),
                }
            }
        }
    }

    /// Mutable access (updates). Decays a columnar store to rows first —
    /// the at-rest batch itself never mutates.
    pub fn tuples_mut(&mut self) -> &mut Vec<UTuple> {
        if matches!(self.store, Store::Columnar(_)) {
            let store = std::mem::replace(&mut self.store, Store::Rows(Vec::new()));
            if let Store::Columnar(arc) = store {
                let rows = match Arc::try_unwrap(arc) {
                    Ok(body) => body.into_rows(),
                    Err(arc) => arc.rows().to_vec(),
                };
                self.store = Store::Rows(rows);
            }
        }
        match &mut self.store {
            Store::Rows(t) => t,
            Store::Columnar(_) => unreachable!("just decayed"),
        }
    }

    /// Materialise a selection vector: the U-relation holding the tuples
    /// at `indices`, in that order. Row data is shared with the input
    /// (`UTuple` clones are cheap — see the module docs). Indices may
    /// repeat; they must be in range. A columnar store whose row view is
    /// cold gathers columns and WSDs instead, staying columnar.
    pub fn gather(&self, indices: &[usize]) -> URelation {
        if let Store::Columnar(c) = &self.store {
            if c.rows.get().is_none() {
                debug_assert!(c.batch.rows() <= u32::MAX as usize);
                let sel: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
                let wsds = indices.iter().map(|&i| c.wsds[i].clone()).collect();
                return URelation {
                    schema: self.schema.clone(),
                    store: Store::Columnar(Arc::new(ColumnarURel::new(
                        c.batch.gather(&sel),
                        wsds,
                    ))),
                };
            }
        }
        let tuples = self.tuples();
        URelation {
            schema: self.schema.clone(),
            store: Store::Rows(indices.iter().map(|&i| tuples[i].clone()).collect()),
        }
    }

    /// Number of stored tuples (representation size, *not* world count).
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Rows(t) => t.len(),
            Store::Columnar(c) => c.batch.rows(),
        }
    }

    /// True iff no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff every tuple is unconditional — the t-certain test (§2.2).
    pub fn is_t_certain(&self) -> bool {
        match &self.store {
            Store::Rows(t) => t.iter().all(|t| t.wsd.is_tautology()),
            Store::Columnar(c) => c.wsds.iter().all(Wsd::is_tautology),
        }
    }

    /// Replace the schema (same arity required by construction discipline).
    pub fn with_schema(mut self, schema: Arc<Schema>) -> URelation {
        self.schema = schema;
        self
    }

    /// Forget the conditions, keeping every stored tuple. Only meaningful
    /// for t-certain relations; used to hand results to the engine. A
    /// columnar store passes its batch through, staying columnar.
    pub fn into_certain(self) -> Relation {
        match self.store {
            Store::Rows(tuples) => Relation::new_unchecked(
                self.schema,
                tuples.into_iter().map(|t| t.data).collect(),
            ),
            Store::Columnar(arc) => {
                let batch = match Arc::try_unwrap(arc) {
                    Ok(body) => body.batch,
                    Err(arc) => arc.batch.clone(),
                };
                Relation::from_batch(self.schema, batch)
                    .expect("batch arity matches schema by construction")
            }
        }
    }

    /// Instantiate the relation in one world: keep tuples whose WSD the
    /// world satisfies (semantics of the representation, §2.1).
    pub fn instantiate(&self, world: &[u16]) -> Relation {
        let tuples = self
            .tuples()
            .iter()
            .filter(|t| t.wsd.satisfied_by(world))
            .map(|t| t.data.clone())
            .collect();
        Relation::new_unchecked(self.schema.clone(), tuples)
    }

    /// Render the relation the way Figure 1 prints U-relations: data
    /// columns, a `condition` column, and a `P` column with the
    /// condition's probability.
    pub fn to_table_string(&self, wt: &WorldTable) -> Result<String> {
        let mut headers: Vec<String> =
            self.schema.fields().iter().map(|f| f.qualified_name()).collect();
        headers.push("condition".into());
        headers.push("P".into());
        let mut rows = Vec::with_capacity(self.len());
        for t in self.tuples() {
            let mut row: Vec<String> =
                t.data.values().iter().map(|v| v.to_string()).collect();
            row.push(t.wsd.to_string());
            row.push(format!("{:.6}", t.wsd.prob(wt)?));
            rows.push(row);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let hline = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        hline(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            let pad = w - h.chars().count();
            out.push_str(&format!(" {h}{} |", " ".repeat(pad)));
        }
        out.push('\n');
        hline(&mut out);
        for row in &rows {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
            }
            out.push('\n');
        }
        hline(&mut out);
        out.push_str(&format!("({} tuples)\n", rows.len()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;
    use maybms_engine::{rel, DataType, Value};

    fn base() -> Relation {
        rel(
            &[("player", DataType::Text), ("state", DataType::Text)],
            vec![
                vec!["Bryant".into(), "F".into()],
                vec!["Bryant".into(), "SE".into()],
            ],
        )
    }

    #[test]
    fn from_certain_is_t_certain() {
        let u = URelation::from_certain(&base());
        assert!(u.is_t_certain());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn conditioned_relation_is_not_t_certain() {
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(Var(0), 0);
        assert!(!u.is_t_certain());
    }

    #[test]
    fn instantiate_filters_by_world() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        u.tuples_mut()[1].wsd = Wsd::of(x, 1);
        let w0 = u.instantiate(&[0]);
        assert_eq!(w0.len(), 1);
        assert_eq!(w0.tuples()[0].value(1), &Value::str("F"));
        let w1 = u.instantiate(&[1]);
        assert_eq!(w1.tuples()[0].value(1), &Value::str("SE"));
    }

    #[test]
    fn into_certain_drops_conditions() {
        let u = URelation::from_certain(&base());
        let r = u.into_certain();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn compact_preserves_data_wsds_and_equality() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        let c = u.compact();
        assert!(c.is_columnar() && !u.is_columnar());
        assert_eq!(c.len(), 2);
        assert_eq!(c, u);
        assert!(!c.is_t_certain());
        let (batch, wsds) = c.at_rest().expect("columnar store");
        assert_eq!(batch.rows(), 2);
        assert_eq!(wsds[0], Wsd::of(x, 0));
        // Instantiation over the lazy row view matches the row store.
        assert_eq!(c.instantiate(&[0]), u.instantiate(&[0]));
        assert_eq!(c.instantiate(&[1]), u.instantiate(&[1]));
    }

    #[test]
    fn columnar_mutation_decays_and_gather_stays_columnar_when_cold() {
        let u = URelation::from_certain(&base()).compact();
        let g = u.gather(&[1, 0]);
        assert!(g.is_columnar());
        assert_eq!(g.tuples()[0], u.tuples()[1]);
        let mut m = u.clone();
        m.tuples_mut().pop();
        assert!(!m.is_columnar());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn certain_round_trip_keeps_columnar_store() {
        let r = base().compact();
        let u = URelation::from_certain(&r);
        assert!(u.is_columnar(), "lifting a columnar relation keeps columns");
        assert!(u.is_t_certain());
        let back = u.into_certain();
        assert!(back.is_columnar());
        assert_eq!(back, base());
    }

    #[test]
    fn table_string_shows_condition_and_probability() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        let s = u.to_table_string(&wt).unwrap();
        assert!(s.contains("condition"));
        assert!(s.contains("x0 ↦ 1"));
        assert!(s.contains("0.800000"));
        assert!(s.contains("⊤"));
    }
}
