//! U-relations: "standard relations extended with condition … columns to
//! encode correlations between the uncertain values and probability
//! distribution for the set of possible worlds" (§2.1).
//!
//! A [`URelation`] pairs each data tuple with a [`Wsd`]. A U-relation with
//! only tautological WSDs is a *typed-certain (t-certain) table* (§2.2).
//!
//! # Sharing invariants (zero-clone execution core)
//!
//! A [`UTuple`] is cheap to clone by construction: its `data` is an
//! `Arc`-backed engine [`Tuple`] (clone = refcount bump) and its `wsd`
//! stores small conjunctions inline (clone = a few words copied, no
//! allocation for ≤ 2 assignments). Operators that only choose rows —
//! selection, ordering, dedup — therefore run on selection vectors and
//! materialise once through [`URelation::gather`]; only operators that
//! build new rows (projection over expressions, join concatenation)
//! allocate.

use std::sync::Arc;

use maybms_engine::tuple::TupleBatch;
use maybms_engine::{Relation, Schema, Tuple};

use crate::error::Result;
use crate::world_table::WorldTable;
use crate::wsd::Wsd;

/// Zip batch-built data rows with their WSDs into `UTuple`s (shared by
/// the algebra operators and the vertical-decomposition row builders).
pub(crate) fn zip_batch(batch: TupleBatch, wsds: Vec<Wsd>) -> Vec<UTuple> {
    batch
        .finish()
        .into_iter()
        .zip(wsds)
        .map(|(data, wsd)| UTuple::new(data, wsd))
        .collect()
}

/// One uncertain tuple: data plus the condition under which it exists.
#[derive(Debug, Clone, PartialEq)]
pub struct UTuple {
    /// The data columns.
    pub data: Tuple,
    /// The world-set descriptor (condition columns).
    pub wsd: Wsd,
}

impl UTuple {
    /// A certain tuple (tautological condition).
    pub fn certain(data: Tuple) -> UTuple {
        UTuple { data, wsd: Wsd::tautology() }
    }

    /// A conditioned tuple.
    pub fn new(data: Tuple, wsd: Wsd) -> UTuple {
        UTuple { data, wsd }
    }
}

/// A U-relation: schema over the *data* columns plus per-tuple WSDs.
#[derive(Debug, Clone, PartialEq)]
pub struct URelation {
    schema: Arc<Schema>,
    tuples: Vec<UTuple>,
}

impl URelation {
    /// Empty U-relation.
    pub fn empty(schema: Arc<Schema>) -> URelation {
        URelation { schema, tuples: Vec::new() }
    }

    /// Build from parts (arity unchecked; callers construct from typed
    /// operators).
    pub fn new(schema: Arc<Schema>, tuples: Vec<UTuple>) -> URelation {
        URelation { schema, tuples }
    }

    /// Lift a certain relation into a (t-certain) U-relation.
    pub fn from_certain(rel: &Relation) -> URelation {
        URelation {
            schema: rel.schema().clone(),
            tuples: rel.tuples().iter().cloned().map(UTuple::certain).collect(),
        }
    }

    /// The data schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[UTuple] {
        &self.tuples
    }

    /// Mutable access (updates).
    pub fn tuples_mut(&mut self) -> &mut Vec<UTuple> {
        &mut self.tuples
    }

    /// Materialise a selection vector: the U-relation holding the tuples
    /// at `indices`, in that order. Row data is shared with the input
    /// (`UTuple` clones are cheap — see the module docs). Indices may
    /// repeat; they must be in range.
    pub fn gather(&self, indices: &[usize]) -> URelation {
        URelation {
            schema: self.schema.clone(),
            tuples: indices.iter().map(|&i| self.tuples[i].clone()).collect(),
        }
    }

    /// Number of stored tuples (representation size, *not* world count).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True iff every tuple is unconditional — the t-certain test (§2.2).
    pub fn is_t_certain(&self) -> bool {
        self.tuples.iter().all(|t| t.wsd.is_tautology())
    }

    /// Replace the schema (same arity required by construction discipline).
    pub fn with_schema(mut self, schema: Arc<Schema>) -> URelation {
        self.schema = schema;
        self
    }

    /// Forget the conditions, keeping every stored tuple. Only meaningful
    /// for t-certain relations; used to hand results to the engine.
    pub fn into_certain(self) -> Relation {
        Relation::new_unchecked(
            self.schema,
            self.tuples.into_iter().map(|t| t.data).collect(),
        )
    }

    /// Instantiate the relation in one world: keep tuples whose WSD the
    /// world satisfies (semantics of the representation, §2.1).
    pub fn instantiate(&self, world: &[u16]) -> Relation {
        let tuples = self
            .tuples
            .iter()
            .filter(|t| t.wsd.satisfied_by(world))
            .map(|t| t.data.clone())
            .collect();
        Relation::new_unchecked(self.schema.clone(), tuples)
    }

    /// Render the relation the way Figure 1 prints U-relations: data
    /// columns, a `condition` column, and a `P` column with the
    /// condition's probability.
    pub fn to_table_string(&self, wt: &WorldTable) -> Result<String> {
        let mut headers: Vec<String> =
            self.schema.fields().iter().map(|f| f.qualified_name()).collect();
        headers.push("condition".into());
        headers.push("P".into());
        let mut rows = Vec::with_capacity(self.tuples.len());
        for t in &self.tuples {
            let mut row: Vec<String> =
                t.data.values().iter().map(|v| v.to_string()).collect();
            row.push(t.wsd.to_string());
            row.push(format!("{:.6}", t.wsd.prob(wt)?));
            rows.push(row);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let hline = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        hline(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            let pad = w - h.chars().count();
            out.push_str(&format!(" {h}{} |", " ".repeat(pad)));
        }
        out.push('\n');
        hline(&mut out);
        for row in &rows {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
            }
            out.push('\n');
        }
        hline(&mut out);
        out.push_str(&format!("({} tuples)\n", rows.len()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;
    use maybms_engine::{rel, DataType, Value};

    fn base() -> Relation {
        rel(
            &[("player", DataType::Text), ("state", DataType::Text)],
            vec![
                vec!["Bryant".into(), "F".into()],
                vec!["Bryant".into(), "SE".into()],
            ],
        )
    }

    #[test]
    fn from_certain_is_t_certain() {
        let u = URelation::from_certain(&base());
        assert!(u.is_t_certain());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn conditioned_relation_is_not_t_certain() {
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(Var(0), 0);
        assert!(!u.is_t_certain());
    }

    #[test]
    fn instantiate_filters_by_world() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        u.tuples_mut()[1].wsd = Wsd::of(x, 1);
        let w0 = u.instantiate(&[0]);
        assert_eq!(w0.len(), 1);
        assert_eq!(w0.tuples()[0].value(1), &Value::str("F"));
        let w1 = u.instantiate(&[1]);
        assert_eq!(w1.tuples()[0].value(1), &Value::str("SE"));
    }

    #[test]
    fn into_certain_drops_conditions() {
        let u = URelation::from_certain(&base());
        let r = u.into_certain();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn table_string_shows_condition_and_probability() {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let mut u = URelation::from_certain(&base());
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        let s = u.to_table_string(&wt).unwrap();
        assert!(s.contains("condition"));
        assert!(s.contains("x0 ↦ 1"));
        assert!(s.contains("0.800000"));
        assert!(s.contains("⊤"));
    }
}
