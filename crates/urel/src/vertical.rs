//! Vertical decomposition for attribute-level uncertainty (§2.1):
//! "Attribute-level uncertainty is achieved through vertical
//! decompositions, and an additional (system) column is used for storing
//! tuple ids and undoing the vertical decomposition on demand."
//!
//! [`decompose`] splits a U-relation into column groups, each carrying the
//! system tuple-id column `_tid`; each piece can then be conditioned on its
//! own variables (different attributes of one logical tuple may vary
//! independently). [`recompose`] joins the pieces back on `_tid`,
//! conjoining their conditions.
//!
//! Decomposition runs on the engine's shared column-major machinery
//! ([`maybms_engine::column`]): the input pivots once into a
//! [`ColumnBatch`] and every piece is a selection of its columns — the
//! same representation the vectorised expression kernels execute on.

use std::sync::Arc;

use maybms_engine::column::{Column, ColumnBatch, NullMask};
use maybms_engine::{DataType, Field, Schema};

use crate::error::{Result, UrelError};
use crate::urelation::{URelation, UTuple};

/// Name of the system tuple-id column.
pub const TID_COLUMN: &str = "_tid";

/// Split `input` into one piece per column group. Each piece's schema is
/// `(_tid, group columns…)`; every piece row keeps the original tuple's
/// WSD. Column indices must be in range; groups may overlap (e.g. a shared
/// key column) but must not be empty.
pub fn decompose(input: &URelation, groups: &[Vec<usize>]) -> Result<Vec<URelation>> {
    if groups.is_empty() {
        return Err(UrelError::BadDecomposition {
            message: "no column groups given".into(),
        });
    }
    let arity = input.schema().len();
    for g in groups {
        if g.is_empty() {
            return Err(UrelError::BadDecomposition {
                message: "empty column group".into(),
            });
        }
        for &c in g {
            if c >= arity {
                return Err(UrelError::BadDecomposition {
                    message: format!("column #{c} out of range (arity {arity})"),
                });
            }
        }
    }
    // Vertical decomposition *is* a columnar operation: pivot the
    // referenced columns once into the engine's shared column
    // representation, then each piece is the system tid column plus a
    // selection of the pivoted columns (cloned — groups may overlap).
    let n = input.len();
    let mut used: Vec<usize> = groups.iter().flatten().copied().collect();
    used.sort_unstable();
    used.dedup();
    let pivot =
        ColumnBatch::pivot(n, input.tuples().iter().map(|t| t.data.values()), &used);
    let pivot_idx =
        |c: usize| used.binary_search(&c).expect("group column collected above");
    let tid = Column::from_ints((0..n as i64).collect(), NullMask::none());
    let mut out = Vec::with_capacity(groups.len());
    for g in groups {
        let mut fields = vec![Field::new(TID_COLUMN, DataType::Int)];
        let mut cols = vec![tid.clone()];
        for &c in g {
            fields.push(input.schema().field(c).clone());
            cols.push(pivot.column(pivot_idx(c)).clone());
        }
        let schema = Arc::new(Schema::new(fields));
        // Pivot back through the shared TupleBatch machinery: piece rows
        // share chunked buffers instead of allocating each.
        let batch = ColumnBatch::from_columns(cols, n).to_tuple_batch();
        let wsds = input.tuples().iter().map(|t| t.wsd.clone()).collect();
        out.push(URelation::new(schema, crate::urelation::zip_batch(batch, wsds)));
    }
    Ok(out)
}

/// Undo a vertical decomposition: join all pieces on `_tid` (conjoining
/// WSDs) and drop the tuple-id column. Pieces must each have `_tid` as
/// their first column.
pub fn recompose(pieces: &[URelation]) -> Result<URelation> {
    let Some(first) = pieces.first() else {
        return Err(UrelError::BadDecomposition { message: "no pieces".into() });
    };
    for p in pieces {
        let ok = p
            .schema()
            .fields()
            .first()
            .is_some_and(|f| f.name.eq_ignore_ascii_case(TID_COLUMN));
        if !ok {
            return Err(UrelError::BadDecomposition {
                message: format!("piece schema {} lacks leading {TID_COLUMN}", p.schema()),
            });
        }
    }
    let mut acc = first.clone();
    for p in &pieces[1..] {
        let joined = crate::algebra::hash_join(&acc, p, &[0], &[0])?;
        // Drop the duplicated _tid column of the right piece.
        let keep: Vec<usize> = (0..joined.schema().len())
            .filter(|&i| i != acc.schema().len())
            .collect();
        let fields: Vec<Field> =
            keep.iter().map(|&i| joined.schema().field(i).clone()).collect();
        let schema = Arc::new(Schema::new(fields));
        let tuples = joined
            .tuples()
            .iter()
            .map(|t| UTuple::new(t.data.take(&keep), t.wsd.clone()))
            .collect();
        acc = URelation::new(schema, tuples);
    }
    // Drop the leading _tid.
    let keep: Vec<usize> = (1..acc.schema().len()).collect();
    let fields: Vec<Field> = keep.iter().map(|&i| acc.schema().field(i).clone()).collect();
    let schema = Arc::new(Schema::new(fields));
    let tuples = acc
        .tuples()
        .iter()
        .map(|t| UTuple::new(t.data.take(&keep), t.wsd.clone()))
        .collect();
    Ok(URelation::new(schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world_table::WorldTable;
    use crate::wsd::Wsd;
    use maybms_engine::{rel, DataType, Value};

    fn sample() -> URelation {
        URelation::from_certain(&rel(
            &[
                ("player", DataType::Text),
                ("team", DataType::Text),
                ("pts", DataType::Int),
            ],
            vec![
                vec!["Bryant".into(), "LAL".into(), 81.into()],
                vec!["Duncan".into(), "SAS".into(), 25.into()],
            ],
        ))
    }

    #[test]
    fn decompose_then_recompose_is_identity_on_data() {
        let u = sample();
        let pieces = decompose(&u, &[vec![0], vec![1, 2]]).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].schema().names(), vec![TID_COLUMN, "player"]);
        let back = recompose(&pieces).unwrap();
        assert_eq!(back.schema().names(), vec!["player", "team", "pts"]);
        let a: Vec<_> = u.tuples().iter().map(|t| t.data.clone()).collect();
        let mut b: Vec<_> = back.tuples().iter().map(|t| t.data.clone()).collect();
        b.sort();
        let mut a = a;
        a.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn attribute_level_uncertainty_via_independent_pieces() {
        // Make the pts attribute of tuple 0 uncertain independently of the
        // team attribute: condition different pieces on different vars.
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.5, 0.5]).unwrap(); // team variant
        let y = wt.new_var(&[0.9, 0.1]).unwrap(); // pts variant
        let u = sample();
        let mut pieces = decompose(&u, &[vec![0], vec![1], vec![2]]).unwrap();
        // Two alternative teams for tuple 0.
        let t0_team = pieces[1].tuples()[0].clone();
        let mut alt = t0_team.clone();
        alt.data = Tuple::new(vec![Value::Int(0), "MIA".into()]);
        pieces[1].tuples_mut()[0].wsd = Wsd::of(x, 0);
        let mut alt_tuple = alt;
        alt_tuple.wsd = Wsd::of(x, 1);
        pieces[1].tuples_mut().push(alt_tuple);
        // Two alternative pts for tuple 0.
        pieces[2].tuples_mut()[0].wsd = Wsd::of(y, 0);
        let mut pts_alt = pieces[2].tuples()[0].clone();
        pts_alt.data = Tuple::new(vec![Value::Int(0), Value::Int(50)]);
        pts_alt.wsd = Wsd::of(y, 1);
        pieces[2].tuples_mut().push(pts_alt);

        let back = recompose(&pieces).unwrap();
        // Tuple 0 now has 4 variants (2 teams × 2 pts), tuple 1 has 1.
        assert_eq!(back.len(), 5);
        // All four combinations for Bryant must exist and be satisfiable.
        let bryant: Vec<_> = back
            .tuples()
            .iter()
            .filter(|t| t.data.value(0) == &Value::str("Bryant"))
            .collect();
        assert_eq!(bryant.len(), 4);
        let mass: f64 = bryant.iter().map(|t| t.wsd.prob(&wt).unwrap()).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decompose_rejects_bad_input() {
        let u = sample();
        assert!(decompose(&u, &[]).is_err());
        assert!(decompose(&u, &[vec![]]).is_err());
        assert!(decompose(&u, &[vec![9]]).is_err());
    }

    #[test]
    fn recompose_rejects_pieces_without_tid() {
        let u = sample();
        assert!(matches!(
            recompose(&[u]),
            Err(UrelError::BadDecomposition { .. })
        ));
    }

    use maybms_engine::Tuple;
}
